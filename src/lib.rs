//! # agentrack
//!
//! A scalable hash-based mobile-agent location mechanism — a faithful,
//! from-scratch reproduction of *"A Scalable Hash-Based Mobile Agent
//! Location Mechanism"* (Kastidou, Pitoura, Samaras; ICDCS Workshops 2003),
//! together with the mobile-agent platform it runs on, the baseline schemes
//! it is evaluated against, and the complete experiment harness that
//! regenerates the paper's figures.
//!
//! ## The problem
//!
//! Mobile agents migrate between network nodes while they work. To send a
//! message to an agent you must know *where it currently is* — so every
//! mobile-agent system needs a location mechanism, and that mechanism must
//! scale with the number of agents, their mobility rate, and the query
//! rate.
//!
//! ## The mechanism
//!
//! Agents are assigned to **Information Agents (IAgents)** by a dynamic
//! *extendible hash function* over their ids, represented as a **hash
//! tree** ([`hashtree`]). Each IAgent tracks the precise location of its
//! assigned agents and watches its own request rate: above `T_max` it asks
//! the central **HAgent** (owner of the hash function's primary copy) to
//! *split* its load to a newly created IAgent; below `T_min` it asks to be
//! *merged* away. Per-node **LHAgents** hold lazily refreshed secondary
//! copies for cheap local resolution; staleness is detected on use and
//! repaired on demand.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`hashtree`] | The extendible hash tree: labels, hyper-labels, simple/complex split, merge |
//! | [`sim`] | Deterministic discrete-event kernel: virtual time, LAN model, service stations |
//! | [`platform`] | The mobile-agent platform (Aglets-style lifecycle, messaging, migration) |
//! | [`core`] | IAgent / HAgent / LHAgent behaviours, client state machines, baseline schemes |
//! | [`workload`] | TAgents, queriers, scenario runner, experiment metrics |
//! | [`trace_analysis`] | Causal span trees, critical-path latency attribution, trace exporters |
//!
//! ## Quickstart
//!
//! ```
//! use agentrack::core::{HashedScheme, LocationConfig};
//! use agentrack::workload::{RunOptions, Scenario};
//!
//! // 30 agents roaming a 16-node LAN; 50 location queries.
//! let scenario = Scenario::new("quickstart")
//!     .with_agents(30)
//!     .with_queries(50)
//!     .with_seconds(8.0, 4.0);
//! let mut scheme = HashedScheme::new(LocationConfig::default());
//! let report = scenario.run_with(&mut scheme, RunOptions::new()).report;
//! assert!(report.completion_ratio() > 0.9);
//! println!("mean location time: {:.2} ms", report.mean_locate_ms);
//! ```
//!
//! Runnable examples live under `examples/`; the `repro` binary in
//! `agentrack-bench` regenerates every figure of the paper's evaluation
//! (see `EXPERIMENTS.md`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use agentrack_core as core;
pub use agentrack_hashtree as hashtree;
pub use agentrack_platform as platform;
pub use agentrack_sim as sim;
pub use agentrack_trace_analysis as trace_analysis;
pub use agentrack_workload as workload;
