//! Deterministic chaos suite: every scheme runs under randomized but
//! seed-pinned fault plans (partitions, tracker crashes and restarts,
//! latency spikes, loss bursts, blackholes), and the post-quiesce
//! invariant audit must come back clean. A failing seed is perfectly
//! reproducible: the same seed replays the identical `TraceEvent`
//! sequence, which the last test pins.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use agentrack::core::{
    CentralizedScheme, ForwardingScheme, HashedScheme, HomeRegistryScheme, LocationConfig,
    LocationScheme,
};
use agentrack::sim::{ChaosConfig, SimDuration, TraceEvent, TraceSink};
use agentrack::workload::Scenario;

/// Pinned seeds: each generates a different fault plan (CI runs exactly
/// these, so a regression here is a regression there).
const SEEDS: &[u64] = &[11, 23, 47];

/// Fault intensity: ~4 scheduled faults per run, enough to hit crash,
/// partition, and loss paths across three seeds.
const INTENSITY: f64 = 0.7;

fn chaos_scenario(seed: u64) -> Scenario {
    let mut scenario = Scenario::new(format!("chaos-{seed}"))
        .with_agents(24)
        .with_residence_ms(400)
        .with_queries(120)
        .with_seconds(6.0, 4.0)
        .with_seed(seed);
    scenario.nodes = 8;
    scenario.queriers = 8;
    scenario.faults = ChaosConfig {
        seed,
        intensity: INTENSITY,
    }
    .generate(scenario.nodes, scenario.duration());
    assert!(!scenario.faults.is_empty(), "chaos plan came out empty");
    scenario
}

fn config() -> LocationConfig {
    // The periodic version audit makes the strict convergence check sound:
    // stale hash-function copies re-fetch within ~1 s of the heal.
    LocationConfig::default().with_version_audit(SimDuration::from_secs(1))
}

fn assert_chaos_clean(mut make: impl FnMut() -> Box<dyn LocationScheme>, strict_versions: bool) {
    for &seed in SEEDS {
        let scenario = chaos_scenario(seed);
        let mut scheme = make();
        let (report, invariants) = scenario.run_chaos(scheme.as_mut(), strict_versions);
        assert!(
            invariants.ok(),
            "seed {seed}, scheme {}: invariant violations {:?}",
            report.scheme,
            invariants.violations
        );
        assert!(
            report.locates_completed > 0,
            "seed {seed}, scheme {}: no locate completed under faults",
            report.scheme
        );
        assert!(
            invariants.probed > 0,
            "seed {seed}: the audit probed nothing — every agent unreachable?"
        );
    }
}

#[test]
fn hashed_with_standby_survives_chaos() {
    assert_chaos_clean(
        || Box::new(HashedScheme::new(config()).with_standby()),
        true,
    );
}

#[test]
fn centralized_survives_chaos() {
    assert_chaos_clean(|| Box::new(CentralizedScheme::new(config())), false);
}

#[test]
fn home_registry_survives_chaos() {
    assert_chaos_clean(|| Box::new(HomeRegistryScheme::new(config())), false);
}

#[test]
fn forwarding_survives_chaos() {
    // Locatability is not asserted for forwarding under faults (a severed
    // chain is unrecoverable by design); the remaining invariants are.
    assert_chaos_clean(|| Box::new(ForwardingScheme::new(config())), false);
}

/// The scheduled faults actually fire and are visible in the trace.
#[test]
fn fault_events_appear_in_the_trace() {
    let scenario = chaos_scenario(SEEDS[0]);
    let sink = TraceSink::bounded(500_000);
    let mut scheme = HashedScheme::new(config()).with_standby();
    let _ = scenario.run_observed(&mut scheme, sink.clone());
    let records = sink.snapshot();
    let fault_records = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::PartitionStarted { .. }
                    | TraceEvent::PartitionHealed
                    | TraceEvent::NodeCrashed { .. }
                    | TraceEvent::NodeRestarted { .. }
                    | TraceEvent::FaultApplied { .. }
                    | TraceEvent::FaultCleared { .. }
            )
        })
        .count();
    assert!(
        fault_records > 0,
        "a non-empty fault plan left no fault events in the trace"
    );
}

/// Re-running a seed reproduces the identical trace: byte-for-byte the
/// same `TraceEvent` sequence, so any chaos failure can be replayed and
/// shrunk offline.
#[test]
fn same_seed_replays_the_identical_trace() {
    let mut runs = Vec::new();
    for _ in 0..2 {
        let scenario = chaos_scenario(SEEDS[0]);
        let sink = TraceSink::bounded(500_000);
        let mut scheme = HashedScheme::new(config()).with_standby();
        let _ = scenario.run_observed(&mut scheme, sink.clone());
        assert_eq!(sink.dropped(), 0, "trace buffer overflowed; raise the cap");
        runs.push(sink.snapshot());
    }
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.len(), b.len(), "trace lengths diverged between replays");
    if let Some(i) = (0..a.len()).find(|&i| a[i] != b[i]) {
        panic!(
            "trace diverged at record {i}: first run {:?}, second run {:?}",
            a[i], b[i]
        );
    }
}
