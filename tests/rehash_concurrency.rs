//! Protocol-level tests of the concurrent rehash pipeline: prefix-disjoint
//! splits are granted in parallel, overlapping/over-budget requests are
//! denied `Busy` and land on retry once the conflict clears, and an
//! install of a version that rehashed a *distant* subtree no longer
//! silences a tracker's own overdue split request.

use std::sync::{Arc, Mutex};

use agentrack::core::{
    DenyReason, HAgentBehavior, HashFunction, IAgentBehavior, LocationConfig, SharedSchemeStats,
    Wire,
};
use agentrack::hashtree::{IAgentId, Side, SplitKind};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, SimTime, Topology};

fn lan(nodes: u32) -> Topology {
    Topology::lan(nodes, DurationDist::Constant(SimDuration::from_micros(300)))
}

type Inbox = Arc<Mutex<Vec<(SimTime, Wire)>>>;

/// Plays one leaf of the tree by script: sends the queued wire messages at
/// their scheduled times and records everything it receives, timestamped.
struct ScriptedLeaf {
    script: Vec<(SimDuration, AgentId, NodeId, Wire)>,
    next: usize,
    inbox: Inbox,
}

impl ScriptedLeaf {
    fn arm(&mut self, ctx: &mut AgentCtx<'_>) {
        if let Some(&(at, ..)) = self.script.get(self.next) {
            let elapsed = ctx.now().saturating_since(SimTime::ZERO);
            let delay = if at > elapsed {
                at - elapsed
            } else {
                SimDuration::from_micros(1)
            };
            ctx.set_timer(delay);
        }
    }
}

impl Agent for ScriptedLeaf {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        while let Some((at, to, node, msg)) = self.script.get(self.next).cloned() {
            if ctx.now().saturating_since(SimTime::ZERO) < at {
                break;
            }
            self.next += 1;
            ctx.send(to, node, msg.payload());
        }
        self.arm(ctx);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        if let Some(msg) = Wire::from_payload(payload) {
            self.inbox.lock().unwrap().push((ctx.now(), msg));
        }
    }
}

impl std::fmt::Debug for ScriptedLeaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedLeaf").finish_non_exhaustive()
    }
}

/// Splits `hf`'s leaf owned by `leaf` with the first simple candidate,
/// assigning the right side to `new`, and keeps the directory coherent.
fn split_leaf(hf: &mut HashFunction, leaf: AgentId, new: AgentId, node: NodeId) {
    let old = IAgentId::new(leaf.raw());
    let new_ia = IAgentId::new(new.raw());
    let candidates = hf.tree.split_candidates(old).expect("known leaf");
    let cand = candidates
        .iter()
        .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
        .expect("a simple split is always available");
    let applied = hf
        .tree
        .apply_split(cand, new_ia, Side::Right)
        .expect("fresh candidate applies");
    hf.locations.insert(new_ia, node);
    hf.version += 1;
    let mut involved = applied.affected;
    involved.push(new_ia);
    hf.refresh_compiled(&involved);
}

/// Uniform per-agent loads: enough distinct keys that every leaf's split
/// plan can balance.
fn loads() -> Vec<(AgentId, u64)> {
    (0..64).map(|i| (AgentId::new(2000 + i), 5)).collect()
}

fn denials(inbox: &Inbox) -> Vec<DenyReason> {
    inbox
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(_, m)| match m {
            Wire::RehashDenied { reason } => Some(*reason),
            _ => None,
        })
        .collect()
}

fn installed_versions(inbox: &Inbox) -> Vec<u64> {
    inbox
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(_, m)| match m {
            Wire::InstallHashFn { hf } => Some(hf.version),
            _ => None,
        })
        .collect()
}

/// Spawns the HAgent plus two scripted leaves owning disjoint subtrees,
/// each scripted to send `SplitRequest`s at the given times.
fn two_leaf_world(
    config: LocationConfig,
    a_requests: Vec<SimDuration>,
    b_requests: Vec<SimDuration>,
) -> (SimPlatform, SharedSchemeStats, Inbox, Inbox) {
    let mut platform = SimPlatform::new(lan(3), PlatformConfig::default().with_seed(11));
    let stats = SharedSchemeStats::new();
    let hagent_node = NodeId::new(2);

    let inbox_a: Inbox = Arc::default();
    let inbox_b: Inbox = Arc::default();

    // Leaf ids are assigned by the platform: A first, then B, then the
    // HAgent (whose id the leaves' scripts must target).
    let a = AgentId::new(platform.next_agent_id());
    let b = AgentId::new(a.raw() + 1);
    let hagent = AgentId::new(a.raw() + 2);

    let script = |times: Vec<SimDuration>| -> Vec<(SimDuration, AgentId, NodeId, Wire)> {
        times
            .into_iter()
            .map(|at| {
                (
                    at,
                    hagent,
                    hagent_node,
                    Wire::SplitRequest {
                        rate: 99.0,
                        loads: loads(),
                    },
                )
            })
            .collect()
    };

    let spawned_a = platform.spawn(
        Box::new(ScriptedLeaf {
            script: script(a_requests),
            next: 0,
            inbox: inbox_a.clone(),
        }),
        NodeId::new(0),
    );
    let spawned_b = platform.spawn(
        Box::new(ScriptedLeaf {
            script: script(b_requests),
            next: 0,
            inbox: inbox_b.clone(),
        }),
        NodeId::new(1),
    );
    assert_eq!(spawned_a, a);
    assert_eq!(spawned_b, b);

    let mut hf = HashFunction::initial(a, NodeId::new(0));
    split_leaf(&mut hf, a, b, NodeId::new(1));
    hf.validate().expect("two-leaf bootstrap");

    let spawned_h = platform.spawn(
        Box::new(HAgentBehavior::new(
            config,
            hf,
            Vec::new(),
            3,
            stats.clone(),
        )),
        hagent_node,
    );
    assert_eq!(spawned_h, hagent);

    (platform, stats, inbox_a, inbox_b)
}

/// Tentpole: two overloaded leaves in disjoint subtrees request splits at
/// the same instant. With the pipelined lease table both are granted —
/// no denial, two commits — where the single-flight protocol would have
/// bounced one.
#[test]
fn disjoint_splits_proceed_in_parallel() {
    let t = SimDuration::from_millis(5);
    let (mut platform, stats, inbox_a, inbox_b) =
        two_leaf_world(LocationConfig::default(), vec![t], vec![t]);
    platform.run_for(SimDuration::from_millis(500));

    let snap = stats.snapshot();
    assert_eq!(snap.splits, 2, "both disjoint splits must commit");
    assert_eq!(snap.rehash_denied, 0, "no denial at concurrency > 1");
    assert_eq!(snap.trackers, 4);
    assert!(denials(&inbox_a).is_empty(), "{:?}", denials(&inbox_a));
    assert!(denials(&inbox_b).is_empty(), "{:?}", denials(&inbox_b));
    // Each requester was installed with a committed version.
    assert!(!installed_versions(&inbox_a).is_empty());
    assert!(!installed_versions(&inbox_b).is_empty());
}

/// Satellite: in the single-flight ablation the second requester is denied
/// `Busy` (pipeline full), and its scripted retry lands once the
/// conflicting rehash has committed and cooled down.
#[test]
fn busy_denied_split_retries_and_lands() {
    let config = LocationConfig::default().with_rehash_concurrency(1);
    let (mut platform, stats, _inbox_a, inbox_b) = two_leaf_world(
        config,
        vec![SimDuration::from_millis(5)],
        // B asks while A's lease is in flight (denied Busy), then retries
        // after A's split has committed and the cooldown has expired.
        vec![SimDuration::from_millis(6), SimDuration::from_millis(300)],
    );
    platform.run_for(SimDuration::from_millis(800));

    assert_eq!(
        denials(&inbox_b),
        vec![DenyReason::Busy],
        "the overlapping-in-time request must be denied Busy exactly once"
    );
    let snap = stats.snapshot();
    assert_eq!(snap.splits, 2, "the retried split must land");
    assert_eq!(snap.rehash_denied, 1);
    assert!(
        !installed_versions(&inbox_b).is_empty(),
        "B must be installed with its own committed split"
    );
}

/// Drives steady registration traffic at one real IAgent and periodically
/// installs hash-function versions that rehash a *distant* subtree.
struct DistantNoise {
    iagent: AgentId,
    iagent_node: NodeId,
    /// Register targets that hash to the IAgent under test.
    targets: Vec<AgentId>,
    sent: usize,
    /// Pre-built distant versions, installed at the scheduled times.
    installs: Vec<(SimDuration, HashFunction)>,
    next_install: usize,
}

impl Agent for DistantNoise {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(5));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        let agent = self.targets[self.sent % self.targets.len()];
        self.sent += 1;
        let here = ctx.node();
        ctx.send(
            self.iagent,
            self.iagent_node,
            Wire::Register { agent, node: here }.payload(),
        );
        while let Some((at, hf)) = self.installs.get(self.next_install) {
            if ctx.now().saturating_since(SimTime::ZERO) < *at {
                break;
            }
            let hf = hf.clone();
            self.next_install += 1;
            ctx.send(
                self.iagent,
                self.iagent_node,
                Wire::InstallHashFn { hf }.payload(),
            );
        }
        ctx.set_timer(SimDuration::from_millis(5));
    }
}

impl std::fmt::Debug for DistantNoise {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistantNoise").finish_non_exhaustive()
    }
}

/// Satellite regression: installs of versions that only rehashed a distant
/// subtree must not reset this tracker's rate statistics or back off its
/// split check. Under the old global cooldown, a distant install every
/// 150 ms wiped the rate window before it could ever cross `T_max`, so the
/// overdue split request was silenced indefinitely.
#[test]
fn distant_install_does_not_silence_an_overdue_split() {
    let mut platform = SimPlatform::new(lan(3), PlatformConfig::default().with_seed(13));
    let stats = SharedSchemeStats::new();

    let requests: Inbox = Arc::default();
    let puppet_hagent = platform.spawn(
        Box::new(ScriptedLeaf {
            script: Vec::new(),
            next: 0,
            inbox: requests.clone(),
        }),
        NodeId::new(2),
    );

    // The real IAgent under test owns the left leaf; the right leaf and
    // its successive distant splits belong to dummy ids never spawned.
    let ia = AgentId::new(platform.next_agent_id());
    let mut hf = HashFunction::initial(ia, NodeId::new(0));
    split_leaf(&mut hf, ia, AgentId::new(9001), NodeId::new(1));
    hf.validate().expect("two-leaf bootstrap");

    // Distant versions: the right subtree keeps splitting; the tested
    // leaf's hyper-label never changes.
    let mut installs = Vec::new();
    let mut distant = hf.clone();
    for (i, at_ms) in [150u64, 300, 450].into_iter().enumerate() {
        split_leaf(
            &mut distant,
            AgentId::new(9001),
            AgentId::new(9002 + i as u64),
            NodeId::new(1),
        );
        installs.push((SimDuration::from_millis(at_ms), distant.clone()));
    }

    let config = LocationConfig {
        t_max: 50.0,
        check_interval: SimDuration::from_millis(50),
        ..LocationConfig::default()
    };
    let spawned = platform.spawn(
        Box::new(IAgentBehavior::initial(
            config,
            puppet_hagent,
            NodeId::new(2),
            hf.clone(),
            stats.clone(),
        )),
        NodeId::new(0),
    );
    assert_eq!(spawned, ia);

    // 200 requests/s of traffic, all for keys in the tested leaf.
    let targets: Vec<AgentId> = (0..20_000u64)
        .map(AgentId::new)
        .filter(|&a| hf.is_responsible(ia, a))
        .take(50)
        .collect();
    assert_eq!(targets.len(), 50);
    platform.spawn(
        Box::new(DistantNoise {
            iagent: ia,
            iagent_node: NodeId::new(0),
            targets,
            sent: 0,
            installs,
            next_install: 0,
        }),
        NodeId::new(1),
    );

    platform.run_for(SimDuration::from_millis(600));

    let first_request = requests
        .lock()
        .unwrap()
        .iter()
        .find_map(|(at, m)| matches!(m, Wire::SplitRequest { .. }).then_some(*at));
    let at =
        first_request.expect("the overdue split request must be sent despite distant installs");
    assert!(
        at.saturating_since(SimTime::ZERO) < SimDuration::from_millis(400),
        "split request delayed to {at:?}: distant installs reset the rate window"
    );
}
