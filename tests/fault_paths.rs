//! Targeted fault-path tests: the retry give-up and mailbox double-expiry
//! paths, asserted through their trace events and metrics, the rehash
//! request give-up (its re-ask must wait out the HAgent's lease timeout),
//! plus the transport-randomness isolation guarantee (enabling loss must
//! not perturb the agent-visible RNG stream).

use std::sync::{Arc, Mutex};

use agentrack::core::{
    CentralizedScheme, DirectoryClient, HashFunction, IAgentBehavior, LocationConfig,
    LocationScheme, SharedSchemeStats, Wire,
};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, SimTime, Topology, TraceEvent, TraceSink};
use agentrack::workload::{Metrics, QuerierBehavior, TargetSelector, Targets};

fn lan(nodes: u32) -> Topology {
    Topology::lan(nodes, DurationDist::Constant(SimDuration::from_micros(300)))
}

/// A locate aimed at an agent that never registered burns its whole retry
/// budget, emits `RetryGiveUp`, and surfaces as a recorded failure.
#[test]
fn locate_of_phantom_agent_gives_up_with_a_trace() {
    let mut platform = SimPlatform::new(lan(4), PlatformConfig::default().with_seed(7));
    let sink = TraceSink::bounded(100_000);
    platform.set_trace_sink(sink.clone());
    let mut scheme = CentralizedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let phantom = AgentId::new(0xDEAD);
    let metrics = Metrics::new();
    let querier = QuerierBehavior::new(
        scheme.make_client(),
        Targets::Fixed(vec![phantom]),
        TargetSelector::Uniform,
        SimDuration::from_millis(100),
        DurationDist::Constant(SimDuration::from_millis(100)),
        1,
        metrics.clone(),
    );
    platform.spawn(Box::new(querier), NodeId::new(1));
    platform.run_for(SimDuration::from_secs(20));

    let failures = metrics.with(|m| m.locate_failures);
    assert_eq!(failures, 1, "the phantom locate must fail exactly once");
    let give_ups = sink
        .snapshot()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RetryGiveUp { .. }))
        .count();
    assert_eq!(give_ups, 1, "expected exactly one RetryGiveUp trace event");
}

/// Drives a directory client by hand: sends guaranteed-delivery mail to a
/// never-registered target at scheduled times.
struct MailSender {
    client: Box<dyn DirectoryClient>,
    target: AgentId,
    send_at: Vec<SimDuration>,
    next: usize,
    send_timer: Option<TimerId>,
}

impl MailSender {
    fn arm(&mut self, ctx: &mut AgentCtx<'_>) {
        if let Some(&at) = self.send_at.get(self.next) {
            let elapsed = ctx.now().saturating_since(agentrack::sim::SimTime::ZERO);
            self.send_timer = Some(ctx.set_timer(at - elapsed));
        }
    }
}

impl Agent for MailSender {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.send_timer == Some(timer) {
            self.send_timer = None;
            let seq = self.next as u8;
            self.next += 1;
            let target = self.target;
            self.client.send_via(ctx, target, vec![seq]);
            self.arm(ctx);
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let _ = self.client.on_message(ctx, from, payload);
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

impl std::fmt::Debug for MailSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailSender").finish_non_exhaustive()
    }
}

/// Two pieces of mail buffered 5 s apart for a target that never shows up
/// expire in two separate sweeps: two `MailExpired` trace events, and the
/// tracker's `mail_lost` gauge counts both.
#[test]
fn buffered_mail_expires_twice_and_is_counted() {
    let mut platform = SimPlatform::new(lan(4), PlatformConfig::default().with_seed(9));
    let sink = TraceSink::bounded(100_000);
    platform.set_trace_sink(sink.clone());
    let mut scheme = CentralizedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let sender = MailSender {
        client: scheme.make_client(),
        target: AgentId::new(0xBEEF),
        send_at: vec![SimDuration::from_millis(100), SimDuration::from_secs(5)],
        next: 0,
        send_timer: None,
    };
    platform.spawn(Box::new(sender), NodeId::new(2));
    // The mailbox TTL is 10 s: the first item expires around t=10.1 s, the
    // second around t=15 s — comfortably inside 25 s.
    platform.run_for(SimDuration::from_secs(25));

    let expiries: Vec<usize> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::MailExpired { lost, .. } => Some(lost),
            _ => None,
        })
        .collect();
    assert_eq!(
        expiries,
        vec![1, 1],
        "expected two single-item expiry sweeps, got {expiries:?}"
    );
    let mail_lost: u64 = scheme
        .registry()
        .snapshot()
        .trackers
        .iter()
        .map(|(_, t)| t.mail_lost)
        .sum();
    assert_eq!(mail_lost, 2, "both expired items must be counted as lost");
}

/// Plays a dead-silent HAgent (records split requests, never answers) and
/// simultaneously drives steady registration traffic at the IAgent.
struct SilentHAgent {
    iagent: AgentId,
    iagent_node: NodeId,
    requests: Arc<Mutex<Vec<SimTime>>>,
    sent: u64,
}

impl Agent for SilentHAgent {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(5));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        let agent = AgentId::new(3000 + self.sent % 64);
        self.sent += 1;
        let here = ctx.node();
        ctx.send(
            self.iagent,
            self.iagent_node,
            Wire::Register { agent, node: here }.payload(),
        );
        ctx.set_timer(SimDuration::from_millis(5));
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        if let Some(Wire::SplitRequest { .. }) = Wire::from_payload(payload) {
            self.requests.lock().unwrap().push(ctx.now());
        }
    }
}

impl std::fmt::Debug for SilentHAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SilentHAgent").finish_non_exhaustive()
    }
}

/// A split request whose answer is lost (the HAgent never replies) is
/// given up and re-asked only after the HAgent's own lease timeout plus
/// its commit cooldown have certainly passed — re-asking earlier would
/// race a lease that may still be live on the HAgent. The old threshold
/// (`rehash_cooldown + rate_window * 4`) sat *below* the lease timeout,
/// so the retry was guaranteed a pointless Busy denial.
#[test]
fn lost_rehash_answer_gives_up_after_the_lease_timeout() {
    let mut platform = SimPlatform::new(lan(2), PlatformConfig::default().with_seed(21));
    let requests: Arc<Mutex<Vec<SimTime>>> = Arc::default();

    let config = LocationConfig {
        // Lease timeout = rate_window * 5 = 500 ms; give-up threshold
        // = 500 ms + rehash_cooldown (100 ms) = 600 ms. The old formula
        // gave 100 ms + 4 * 100 ms = 500 ms — inside the lease window.
        rate_window: SimDuration::from_millis(100),
        check_interval: SimDuration::from_millis(50),
        ..LocationConfig::default()
    };
    assert_eq!(config.rehash_lease_timeout(), SimDuration::from_millis(500));

    let ia = AgentId::new(platform.next_agent_id());
    let driver = AgentId::new(ia.raw() + 1);
    let hf = HashFunction::initial(ia, NodeId::new(0));
    let spawned = platform.spawn(
        Box::new(IAgentBehavior::initial(
            config,
            driver, // the silent driver plays the HAgent
            NodeId::new(1),
            hf,
            SharedSchemeStats::new(),
        )),
        NodeId::new(0),
    );
    assert_eq!(spawned, ia);
    platform.spawn(
        Box::new(SilentHAgent {
            iagent: ia,
            iagent_node: NodeId::new(0),
            requests: requests.clone(),
            sent: 0,
        }),
        NodeId::new(1),
    );

    platform.run_for(SimDuration::from_secs(2));

    let times = requests.lock().unwrap().clone();
    assert!(
        times.len() >= 2,
        "the IAgent must give up on the lost answer and re-ask: {times:?}"
    );
    let gap = times[1].saturating_since(times[0]);
    assert!(
        gap > SimDuration::from_millis(600),
        "re-asked after only {gap:?}: inside the HAgent's lease window"
    );
    assert!(
        gap < SimDuration::from_millis(750),
        "re-ask took {gap:?}: give-up threshold drifted from the lease timeout"
    );
}

/// Sends a message to a fixed peer every tick and records what the
/// agent-visible RNG hands out.
struct RngProbe {
    peer: AgentId,
    peer_node: NodeId,
    samples: Arc<Mutex<Vec<u64>>>,
    remaining: u32,
}

impl Agent for RngProbe {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(100));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let draw = ctx.rng().next_u64();
        self.samples.lock().expect("samples poisoned").push(draw);
        let (peer, peer_node) = (self.peer, self.peer_node);
        ctx.send(peer, peer_node, Payload::encode(&draw));
        ctx.set_timer(SimDuration::from_millis(100));
    }
}

impl std::fmt::Debug for RngProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RngProbe").finish_non_exhaustive()
    }
}

/// A message sink that does nothing (its traffic exists to be lost).
#[derive(Debug)]
struct Sink;

impl Agent for Sink {}

fn rng_stream_under_loss(loss: f64) -> (Vec<u64>, u64) {
    let topology = lan(2).with_loss(loss);
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(33));
    let sink_id = platform.spawn(Box::new(Sink), NodeId::new(1));
    let samples = Arc::new(Mutex::new(Vec::new()));
    let probe = RngProbe {
        peer: sink_id,
        peer_node: NodeId::new(1),
        samples: Arc::clone(&samples),
        remaining: 50,
    };
    platform.spawn(Box::new(probe), NodeId::new(0));
    platform.run_for(SimDuration::from_secs(10));
    let lost = platform.stats().messages_lost;
    let out = samples.lock().expect("samples poisoned").clone();
    (out, lost)
}

/// Transport randomness (loss, duplication, latency jitter) draws from its
/// own forked stream: turning loss on must not shift a single value the
/// agents' RNG hands out, so enabling faults cannot perturb workload
/// arrival sequences.
#[test]
fn loss_decisions_do_not_perturb_the_agent_rng_stream() {
    let (clean, lost_clean) = rng_stream_under_loss(0.0);
    let (lossy, lost_lossy) = rng_stream_under_loss(0.5);
    assert_eq!(lost_clean, 0);
    assert!(lost_lossy > 0, "the loss knob must actually drop messages");
    assert_eq!(clean.len(), 50);
    assert_eq!(
        clean, lossy,
        "agent-visible RNG draws shifted when loss was enabled"
    );
}
