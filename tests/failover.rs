//! Fault-tolerance tests: crashing the HAgent (the paper's acknowledged
//! "vulnerability point") with and without the standby extension.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use agentrack::core::{HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::NodeId;
use agentrack::platform::{PlatformConfig, SimPlatform};
use agentrack::sim::{DurationDist, SimDuration, Topology};
use agentrack::workload::{
    Metrics, NodeSelector, QuerierBehavior, Scenario, TAgentBehavior, TargetSelector, Targets,
};

/// Builds a running system with TAgents and returns everything needed to
/// continue driving it by hand.
fn build(
    scheme: &mut HashedScheme,
    agents: usize,
) -> (SimPlatform, Metrics, Vec<agentrack::platform::AgentId>) {
    let topology = Topology::lan(8, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(21));
    scheme.bootstrap(&mut platform);
    let metrics = Metrics::new();
    let mut tagents = Vec::new();
    for i in 0..agents {
        let behavior = TAgentBehavior::new(
            scheme.make_client(),
            DurationDist::Constant(SimDuration::from_millis(400)),
            NodeSelector::Uniform,
            8,
            metrics.clone(),
        );
        tagents.push(platform.spawn(Box::new(behavior), NodeId::new((i % 8) as u32)));
    }
    (platform, metrics, tagents)
}

fn add_querier(
    platform: &mut SimPlatform,
    scheme: &HashedScheme,
    targets: Vec<agentrack::platform::AgentId>,
    start_s: f64,
    count: u64,
    metrics: &Metrics,
) {
    let behavior = QuerierBehavior::new(
        scheme.make_client(),
        Targets::Fixed(targets),
        TargetSelector::Uniform,
        SimDuration::from_secs_f64(start_s),
        DurationDist::Constant(SimDuration::from_millis(100)),
        count,
        metrics.clone(),
    );
    platform.spawn(Box::new(behavior), NodeId::new(0));
}

/// With a standby deployed, killing the primary HAgent leaves the system
/// serving: stale copies still refresh (via the standby), locates keep
/// completing, and rehashing freezes rather than wedging anything.
#[test]
fn standby_keeps_the_system_serving_after_the_primary_dies() {
    let mut scheme = HashedScheme::new(LocationConfig::default()).with_standby();
    let (mut platform, metrics, tagents) = build(&mut scheme, 60);

    // Let the system settle and grow a few IAgents.
    platform.run_for(SimDuration::from_secs(10));
    let before = scheme.stats();
    assert!(before.splits > 0, "load should have split the tree");

    // Crash the primary.
    let (hagent, _) = scheme.hagent().expect("bootstrapped");
    assert!(platform.kill(hagent));

    // Keep the world moving and query it.
    add_querier(&mut platform, &scheme, tagents, 2.0, 60, &metrics);
    platform.run_for(SimDuration::from_secs(15));

    metrics.with(|m| {
        assert!(
            m.locate_times.len() >= 55,
            "locates must keep completing after the crash: {} answered, {} failed",
            m.locate_times.len(),
            m.locate_failures
        );
    });
    // Rehashing is frozen: the tracker count cannot have grown since the
    // crash (the standby denies splits).
    assert_eq!(scheme.stats().trackers, before.trackers);
}

/// Without a standby the system still *serves* from existing copies — the
/// paper's design keeps the HAgent off the fast path — but staleness can
/// no longer be repaired.
#[test]
fn without_standby_existing_copies_still_serve() {
    let mut scheme = HashedScheme::new(LocationConfig::default());
    let (mut platform, metrics, tagents) = build(&mut scheme, 40);
    platform.run_for(SimDuration::from_secs(10));

    // By now the tree is in steady state and every lazily-propagated
    // LHAgent copy has caught up, so killing the HAgent here would leave
    // nothing stale. Drive the system back into growth with a burst of
    // fast-moving agents (kept off node 0, where the querier will live)
    // and crash the HAgent the instant the next split lands: the new
    // version reaches the involved IAgents, but node 0's copy — lazy
    // propagation, no traffic at node 0 — is stale at crash time and can
    // never be repaired afterwards.
    for i in 0..24u32 {
        let behavior = TAgentBehavior::new(
            scheme.make_client(),
            DurationDist::Constant(SimDuration::from_millis(100)),
            NodeSelector::Uniform,
            8,
            metrics.clone(),
        );
        platform.spawn(Box::new(behavior), NodeId::new(1 + (i % 7)));
    }
    let splits_before = scheme.stats().splits;
    let mut waited = 0u32;
    while scheme.stats().splits == splits_before {
        platform.run_for(SimDuration::from_millis(10));
        waited += 1;
        assert!(waited < 2_000, "burst load never split the tree");
    }

    let (hagent, _) = scheme.hagent().expect("bootstrapped");
    assert!(platform.kill(hagent));

    add_querier(&mut platform, &scheme, tagents, 2.0, 40, &metrics);
    platform.run_for(SimDuration::from_secs(15));

    metrics.with(|m| {
        // Locates that resolve through still-fresh copies keep working —
        // the HAgent is off the fast path. But copies that were stale at
        // crash time can never be repaired, so a minority of locates fail:
        // exactly the vulnerability the paper names (and the standby
        // extension removes; compare the test above).
        assert!(
            m.locate_times.len() >= 25,
            "most locates still complete: {} answered",
            m.locate_times.len()
        );
        assert!(
            m.locate_failures > 0,
            "unrepairable staleness must surface as failures"
        );
    });
}

/// The standby deployment does not change scenario-level behaviour when
/// nothing fails.
#[test]
fn standby_is_transparent_when_healthy() {
    let scenario = Scenario::new("standby-healthy")
        .with_agents(60)
        .with_queries(100)
        .with_seconds(10.0, 5.0);
    let plain = scenario.run(&mut HashedScheme::new(LocationConfig::default()));
    let with_standby =
        scenario.run(&mut HashedScheme::new(LocationConfig::default()).with_standby());
    assert_eq!(plain.locate_failures, 0);
    assert_eq!(with_standby.locate_failures, 0);
    assert!((plain.mean_locate_ms - with_standby.mean_locate_ms).abs() < 2.0);
}
