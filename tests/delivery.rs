//! Guaranteed delivery (the paper's §6 open problem): messages must reach
//! an agent even when it "moves faster than the requests for its
//! location". Compares the naive locate-then-send pattern against
//! tracker-mediated delivery (`DirectoryClient::send_via`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use agentrack::core::{ClientEvent, DirectoryClient, HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, Topology};

const NODES: u32 = 6;

/// Hops constantly (30 ms residence, so ~10% of its life is in transit)
/// and counts everything that reaches it.
struct FastMover {
    client: Box<dyn DirectoryClient>,
    received: Arc<AtomicU64>,
}

impl Agent for FastMover {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        ctx.set_timer(SimDuration::from_millis(30));
    }
    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        ctx.set_timer(SimDuration::from_millis(30));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.client.on_timer(ctx, timer) == ClientEvent::NotMine {
            let next = NodeId::new((ctx.node().raw() + 1) % NODES);
            ctx.dispatch(next);
        }
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        match self.client.on_message(ctx, from, payload) {
            ClientEvent::Mail { .. } => {
                self.received.fetch_add(1, Ordering::Relaxed);
            }
            ClientEvent::NotMine
                // A direct application message (locate-then-send path).
                if payload.decode::<String>().is_ok() => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                }
            _ => {}
        }
    }
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

/// Sends one message per tick to the target, `mediated` choosing the path.
struct Sender {
    client: Box<dyn DirectoryClient>,
    target: AgentId,
    mediated: bool,
    remaining: u32,
    sent: Arc<AtomicU64>,
    next_token: u64,
    tick: Option<TimerId>,
}

impl Agent for Sender {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.tick = Some(ctx.set_timer(SimDuration::from_millis(50)));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.tick == Some(timer) {
            if self.remaining > 0 {
                self.remaining -= 1;
                self.sent.fetch_add(1, Ordering::Relaxed);
                if self.mediated {
                    assert!(self.client.send_via(ctx, self.target, vec![1, 2, 3]));
                } else {
                    self.next_token += 1;
                    self.client.locate(ctx, self.target, self.next_token);
                }
                self.tick = Some(ctx.set_timer(SimDuration::from_millis(50)));
            }
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if let ClientEvent::Located { target, node, .. } =
            self.client.on_message(ctx, from, payload)
        {
            // Naive pattern: fire at the located node and hope.
            ctx.send(target, node, Payload::encode(&"direct".to_owned()));
        }
    }
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        // The naive sender does not retry its app message; the mechanism's
        // own traffic handles itself.
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

fn run(mediated: bool) -> (u64, u64) {
    let topology = Topology::lan(NODES, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(33));
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let received = Arc::new(AtomicU64::new(0));
    let mover = platform.spawn(
        Box::new(FastMover {
            client: scheme.make_client(),
            received: received.clone(),
        }),
        NodeId::new(1),
    );

    let sent = Arc::new(AtomicU64::new(0));
    platform.spawn(
        Box::new(Sender {
            client: scheme.make_client(),
            target: mover,
            mediated,
            remaining: 100,
            sent: sent.clone(),
            next_token: 0,
            tick: None,
        }),
        NodeId::new(0),
    );

    platform.run_for(SimDuration::from_secs(20));
    (
        sent.load(Ordering::Relaxed),
        received.load(Ordering::Relaxed),
    )
}

/// The mediated path delivers everything, even to an agent that never
/// stops moving.
#[test]
fn mediated_delivery_is_lossless_under_constant_motion() {
    let (sent, received) = run(true);
    assert_eq!(sent, 100);
    assert_eq!(received, sent, "every mediated message must arrive");
}

/// The naive locate-then-send pattern races the mover and loses some of
/// the time — the gap the paper's §6 names and this extension closes.
#[test]
fn locate_then_send_drops_messages_to_fast_movers() {
    let (sent, received) = run(false);
    assert_eq!(sent, 100);
    assert!(
        received < sent,
        "expected the naive pattern to lose messages ({received}/{sent} arrived)"
    );
    assert!(
        received > sent / 2,
        "but it should not collapse entirely ({received}/{sent})"
    );
}
