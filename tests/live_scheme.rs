//! The hash-based location mechanism on the live (threaded) runtime:
//! the same scheme behaviours that run under the deterministic simulator,
//! now crossing real threads.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use agentrack::core::{ClientEvent, DirectoryClient, HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::{Agent, AgentCtx, AgentId, LivePlatform, NodeId, Payload, TimerId};
use agentrack::sim::SimDuration;

/// A roaming agent that registers and reports its moves.
struct Roamer {
    client: Box<dyn DirectoryClient>,
    hops_left: u32,
    node_count: u32,
}

impl Agent for Roamer {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        ctx.set_timer(SimDuration::from_millis(30));
    }

    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        if self.hops_left > 0 {
            ctx.set_timer(SimDuration::from_millis(30));
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.client.on_timer(ctx, timer) == ClientEvent::NotMine && self.hops_left > 0 {
            self.hops_left -= 1;
            let next = NodeId::new((ctx.node().raw() + 1) % self.node_count);
            ctx.dispatch(next);
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let _ = self.client.on_message(ctx, from, payload);
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

type Found = Arc<Mutex<Vec<(AgentId, NodeId)>>>;

/// Locates each target once per tick and records the answers.
struct Locator {
    client: Box<dyn DirectoryClient>,
    targets: Vec<AgentId>,
    found: Found,
    next_token: u64,
    tick: Option<TimerId>,
}

impl Agent for Locator {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.tick = Some(ctx.set_timer(SimDuration::from_millis(100)));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.tick == Some(timer) {
            for i in 0..self.targets.len() {
                let target = self.targets[i];
                let token = self.next_token;
                self.next_token += 1;
                self.client.locate(ctx, target, token);
            }
            self.tick = Some(ctx.set_timer(SimDuration::from_millis(150)));
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if let ClientEvent::Located { target, node, .. } =
            self.client.on_message(ctx, from, payload)
        {
            self.found.lock().unwrap().push((target, node));
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

#[test]
fn hashed_scheme_runs_on_real_threads() {
    const NODES: u32 = 4;
    let mut platform = LivePlatform::new(NODES);
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let roamers: Vec<AgentId> = (0..6)
        .map(|i| {
            platform.spawn(
                Box::new(Roamer {
                    client: scheme.make_client(),
                    hops_left: 50,
                    node_count: NODES,
                }),
                NodeId::new(i % NODES),
            )
        })
        .collect();

    let found: Found = Arc::default();
    platform.spawn(
        Box::new(Locator {
            client: scheme.make_client(),
            targets: roamers.clone(),
            found: found.clone(),
            next_token: 0,
            tick: None,
        }),
        NodeId::new(0),
    );

    // Wall-clock run: every target should be located several times.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        {
            let found = found.lock().unwrap();
            let all_found = roamers
                .iter()
                .all(|r| found.iter().filter(|(t, _)| t == r).count() >= 3);
            if all_found {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "live locates did not complete in time: {:?}",
            found.lock().unwrap()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let stats = platform.shutdown();
    assert!(stats.migrations >= 50, "roamers moved: {stats:?}");
    // Every reported node is in range (locations are meaningful).
    for (_, node) in found.lock().unwrap().iter() {
        assert!(node.raw() < NODES);
    }
}
