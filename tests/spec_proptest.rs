//! Property tests of the scenario-spec layer: generated valid specs
//! survive a serialize/parse round trip unchanged, and broken specs of
//! every stripe come back as spanned `SpecError`s naming the offending
//! field — never a panic.

use agentrack_bench::spec::{
    AxisSpec, ChaosFaults, ColumnSpec, FaultSpec, SchemeSpec, SpikeSpec, WorkloadSpec,
};
use agentrack_bench::ScenarioSpec;
use proptest::prelude::*;

/// A scheme arm with every knob off; tests switch on what they need.
fn plain_scheme(kind: &str) -> SchemeSpec {
    SchemeSpec {
        kind: kind.to_string(),
        label: None,
        patient: None,
        standby: None,
        strict_versions: None,
        version_audit_s: None,
        replication_ms: None,
        rehash_concurrency: None,
        eager_propagation: None,
        simple_splits_only: None,
        blind_splits: None,
        locality_migration: None,
        threshold_max: None,
        threshold_min: None,
    }
}

fn plain_workload(agents: usize) -> WorkloadSpec {
    WorkloadSpec {
        agents,
        residence_ms: None,
        queries: None,
        nodes: None,
        queriers: None,
        warmup_s: None,
        measure_s: None,
        grace_s: None,
        query_skew: None,
        mobility_skew: None,
        churn_lifespan_ms: None,
        loss: None,
        duplication: None,
        regions: None,
        inter_region_ms: None,
        freshness_ms: None,
    }
}

fn column(field: &str) -> ColumnSpec {
    ColumnSpec {
        field: field.to_string(),
        scheme: None,
        header: None,
    }
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        (10usize..400, proptest::option::of(100u64..1000)),
        (
            proptest::option::of(50u64..400),
            proptest::option::of(8u32..32),
        ),
        (
            proptest::option::of(5.0f64..30.0),
            proptest::option::of(0.0f64..0.05),
        ),
    )
        .prop_map(
            |((agents, residence_ms), (queries, nodes), (grace_s, loss))| WorkloadSpec {
                residence_ms,
                queries,
                nodes,
                grace_s,
                loss,
                ..plain_workload(agents)
            },
        )
}

fn arb_scheme() -> impl Strategy<Value = SchemeSpec> {
    prop_oneof![
        (
            (
                proptest::option::of(any::<bool>()),
                proptest::option::of(any::<bool>())
            ),
            (
                proptest::option::of(1.0f64..5.0),
                proptest::option::of(1usize..8)
            ),
        )
            .prop_map(
                |((patient, standby), (version_audit_s, rehash_concurrency))| SchemeSpec {
                    patient,
                    standby,
                    version_audit_s,
                    rehash_concurrency,
                    ..plain_scheme("hashed")
                }
            ),
        (0usize..3, proptest::option::of(any::<bool>())).prop_map(|(k, patient)| SchemeSpec {
            patient,
            ..plain_scheme(["centralized", "home-registry", "forwarding"][k])
        }),
    ]
}

fn arb_sweep() -> impl Strategy<Value = Option<Vec<AxisSpec>>> {
    proptest::option::of(prop_oneof![
        proptest::collection::vec(50u64..500, 1..4).prop_map(|vs| vec![AxisSpec {
            param: "agents".to_string(),
            values: vs.into_iter().map(|v| v as f64).collect(),
        }]),
        proptest::collection::vec(100u64..900, 1..4).prop_map(|vs| vec![AxisSpec {
            param: "residence_ms".to_string(),
            values: vs.into_iter().map(|v| v as f64).collect(),
        }]),
    ])
}

fn arb_columns() -> impl Strategy<Value = Vec<ColumnSpec>> {
    const FIELDS: [&str; 6] = [
        "issued",
        "completed",
        "success_pct",
        "p95_ms",
        "splits",
        "violations",
    ];
    proptest::collection::vec(0usize..FIELDS.len(), 1..5).prop_map(|idxs| {
        let mut cols: Vec<ColumnSpec> = Vec::new();
        for i in idxs {
            if !cols.iter().any(|c| c.field == FIELDS[i]) {
                cols.push(column(FIELDS[i]));
            }
        }
        cols
    })
}

fn arb_valid_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (0u32..10_000, arb_workload()),
        (arb_sweep(), arb_scheme()),
        (
            proptest::option::of(any::<bool>()),
            proptest::option::of(proptest::collection::vec(any::<u64>(), 1..4)),
        ),
        arb_columns(),
    )
        .prop_map(
            |((n, workload), (sweep, scheme), (scheme_rows, seeds), columns)| ScenarioSpec {
                name: format!("gen-{n}"),
                title: format!("generated spec {n}"),
                workload,
                sweep,
                schemes: vec![scheme],
                scheme_rows,
                seeds,
                faults: None,
                spikes: None,
                audit: None,
                trace_buffer: None,
                columns,
            },
        )
}

/// One way to break a valid spec, with the path fragment the resulting
/// error must name.
type Breakage = (fn(&mut ScenarioSpec), &'static str);

fn arb_breakage() -> impl Strategy<Value = Breakage> {
    let cases: Vec<Breakage> = vec![
        (|s| s.name = "bad name!".to_string(), "name"),
        (|s| s.workload.agents = 0, "workload.agents"),
        (
            |s| s.workload.residence_ms = Some(0),
            "workload.residence_ms",
        ),
        (|s| s.workload.nodes = Some(0), "workload.nodes"),
        (|s| s.workload.loss = Some(1.5), "loss"),
        (|s| s.seeds = Some(Vec::new()), "seeds"),
        (|s| s.trace_buffer = Some(0), "trace_buffer"),
        (|s| s.schemes.clear(), "schemes"),
        (|s| s.schemes[0].kind = "quantum".to_string(), "kind"),
        (|s| s.schemes[0].threshold_min = Some(0.5), "threshold_min"),
        (|s| s.columns.clear(), "columns"),
        (|s| s.columns[0].field = "bogus".to_string(), "field"),
        (
            |s| {
                s.sweep = Some(vec![AxisSpec {
                    param: "teleportation".to_string(),
                    values: vec![1.0],
                }]);
            },
            "param",
        ),
        (
            |s| {
                s.spikes = Some(vec![SpikeSpec {
                    at_frac: 0.2,
                    span_frac: 0.2,
                    queries_factor: Some(10),
                    queries: Some(100),
                    queriers: 8,
                }]);
            },
            "queries",
        ),
        (
            |s| {
                s.faults = Some(FaultSpec {
                    chaos: Some(ChaosFaults {
                        seed: 7,
                        intensity: Some(2.0),
                    }),
                    regional_partition: None,
                    region_sever: None,
                });
            },
            "intensity",
        ),
    ];
    (0..cases.len()).prop_map(move |i| cases[i])
}

proptest! {
    /// parse(to_json(spec)) is the identity on valid specs, and the
    /// JSON form itself is a fixed point.
    fn valid_specs_round_trip(spec in arb_valid_spec()) {
        prop_assert!(
            spec.validate().is_ok(),
            "generator produced an invalid spec: {:?}",
            spec.validate().err()
        );
        let json = spec.to_json();
        let reparsed = match ScenarioSpec::load_str(&json) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!(
                "round trip failed to parse: {e}"
            ))),
        };
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.to_json(), json);
    }

    /// Every class of semantic breakage surfaces as a `SpecError`
    /// naming the offending field — both from `validate` on the struct
    /// and from `load_str` on its JSON text (where the error also gains
    /// a source span when the key occurs literally).
    fn broken_specs_name_the_field(
        spec in arb_valid_spec(),
        breakage in arb_breakage(),
    ) {
        let (break_it, expect) = breakage;
        let mut spec = spec;
        break_it(&mut spec);
        let err = match spec.validate() {
            Err(e) => e,
            Ok(()) => return Err(TestCaseError::fail(format!(
                "breakage '{expect}' was not rejected"
            ))),
        };
        prop_assert!(
            err.path.contains(expect),
            "error path {:?} does not name {:?} (message: {})",
            err.path, expect, err.message
        );
        prop_assert!(!err.message.is_empty());
        let text_err = match ScenarioSpec::load_str(&spec.to_json()) {
            Err(e) => e,
            Ok(_) => return Err(TestCaseError::fail(
                "load_str accepted what validate rejected".to_string()
            )),
        };
        prop_assert!(text_err.path.contains(expect));
    }

    /// Arbitrary bytes never panic the loader.
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = ScenarioSpec::load_str(&text);
    }

    /// Truncating a valid document anywhere never panics the loader,
    /// and anything it rejects carries a non-empty path and message.
    fn truncation_never_panics(spec in arb_valid_spec(), frac in 0.0f64..1.0) {
        let json = spec.to_json();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((json.len() as f64) * frac) as usize;
        let mut cut = cut.min(json.len());
        while !json.is_char_boundary(cut) {
            cut -= 1;
        }
        if let Err(e) = ScenarioSpec::load_str(&json[..cut]) {
            prop_assert!(!e.path.is_empty());
            prop_assert!(!e.message.is_empty());
        }
    }
}
