//! Equivalence: the spec-driven trial runner reproduces the hand-coded
//! experiments byte for byte.
//!
//! The hand-coded `exp1`/`chaos`/`rehash_spike` grids and the committed
//! spec files under `specs/` describe the same experiments. Both paths
//! build the same `Scenario` values at the same seeds, so their CSV
//! tables must match exactly — any drift means the spec, the runner, or
//! the hand-coded experiment changed semantics. Each pair is checked
//! sequentially (`jobs = 1`) and across all cores, which also pins the
//! runner's determinism under parallel execution.

use agentrack_bench::{chaos, exp1, rehash_spike, run_spec, Fidelity, ScenarioSpec};

fn all_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn load_spec(name: &str) -> ScenarioSpec {
    let path = format!("{}/specs/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    ScenarioSpec::load_str(&text).unwrap_or_else(|e| panic!("loading {path}: {e}"))
}

fn assert_equivalent(name: &str, hand_coded: fn(Fidelity, usize) -> agentrack_bench::Table) {
    let spec = load_spec(name);
    for jobs in [1, all_cores()] {
        let expected = hand_coded(Fidelity::Quick, jobs).to_csv();
        let actual = run_spec(&spec, Fidelity::Quick, jobs).table.to_csv();
        assert_eq!(
            actual, expected,
            "spec {name} diverged from the hand-coded experiment at jobs={jobs}"
        );
    }
}

#[test]
fn spec_e1_matches_hand_coded_exp1() {
    assert_equivalent("e1", exp1);
}

#[test]
fn spec_e13_matches_hand_coded_chaos() {
    assert_equivalent("e13_chaos", chaos);
}

#[test]
fn spec_e17_matches_hand_coded_rehash_spike() {
    assert_equivalent("e17_rehash_spike", rehash_spike);
}

#[test]
fn spec_runner_is_deterministic_across_job_counts() {
    // The new spec-only workloads have no hand-coded twin; pin instead
    // that the runner's output is independent of the worker count.
    for name in ["diurnal", "hot_key_churn"] {
        let spec = load_spec(name);
        let sequential = run_spec(&spec, Fidelity::Quick, 1);
        let parallel = run_spec(&spec, Fidelity::Quick, all_cores());
        assert_eq!(
            sequential.table.to_csv(),
            parallel.table.to_csv(),
            "{name}: table differs between jobs=1 and jobs=all"
        );
        // Trial records must agree too, modulo the one wall-clock field.
        let strip = |trials: &[agentrack_bench::TrialRecord]| {
            let mut trials = trials.to_vec();
            for t in &mut trials {
                t.wall_ms = 0.0;
            }
            serde_json::to_string(&trials).unwrap()
        };
        assert_eq!(
            strip(&sequential.trials),
            strip(&parallel.trials),
            "{name}: trials differ between jobs=1 and jobs=all"
        );
    }
}
