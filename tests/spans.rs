//! Span-tree reconstruction over the trace ring: one multi-hop locate
//! under the forwarding scheme, folded into a causal span tree whose
//! child phases exactly account for the end-to-end latency.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use std::sync::{Arc, Mutex};

use agentrack::core::{
    ClientEvent, DirectoryClient, ForwardingScheme, LocationConfig, LocationScheme,
};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{CorrId, DurationDist, SimDuration, Topology, TraceSink};
use agentrack::trace_analysis::{build_span, to_folded, to_perfetto_json, Phase, SpanKind};

/// Registers, then migrates twice so the forwarding chain at its birth
/// node grows to two pointer hops.
struct Roamer {
    client: Box<dyn DirectoryClient>,
    itinerary: Vec<NodeId>,
    hop: Option<TimerId>,
}

impl Agent for Roamer {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        self.hop = Some(ctx.set_timer(SimDuration::from_millis(500)));
    }
    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        if !self.itinerary.is_empty() {
            self.hop = Some(ctx.set_timer(SimDuration::from_millis(500)));
        }
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let _ = self.client.on_message(ctx, from, payload);
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.hop == Some(timer) {
            self.hop = None;
            if let Some(next) = self.itinerary.pop() {
                ctx.dispatch(next);
            }
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }
}

/// Issues one locate for the roamer once it has settled.
struct Seeker {
    client: Box<dyn DirectoryClient>,
    target: AgentId,
    kickoff: Option<TimerId>,
    outcome: Arc<Mutex<Option<ClientEvent>>>,
}

impl Agent for Seeker {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.kickoff = Some(ctx.set_timer(SimDuration::from_secs(3)));
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let ev = self.client.on_message(ctx, from, payload);
        if matches!(ev, ClientEvent::Failed { .. } | ClientEvent::Located { .. }) {
            *self.outcome.lock().unwrap() = Some(ev);
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.kickoff == Some(timer) {
            self.kickoff = None;
            self.client.locate(ctx, self.target, 7);
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }
}

/// The acceptance invariant of the span subsystem: for a real multi-hop
/// locate under the forwarding scheme, the reconstructed span tree's
/// child durations sum exactly to the root's end-to-end latency — every
/// nanosecond lands in a named phase (or the explicit `other` bucket),
/// none vanishes.
#[test]
fn forwarding_span_tree_accounts_for_every_nanosecond() {
    let topology = Topology::lan(4, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(11));
    let sink = TraceSink::bounded(100_000);
    platform.set_trace_sink(sink.clone());
    let mut scheme = ForwardingScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    // Born on node 1, hops to node 2 then node 3: two chain pointers.
    let target = platform.spawn(
        Box::new(Roamer {
            client: scheme.make_client(),
            itinerary: vec![NodeId::new(3), NodeId::new(2)],
            hop: None,
        }),
        NodeId::new(1),
    );
    let outcome = Arc::new(Mutex::new(None));
    let seeker = platform.spawn(
        Box::new(Seeker {
            client: scheme.make_client(),
            target,
            kickoff: None,
            outcome: outcome.clone(),
        }),
        NodeId::new(0),
    );
    platform.run_for(SimDuration::from_secs(10));
    assert!(
        matches!(
            *outcome.lock().unwrap(),
            Some(ClientEvent::Located { target: t, .. }) if t == target
        ),
        "the locate must complete: {:?}",
        outcome.lock().unwrap()
    );
    assert_eq!(sink.dropped(), 0, "the ring must be large enough");

    let corr = CorrId::new(seeker.raw(), 7);
    let records = sink.snapshot();
    let tree = build_span(&records, corr).expect("the locate left trace records");

    // The chain was traversed: the locate crossed more wire hops than a
    // direct query-and-answer would, and some transport time is attributed
    // to chain traversal specifically.
    let transports = tree
        .children
        .iter()
        .filter(|c| matches!(c.kind, SpanKind::Transport))
        .count();
    assert!(
        transports >= 3,
        "client -> birth forwarder -> chain -> answer is at least 3 wire hops: {tree:#?}"
    );
    let breakdown = tree.breakdown();
    assert!(
        !breakdown.of(Phase::ChainTraversal).is_zero(),
        "forwarded ChainLocate hops must be attributed to chain traversal: {breakdown:#?}"
    );

    // The accounting invariant: child spans partition the root window, so
    // their durations sum to the end-to-end latency exactly.
    let child_sum: SimDuration = tree.children.iter().map(|c| c.duration()).sum();
    assert_eq!(
        child_sum,
        tree.duration(),
        "child phases must sum to the root latency: {tree:#?}"
    );
    let phase_sum: SimDuration = Phase::ALL.iter().map(|&p| breakdown.of(p)).sum();
    assert_eq!(phase_sum, breakdown.total, "phase buckets must partition");
    assert_eq!(breakdown.total, tree.duration());

    // Children never overlap and never leave the root window.
    for pair in tree.children.windows(2) {
        assert!(pair[0].end <= pair[1].start, "spans must not overlap");
    }
    assert!(tree.children.first().expect("non-empty").start >= tree.start);
    assert!(tree.children.last().expect("non-empty").end <= tree.end);

    // Both exporters accept the tree and are deterministic.
    let trees = [tree];
    assert_eq!(to_perfetto_json(&trees), to_perfetto_json(&trees));
    assert_eq!(
        to_folded(&trees, "forwarding"),
        to_folded(&trees, "forwarding")
    );
    assert!(to_folded(&trees, "forwarding").contains("chain_traversal"));
}

/// Re-running the same seeded platform yields byte-identical exporter
/// output — the spans side of the determinism guarantee.
#[test]
fn span_exports_are_deterministic_across_runs() {
    let run = || {
        let scenario = agentrack::workload::Scenario::new("span-det")
            .with_agents(20)
            .with_queries(40)
            .with_seconds(6.0, 3.0)
            .with_seed(77);
        let sink = TraceSink::bounded(65_536);
        let mut scheme = ForwardingScheme::new(LocationConfig::default());
        scenario.run_observed(&mut scheme, sink.clone());
        let trees = agentrack::trace_analysis::build_spans(&sink.snapshot());
        (to_perfetto_json(&trees), to_folded(&trees, "forwarding"))
    };
    let (perfetto_a, folded_a) = run();
    let (perfetto_b, folded_b) = run();
    assert_eq!(perfetto_a, perfetto_b);
    assert_eq!(folded_a, folded_b);
    assert!(!folded_a.is_empty(), "a real run must produce spans");
}
