//! Regression locks on the paper's headline results, at quick fidelity.
//!
//! These tests assert the *shapes* of the reproduced figures — who wins,
//! what grows, what stays flat — so a change that silently breaks the
//! reproduction fails CI. The full-fidelity numbers live in
//! `EXPERIMENTS.md` and regenerate with `cargo run -p agentrack-bench
//! --bin repro --release`.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use agentrack::core::{CentralizedScheme, HashedScheme, LocationConfig};
use agentrack::workload::Scenario;

fn scenario(agents: usize, residence_ms: u64) -> Scenario {
    Scenario::new(format!("shape-{agents}-{residence_ms}"))
        .with_agents(agents)
        .with_residence_ms(residence_ms)
        .with_queries(150)
        .with_seconds(12.0, 6.0)
}

fn run_hashed(s: &Scenario) -> agentrack::workload::ScenarioReport {
    s.run(&mut HashedScheme::new(LocationConfig::default()))
}

fn run_centralized(s: &Scenario) -> agentrack::workload::ScenarioReport {
    let config = LocationConfig {
        max_locate_attempts: 20,
        ..LocationConfig::default()
    };
    s.run(&mut CentralizedScheme::new(config))
}

/// Figure 7's shape: growing the population degrades the centralized
/// scheme but not the hash-based one.
#[test]
fn population_growth_hurts_centralized_not_hashed() {
    // 60 agents at 150 ms residence ≈ 400 upd/s; 300 agents ≈ 2000 upd/s —
    // past one tracker's capacity, far below the hashed scheme's aggregate.
    let light = scenario(60, 150);
    let heavy = scenario(300, 150);

    let cen_light = run_centralized(&light);
    let cen_heavy = run_centralized(&heavy);
    assert!(
        cen_heavy.mean_locate_ms > cen_light.mean_locate_ms * 5.0,
        "centralized must degrade: {:.2} -> {:.2} ms",
        cen_light.mean_locate_ms,
        cen_heavy.mean_locate_ms
    );

    let hash_light = run_hashed(&light);
    let hash_heavy = run_hashed(&heavy);
    assert!(
        hash_heavy.mean_locate_ms < hash_light.mean_locate_ms * 2.0,
        "hashed must stay near-constant: {:.2} -> {:.2} ms",
        hash_light.mean_locate_ms,
        hash_heavy.mean_locate_ms
    );
    assert!(
        hash_heavy.trackers > hash_light.trackers,
        "the flat latency must come from tree growth"
    );
    // And at the heavy point, the paper's comparison: ours wins big.
    assert!(hash_heavy.mean_locate_ms * 10.0 < cen_heavy.mean_locate_ms);
}

/// Figure 8's shape: increasing mobility (shorter residence) degrades the
/// centralized scheme; the hash-based one stays flat.
#[test]
fn mobility_growth_hurts_centralized_not_hashed() {
    let slow = scenario(150, 1000);
    let fast = scenario(150, 100); // 1500 upd/s

    let cen_slow = run_centralized(&slow);
    let cen_fast = run_centralized(&fast);
    assert!(
        cen_fast.mean_locate_ms > cen_slow.mean_locate_ms * 5.0,
        "centralized must degrade with mobility: {:.2} -> {:.2} ms",
        cen_slow.mean_locate_ms,
        cen_fast.mean_locate_ms
    );

    let hash_slow = run_hashed(&slow);
    let hash_fast = run_hashed(&fast);
    assert!(
        hash_fast.mean_locate_ms < hash_slow.mean_locate_ms * 2.0,
        "hashed must stay near-constant: {:.2} -> {:.2} ms",
        hash_slow.mean_locate_ms,
        hash_fast.mean_locate_ms
    );
    assert!(hash_fast.mean_locate_ms < cen_fast.mean_locate_ms);
}

/// The paper's §4.1 motivation for complex splits: using the unused label
/// bits yields more balanced trees — shorter prefixes — than simple-only
/// splitting.
#[test]
fn complex_splits_shorten_prefixes() {
    let s = scenario(250, 150);
    let complex = s.run(&mut HashedScheme::new(LocationConfig::default()));
    let simple = s.run(&mut HashedScheme::new(
        LocationConfig::default().simple_splits_only(),
    ));
    // Merges create multi-bit labels; complex splits reuse those bits,
    // simple-only splitting keeps extending the prefix instead.
    assert!(
        complex.mean_prefix_bits <= simple.mean_prefix_bits,
        "complex-first: {:.2} bits, simple-only: {:.2} bits",
        complex.mean_prefix_bits,
        simple.mean_prefix_bits
    );
}

/// Lazy propagation works: secondary copies go stale and recover on
/// demand, without the eager fan-out traffic.
#[test]
fn lazy_propagation_repairs_staleness_on_demand() {
    let s = scenario(200, 200);
    let lazy = s.run(&mut HashedScheme::new(LocationConfig::default()));
    assert!(lazy.stale_hits > 0);
    assert!(lazy.hf_fetches > 0);
    assert_eq!(lazy.locate_failures, 0);

    let eager = s.run(&mut HashedScheme::new(
        LocationConfig::default().with_eager_propagation(),
    ));
    assert!(
        eager.stale_hits < lazy.stale_hits,
        "eager push must reduce stale hits: {} vs {}",
        eager.stale_hits,
        lazy.stale_hits
    );
}
