//! Cross-crate integration tests: the full mechanism (hash tree + platform
//! + protocol agents) exercised end to end.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use std::sync::{Arc, Mutex};

use agentrack::core::{HashedScheme, LocationConfig, LocationScheme, Wire};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, Topology};
use agentrack::workload::Scenario;

/// Drives synthetic tracker load: sends `Locate` requests for random
/// targets at a fixed rate for a while, then goes quiet. (The IAgent's
/// thresholds are about *request rate*, so driving them does not need real
/// mobile agents.)
struct Blaster {
    lhagent: AgentId,
    active_for: SimDuration,
    gap: SimDuration,
    started: Option<agentrack::sim::SimTime>,
    token: u64,
}

impl Agent for Blaster {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.started = Some(ctx.now());
        ctx.set_timer(self.gap);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        let started = self.started.expect("set in on_create");
        if ctx.now().saturating_since(started) > self.active_for {
            return; // burst over: go silent
        }
        // Phase 1 of a locate: resolve a pseudo-random target through the
        // local LHAgent, then (in on_message) query the IAgent it names.
        self.token += 1;
        let target = AgentId::new(10_000 + self.token % 64);
        let here = ctx.node();
        ctx.send(
            self.lhagent,
            here,
            Wire::Resolve {
                target,
                token: Some(self.token),
                corr: None,
            }
            .payload(),
        );
        ctx.set_timer(self.gap);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        if let Some(Wire::Resolved {
            target,
            iagent,
            node,
            token: Some(token),
            ..
        }) = Wire::from_payload(payload)
        {
            let here = ctx.node();
            ctx.send(
                iagent,
                node,
                Wire::Locate {
                    target,
                    token,
                    reply_node: here,
                    corr: None,
                    freshness: Default::default(),
                }
                .payload(),
            );
        }
    }
}

/// The adaptivity cycle the paper describes: load above `T_max` grows the
/// tree; load vanishing below `T_min` shrinks it back.
#[test]
fn tree_grows_under_load_and_shrinks_when_it_stops() {
    let topology = Topology::lan(4, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(3));
    let config = LocationConfig {
        merge_warmup: SimDuration::from_secs(2),
        ..LocationConfig::default()
    };
    let mut scheme = HashedScheme::new(config);
    scheme.bootstrap(&mut platform);

    // 4 blasters × 100 req/s for 8 seconds: way over T_max = 50/s.
    let lhagents = scheme.lhagents();
    for node in 0..4u32 {
        platform.spawn(
            Box::new(Blaster {
                lhagent: lhagents[node as usize],
                active_for: SimDuration::from_secs(8),
                gap: SimDuration::from_millis(10),
                started: None,
                token: u64::from(node) * 1_000_000,
            }),
            NodeId::new(node),
        );
    }

    platform.run_for(SimDuration::from_secs(10));
    let mid = scheme.stats();
    assert!(mid.splits >= 2, "load must grow the tree: {mid:?}");
    assert!(mid.trackers >= 3);

    // Silence: rates collapse below T_min and the tree folds back.
    platform.run_for(SimDuration::from_secs(30));
    let end = scheme.stats();
    assert!(end.merges >= 2, "silence must shrink the tree: {end:?}");
    assert_eq!(end.trackers, 1, "all the way back to one IAgent: {end:?}");
}

/// Querying a nonexistent agent fails cleanly after the retry budget.
#[test]
fn locating_a_ghost_fails_cleanly() {
    use agentrack::core::{ClientEvent, DirectoryClient};

    struct GhostHunter {
        client: Box<dyn DirectoryClient>,
        outcome: Arc<Mutex<Option<ClientEvent>>>,
    }
    impl Agent for GhostHunter {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            self.client.locate(ctx, AgentId::new(404_404), 1);
        }
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
            let ev = self.client.on_message(ctx, from, payload);
            if matches!(ev, ClientEvent::Failed { .. } | ClientEvent::Located { .. }) {
                *self.outcome.lock().unwrap() = Some(ev);
            }
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
            let ev = self.client.on_timer(ctx, timer);
            if matches!(ev, ClientEvent::Failed { .. } | ClientEvent::Located { .. }) {
                *self.outcome.lock().unwrap() = Some(ev);
            }
        }
    }

    let topology = Topology::lan(2, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default());
    let config = LocationConfig {
        max_locate_attempts: 3,
        locate_retry_timeout: SimDuration::from_millis(300),
        ..LocationConfig::default()
    };
    let mut scheme = HashedScheme::new(config.clone());
    scheme.bootstrap(&mut platform);

    let outcome = Arc::new(Mutex::new(None));
    platform.spawn(
        Box::new(GhostHunter {
            client: scheme.make_client(),
            outcome: outcome.clone(),
        }),
        NodeId::new(1),
    );
    platform.run_for(SimDuration::from_secs(20));
    let outcome = outcome.lock().unwrap().clone();
    match outcome {
        Some(ClientEvent::Failed { target, .. }) => {
            assert_eq!(target, AgentId::new(404_404));
        }
        other => panic!("expected a clean failure, got {other:?}"),
    }
}

/// A single locate's multi-hop path (client → LHAgent → IAgent → answer)
/// is reconstructible from the trace ring by correlation id.
#[test]
fn locate_path_reconstructs_by_correlation_id() {
    use agentrack::core::{ClientEvent, DirectoryClient};
    use agentrack::sim::{CorrId, TraceEvent, TraceSink};

    /// Registers a client and sits still: the locate target.
    struct Registrant {
        client: Box<dyn DirectoryClient>,
    }
    impl Agent for Registrant {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            self.client.register(ctx);
        }
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
            let _ = self.client.on_message(ctx, from, payload);
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
            let _ = self.client.on_timer(ctx, timer);
        }
    }

    /// Issues one locate for the registrant after the dust settles.
    struct Seeker {
        client: Box<dyn DirectoryClient>,
        target: AgentId,
        kickoff: Option<TimerId>,
        outcome: Arc<Mutex<Option<ClientEvent>>>,
    }
    impl Agent for Seeker {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            self.kickoff = Some(ctx.set_timer(SimDuration::from_secs(2)));
        }
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
            let ev = self.client.on_message(ctx, from, payload);
            if matches!(ev, ClientEvent::Failed { .. } | ClientEvent::Located { .. }) {
                *self.outcome.lock().unwrap() = Some(ev);
            }
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
            if self.kickoff == Some(timer) {
                self.kickoff = None;
                self.client.locate(ctx, self.target, 7);
                return;
            }
            let _ = self.client.on_timer(ctx, timer);
        }
    }

    let topology = Topology::lan(3, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(5));
    let sink = TraceSink::bounded(100_000);
    platform.set_trace_sink(sink.clone());
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let target = platform.spawn(
        Box::new(Registrant {
            client: scheme.make_client(),
        }),
        NodeId::new(1),
    );
    let outcome = Arc::new(Mutex::new(None));
    let seeker = platform.spawn(
        Box::new(Seeker {
            client: scheme.make_client(),
            target,
            kickoff: None,
            outcome: outcome.clone(),
        }),
        NodeId::new(2),
    );
    platform.run_for(SimDuration::from_secs(10));
    assert!(
        matches!(
            *outcome.lock().unwrap(),
            Some(ClientEvent::Located { target: t, .. }) if t == target
        ),
        "the locate must complete: {:?}",
        outcome.lock().unwrap()
    );

    // The locate's correlation id is (client id, token) by construction.
    let corr = CorrId::new(seeker.raw(), 7);
    let path = sink.records_for(corr);
    let hops: Vec<(&str, &'static str)> = path
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::MessageSend { kind, .. } => Some(("send", *kind)),
            TraceEvent::MessageRecv { kind, .. } => Some(("recv", *kind)),
            _ => None,
        })
        .collect();
    assert_eq!(
        hops,
        vec![
            ("send", "Resolve"),  // client asks its local LHAgent
            ("recv", "Resolve"),  // LHAgent
            ("send", "Resolved"), // LHAgent answers with the IAgent
            ("recv", "Resolved"), // client
            ("send", "Locate"),   // client queries the IAgent
            ("recv", "Locate"),   // IAgent
            ("send", "Located"),  // IAgent answers
            ("recv", "Located"),  // client
        ],
        "full path: {path:#?}"
    );
    assert!(
        path.windows(2).all(|w| w[0].at <= w[1].at),
        "records must be time-ordered"
    );
}

/// The mechanism keeps locating agents while the network drops and
/// duplicates messages.
#[test]
fn survives_message_loss_and_duplication() {
    let mut scenario = Scenario::new("faulty")
        .with_agents(40)
        .with_residence_ms(400)
        .with_queries(80)
        .with_seconds(10.0, 5.0);
    scenario.loss = 0.02;
    scenario.duplication = 0.02;
    let config = LocationConfig {
        max_locate_attempts: 12,
        ..LocationConfig::default()
    };
    let mut scheme = HashedScheme::new(config);
    let report = scenario.run(&mut scheme);
    assert!(
        report.completion_ratio() > 0.9,
        "losses must be retried through: {report:#?}"
    );
    assert_eq!(report.registrations, 40);
}

/// One seed, one trace: the entire stack is deterministic.
#[test]
fn full_stack_determinism() {
    let scenario = Scenario::new("det")
        .with_agents(50)
        .with_queries(60)
        .with_seconds(8.0, 4.0)
        .with_seed(99);
    let run = || {
        let mut scheme = HashedScheme::new(LocationConfig::default());
        scenario.run(&mut scheme)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Registrations work from every node (not just where the scheme's agents
/// started), and the hash function actually spreads agents over IAgents.
#[test]
fn load_spreads_over_iagents() {
    let scenario = Scenario::new("spread")
        .with_agents(120)
        .with_residence_ms(200)
        .with_queries(100)
        .with_seconds(12.0, 5.0);
    let mut scheme = HashedScheme::new(LocationConfig::default());
    let report = scenario.run(&mut scheme);
    assert!(
        report.trackers >= 4,
        "expected several IAgents: {report:#?}"
    );
    assert!(
        report.records_handed_off > 0,
        "splits must redistribute records"
    );
    assert!(report.stale_hits > 0, "lazy copies must have gone stale");
    assert!(report.hf_fetches > 0, "staleness must trigger refreshes");
    assert_eq!(report.locate_failures, 0);
}

/// Registration survives message loss: the handshake's watchdog restarts
/// it until the ack lands, so even a *stationary* agent (which never gets
/// the re-register-on-move fallback) becomes locatable.
#[test]
fn registration_survives_heavy_message_loss() {
    let mut scenario = Scenario::new("lossy-registration")
        .with_agents(30)
        .with_residence_ms(120_000) // effectively stationary for the run
        .with_queries(60)
        .with_seconds(12.0, 6.0);
    scenario.loss = 0.10; // every tenth message vanishes
    let config = LocationConfig {
        max_locate_attempts: 15,
        ..LocationConfig::default()
    };
    let mut scheme = HashedScheme::new(config);
    let report = scenario.run(&mut scheme);
    assert_eq!(
        report.registrations, 30,
        "every stationary agent must register despite loss: {report:#?}"
    );
    assert!(report.completion_ratio() > 0.9, "{report:#?}");
}
