//! Durability and recovery integration tests: buddy replication restoring
//! crashed trackers' records, epoch-fenced recovery converging under the
//! post-quiesce invariant audit, restart accounting for lost soft state,
//! and the locate answer-vs-timeout race (a stale retry timer must not
//! burn budget for a completed locate).

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use agentrack::core::{CentralizedScheme, DirectoryClient, HashedScheme, LocationConfig};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{
    DurationDist, FaultEvent, FaultKind, FaultPlan, SimDuration, SimTime, Topology, TraceEvent,
    TraceSink,
};
use agentrack::workload::{Metrics, QuerierBehavior, Scenario, TargetSelector, Targets};

/// Crashes `nodes` at `at` with soft-state loss, restarting each 500 ms
/// later.
fn crash_plan(nodes: &[u32], at: SimDuration) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &node in nodes {
        plan.push(FaultEvent {
            at: SimTime::ZERO + at,
            kind: FaultKind::NodeCrash {
                node: NodeId::new(node),
                lose_soft_state: true,
                restart_at: Some(SimTime::ZERO + at + SimDuration::from_millis(500)),
            },
        });
    }
    plan
}

fn replicated_config() -> LocationConfig {
    LocationConfig::default()
        .with_version_audit(SimDuration::from_secs(1))
        .with_replication(SimDuration::from_millis(250))
}

fn recovery_scenario(seed: u64) -> Scenario {
    let mut scenario = Scenario::new(format!("recovery-{seed}"))
        .with_agents(24)
        .with_residence_ms(400)
        .with_queries(120)
        .with_seconds(6.0, 4.0)
        .with_seed(seed)
        .with_faults(crash_plan(&[0, 1], SimDuration::from_secs(4)));
    scenario.nodes = 8;
    scenario.queriers = 8;
    scenario
}

/// Crashing both low-index nodes (the initial tracker's home and the
/// first split target) with soft-state loss must put at least two IAgents
/// through epoch-fenced recovery, and the audit must come back clean:
/// every reachable agent locatable, single ownership intact, every
/// recovery finished.
#[test]
fn replicated_hashed_recovers_from_double_tracker_crash() {
    let scenario = recovery_scenario(11);
    let sink = TraceSink::bounded(500_000);
    let mut scheme = HashedScheme::new(replicated_config()).with_standby();
    let (report, invariants) = scenario.run_chaos_traced(&mut scheme, true, sink.clone());
    assert!(
        invariants.ok(),
        "invariant violations after recovery: {:?}",
        invariants.violations
    );
    assert!(
        invariants.recoveries_started >= 2,
        "expected at least two trackers to enter recovery, got {}",
        invariants.recoveries_started
    );
    assert_eq!(
        invariants.recoveries_started, invariants.recoveries_completed,
        "a recovery never finished"
    );
    assert!(
        report.record_syncs > 0,
        "replication never shipped a batch before the crash"
    );
    let starts = sink
        .snapshot()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RecoveryStart { .. }))
        .count();
    assert!(
        starts >= 2,
        "expected at least two RecoveryStart trace events, got {starts}"
    );
}

/// The replication and recovery paths are deterministic: the same seed
/// replays the identical trace, RecordSync batches and all.
#[test]
fn replicated_recovery_replays_the_identical_trace() {
    let mut runs = Vec::new();
    for _ in 0..2 {
        let scenario = recovery_scenario(23);
        let sink = TraceSink::bounded(500_000);
        let mut scheme = HashedScheme::new(replicated_config()).with_standby();
        let _ = scenario.run_chaos_traced(&mut scheme, true, sink.clone());
        assert_eq!(sink.dropped(), 0, "trace buffer overflowed; raise the cap");
        runs.push(sink.snapshot());
    }
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.len(), b.len(), "trace lengths diverged between replays");
    if let Some(i) = (0..a.len()).find(|&i| a[i] != b[i]) {
        panic!(
            "trace diverged at record {i}: first run {:?}, second run {:?}",
            a[i], b[i]
        );
    }
    let syncs = a
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RecordSync { .. }))
        .count();
    assert!(syncs > 0, "the replayed runs never replicated anything");
}

/// Once every epoch-fenced recovery has converged, the replica sets must
/// be reconverged too: the post-quiesce probes (issued with no freshness
/// bound) are answered authoritatively, never `stale: true`. Pins the
/// recovery machine clearing `stale_records` on convergence — a
/// regression here would let a healed tracker keep serving degraded
/// answers forever.
#[test]
fn no_stale_answers_after_replica_reconvergence() {
    // Freshness-bounded queriers make the degraded path reachable
    // during the outage without changing what the probes assert after.
    let mut scenario = recovery_scenario(31);
    scenario = scenario.with_freshness(agentrack::core::Freshness::BoundedMs(2000));
    let mut scheme = HashedScheme::new(replicated_config()).with_standby();
    let (_, invariants) = scenario.run_chaos(&mut scheme, true);
    assert!(
        invariants.ok(),
        "invariant violations after recovery: {:?}",
        invariants.violations
    );
    assert!(
        invariants.recoveries_started >= 1,
        "the crash never put a tracker through recovery; the test is vacuous"
    );
    assert_eq!(
        invariants.recoveries_started, invariants.recoveries_completed,
        "a recovery never finished"
    );
    assert_eq!(
        invariants.probe_stale, 0,
        "post-quiesce probes were answered stale after every recovery converged"
    );
}

/// Drives a scheme client by script: registers on create, optionally
/// sends one piece of guaranteed-delivery mail at a scheduled time.
struct ScriptedClient {
    client: Box<dyn DirectoryClient>,
    mail_to: Option<(AgentId, SimDuration)>,
    mail_timer: Option<TimerId>,
}

impl Agent for ScriptedClient {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        if let Some((_, at)) = self.mail_to {
            self.mail_timer = Some(ctx.set_timer(at));
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.mail_timer == Some(timer) {
            self.mail_timer = None;
            let target = self.mail_to.expect("mail timer without mail").0;
            self.client.send_via(ctx, target, vec![0xAB]);
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let _ = self.client.on_message(ctx, from, payload);
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

impl std::fmt::Debug for ScriptedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedClient").finish_non_exhaustive()
    }
}

/// A tracker restart with `lost_soft_state = true` must account for what
/// died with it: buffered mail is counted into `mail_lost` (with a
/// `MailExpired` trace long before the mailbox TTL), the record set is
/// cleared (a pre-crash locate succeeds, a post-restart one fails and
/// charges `giveup_negative` on the tracker), and the records gauge reads
/// zero once refreshed.
#[test]
fn soft_state_loss_restart_accounts_mail_and_clears_records() {
    use agentrack::core::LocationScheme;
    let topology = Topology::lan(2, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(5));
    let sink = TraceSink::bounded(100_000);
    platform.set_trace_sink(sink.clone());
    // Crash the tracker's node (node 0 hosts the initial IAgent and the
    // HAgent) at 2 s; restart 100 ms later with soft state gone. No
    // replication: this test pins the bare accounting path.
    let mut plan = FaultPlan::new();
    plan.push(FaultEvent {
        at: SimTime::ZERO + SimDuration::from_secs(2),
        kind: FaultKind::NodeCrash {
            node: NodeId::new(0),
            lose_soft_state: true,
            restart_at: Some(SimTime::ZERO + SimDuration::from_millis(2100)),
        },
    });
    platform.set_fault_plan(&plan);

    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    // A registered agent whose record the crash wipes, and who also
    // buffers one piece of mail for a never-registered phantom at t = 1 s.
    let phantom = AgentId::new(0xFA_47_03);
    let registered = platform.spawn(
        Box::new(ScriptedClient {
            client: scheme.make_client(),
            mail_to: Some((phantom, SimDuration::from_secs(1))),
            mail_timer: None,
        }),
        NodeId::new(1),
    );

    // One locate before the crash (must succeed) and one after the
    // restart (must exhaust its retries on NotFound answers).
    let before = Metrics::new();
    let after = Metrics::new();
    for (first_at, metrics) in [
        (SimDuration::from_millis(1000), &before),
        (SimDuration::from_millis(4000), &after),
    ] {
        let querier = QuerierBehavior::new(
            scheme.make_client(),
            Targets::Fixed(vec![registered]),
            TargetSelector::Uniform,
            first_at,
            DurationDist::Constant(SimDuration::from_millis(100)),
            1,
            metrics.clone(),
        );
        platform.spawn(Box::new(querier), NodeId::new(1));
    }
    // 8 attempts x 800 ms retry after t = 4 s all resolve well within 16 s.
    platform.run_for(SimDuration::from_secs(16));

    assert_eq!(
        before.with(|m| (m.locate_times.len(), m.locate_failures)),
        (1, 0),
        "the pre-crash locate must succeed"
    );
    assert_eq!(
        after.with(|m| (m.locate_times.len(), m.locate_failures)),
        (0, 1),
        "the post-restart locate must fail: the record died with the node"
    );

    let snapshot = scheme.registry().snapshot();
    let (mail_lost, giveup_negative, records_held) =
        snapshot
            .trackers
            .iter()
            .fold((0u64, 0u64, 0u64), |(lost, neg, held), (_, t)| {
                (
                    lost + t.mail_lost,
                    neg + t.giveup_negative,
                    held + t.records_held as u64,
                )
            });
    assert_eq!(mail_lost, 1, "the buffered mail must be counted as lost");
    assert_eq!(
        giveup_negative, 1,
        "the failed locate must charge giveup_negative on the tracker"
    );
    assert_eq!(
        records_held, 0,
        "the records gauge must read zero after the wipe (nobody re-registered)"
    );

    // The loss was accounted at restart (t = 2.1 s), not by TTL expiry
    // (which would have been at t = 11 s).
    let expiries: Vec<SimTime> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::MailExpired { .. } => Some(r.at),
            _ => None,
        })
        .collect();
    assert_eq!(expiries.len(), 1, "exactly one expiry sweep expected");
    assert!(
        expiries[0] < SimTime::ZERO + SimDuration::from_secs(3),
        "mail loss must be accounted at restart, not at TTL expiry"
    );
}

/// The answer-vs-timeout race: retry timers that outlive their locate
/// (the answer arrived first) must be inert. With the retry timeout far
/// below the round-trip time, several retries fire before the first
/// answer lands — and once it does, the stale timers still queued must
/// not burn budget, give up, or complete the locate twice.
#[test]
fn stale_retry_timer_does_not_double_burn_a_completed_locate() {
    // 2 ms one-way latency against a 1 ms retry timeout: every locate's
    // answer loses the race with at least one retry timer.
    let topology = Topology::lan(2, DurationDist::Constant(SimDuration::from_millis(2)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(17));
    let sink = TraceSink::bounded(100_000);
    platform.set_trace_sink(sink.clone());
    let config = LocationConfig {
        locate_retry_timeout: SimDuration::from_millis(1),
        max_locate_attempts: 20,
        ..LocationConfig::default()
    };
    let mut scheme = CentralizedScheme::new(config);
    use agentrack::core::LocationScheme;
    scheme.bootstrap(&mut platform);

    let registered = platform.spawn(
        Box::new(ScriptedClient {
            client: scheme.make_client(),
            mail_to: None,
            mail_timer: None,
        }),
        NodeId::new(1),
    );
    let metrics = Metrics::new();
    let querier = QuerierBehavior::new(
        scheme.make_client(),
        Targets::Fixed(vec![registered]),
        TargetSelector::Uniform,
        SimDuration::from_millis(500),
        DurationDist::Constant(SimDuration::from_millis(100)),
        1,
        metrics.clone(),
    );
    // Node 1: the central tracker lives on node 0, so the locate crosses
    // the slow link both ways and the retry timer always wins the race.
    platform.spawn(Box::new(querier), NodeId::new(1));
    platform.run_for(SimDuration::from_secs(5));

    let (completed, failures) = metrics.with(|m| (m.locate_times.len(), m.locate_failures));
    assert_eq!(completed, 1, "the locate must complete exactly once");
    assert_eq!(
        failures, 0,
        "stale timers must not drive the locate to give up"
    );

    let records = sink.snapshot();
    let attempts = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RetryAttempt { .. }))
        .count();
    let give_ups = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RetryGiveUp { .. }))
        .count();
    assert!(
        attempts >= 1,
        "the race never happened: no retry fired before the answer"
    );
    assert_eq!(give_ups, 0, "no give-up may follow a completed locate");

    let snapshot = scheme.registry().snapshot();
    let (giveup_timeout, giveup_negative) = snapshot
        .trackers
        .iter()
        .fold((0u64, 0u64), |(t0, n0), (_, t)| {
            (t0 + t.giveup_timeout, n0 + t.giveup_negative)
        });
    assert_eq!(
        (giveup_timeout, giveup_negative),
        (0, 0),
        "no tracker may be charged a give-up for a completed locate"
    );
}
