//! Golden-file tests for the spec-only workloads (E18a–E18d).
//!
//! Each committed CSV under `tests/golden/` is the quick-fidelity table
//! of one spec in `specs/`. The simulation is deterministic and none of
//! these tables report wall-clock fields (the only non-deterministic
//! trial field, `wall_ms`, lives in the trials JSON and is bounded
//! separately below), so the comparison is exact. A diff here means the
//! spec, the runner, or the protocol changed behaviour — regenerate
//! with `scenario_lab --quick` only after deciding the change is
//! intended.

use agentrack_bench::{run_spec, Fidelity, ScenarioSpec};

fn check_golden(name: &str) {
    let root = env!("CARGO_MANIFEST_DIR");
    let spec_text = std::fs::read_to_string(format!("{root}/specs/{name}.json"))
        .unwrap_or_else(|e| panic!("reading specs/{name}.json: {e}"));
    let spec = ScenarioSpec::load_str(&spec_text)
        .unwrap_or_else(|e| panic!("loading specs/{name}.json: {e}"));
    let golden = std::fs::read_to_string(format!("{root}/tests/golden/{name}.quick.csv"))
        .unwrap_or_else(|e| panic!("reading tests/golden/{name}.quick.csv: {e}"));

    let outcome = run_spec(&spec, Fidelity::Quick, 1);
    assert_eq!(
        outcome.table.to_csv(),
        golden,
        "{name}: quick-fidelity table diverged from tests/golden/{name}.quick.csv"
    );

    // Every spec run carries the post-quiesce invariant audit; golden
    // workloads must stay audit-green trial by trial.
    for trial in &outcome.trials {
        let audit = trial
            .invariants
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: trial {} ran without an audit", trial.scenario));
        assert!(
            audit.violations.is_empty(),
            "{name}: trial {} has violations: {:?}",
            trial.scenario,
            audit.violations
        );
        // Wall-clock is the one non-deterministic field: bound it
        // instead of comparing it (quick trials run in well under a
        // minute even on a loaded host).
        assert!(
            trial.wall_ms > 0.0 && trial.wall_ms < 60_000.0,
            "{name}: implausible wall_ms {} for trial {}",
            trial.wall_ms,
            trial.scenario
        );
    }
}

#[test]
fn golden_diurnal() {
    check_golden("diurnal");
}

#[test]
fn golden_flash_crowd() {
    check_golden("flash_crowd");
}

#[test]
fn golden_regional_partition() {
    check_golden("regional_partition");
}

#[test]
fn golden_hot_key_churn() {
    check_golden("hot_key_churn");
}
