//! The hash-based location mechanism running live: real threads, real
//! channels, wall-clock timers — one thread per "LAN node".
//!
//! This is the deployment-mode counterpart of the simulated experiments:
//! identical scheme behaviours (IAgents, HAgent, LHAgents, clients), no
//! virtual clock. Watch a fleet of couriers roam for two real seconds
//! while a dispatcher keeps locating them.
//!
//! ```text
//! cargo run --release --example live_lan
//! ```

use std::sync::{Arc, Mutex};
use std::time::Duration;

use agentrack::core::{ClientEvent, DirectoryClient, HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::{Agent, AgentCtx, AgentId, LivePlatform, NodeId, Payload, TimerId};
use agentrack::sim::SimDuration;

const NODES: u32 = 6;
const COURIERS: u32 = 8;

/// A courier hops between nodes every ~40 wall-clock milliseconds.
struct Courier {
    client: Box<dyn DirectoryClient>,
    node_count: u32,
}

impl Agent for Courier {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        ctx.set_timer(SimDuration::from_millis(40));
    }
    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        ctx.set_timer(SimDuration::from_millis(40));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.client.on_timer(ctx, timer) == ClientEvent::NotMine {
            let next = NodeId::new(ctx.rng().index(self.node_count as usize) as u32);
            if next == ctx.node() {
                ctx.set_timer(SimDuration::from_millis(40));
            } else {
                ctx.dispatch(next);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let _ = self.client.on_message(ctx, from, payload);
    }
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

/// The dispatcher locates every courier five times a second.
struct Dispatcher {
    client: Box<dyn DirectoryClient>,
    couriers: Vec<AgentId>,
    sightings: Arc<Mutex<u64>>,
    next_token: u64,
    tick: Option<TimerId>,
}

impl Agent for Dispatcher {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.tick = Some(ctx.set_timer(SimDuration::from_millis(200)));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.tick == Some(timer) {
            for i in 0..self.couriers.len() {
                let target = self.couriers[i];
                let token = self.next_token;
                self.next_token += 1;
                self.client.locate(ctx, target, token);
            }
            self.tick = Some(ctx.set_timer(SimDuration::from_millis(200)));
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if let ClientEvent::Located { .. } = self.client.on_message(ctx, from, payload) {
            *self.sightings.lock().unwrap() += 1;
        }
    }
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

fn main() {
    let mut platform = LivePlatform::new(NODES);
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let couriers: Vec<AgentId> = (0..COURIERS)
        .map(|i| {
            platform.spawn(
                Box::new(Courier {
                    client: scheme.make_client(),
                    node_count: NODES,
                }),
                NodeId::new(i % NODES),
            )
        })
        .collect();

    let sightings = Arc::new(Mutex::new(0u64));
    platform.spawn(
        Box::new(Dispatcher {
            client: scheme.make_client(),
            couriers,
            sightings: sightings.clone(),
            next_token: 0,
            tick: None,
        }),
        NodeId::new(0),
    );

    println!("running live on {NODES} node threads for 2 wall-clock seconds…");
    platform.run_for(Duration::from_secs(2));
    let stats = platform.shutdown();

    let sightings = *sightings.lock().unwrap();
    println!("couriers sighted   : {sightings} times");
    println!(
        "migrations         : {} (real cross-thread moves)",
        stats.migrations
    );
    println!(
        "messages           : {} sent, {} delivered, {} bounced",
        stats.messages_sent, stats.messages_delivered, stats.messages_failed
    );
    println!("IAgents at the end : {}", scheme.stats().trackers);
    assert!(sightings > 0, "the dispatcher must find its couriers");
}
