//! Quickstart: the hash-based location mechanism in ~60 lines.
//!
//! Boots the scheme on a simulated 8-node LAN, lets a small population of
//! mobile agents roam, issues location queries against them, and prints
//! what the mechanism did.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use agentrack::core::{HashedScheme, LocationConfig, LocationScheme};
use agentrack::workload::{RunOptions, Scenario};

fn main() {
    // The paper's thresholds: split an IAgent above 50 msg/s, merge below 5.
    let config = LocationConfig::default();

    // 60 agents roam a 16-node LAN, staying 300 ms per node; 120 location
    // queries are issued after a 10 s warmup.
    let scenario = Scenario::new("quickstart")
        .with_agents(60)
        .with_residence_ms(300)
        .with_queries(120)
        .with_seconds(10.0, 5.0);

    let mut scheme = HashedScheme::new(config);
    let report = scenario.run_with(&mut scheme, RunOptions::new()).report;

    println!("scheme            : {}", report.scheme);
    println!("mobile agents     : {}", report.agents);
    println!("moves performed   : {}", report.moves);
    println!("queries issued    : {}", report.locates_issued);
    println!("queries answered  : {}", report.locates_completed);
    println!(
        "location time     : mean {:.2} ms, p95 {:.2} ms, max {:.2} ms",
        report.mean_locate_ms, report.p95_locate_ms, report.max_locate_ms
    );
    println!(
        "hash tree         : {} IAgents after {} splits / {} merges (height {})",
        report.trackers, report.splits, report.merges, report.tree_height
    );
    println!(
        "stale-copy repairs: {} NotResponsible answers, {} primary-copy fetches",
        report.stale_hits, report.hf_fetches
    );

    assert!(
        report.completion_ratio() > 0.95,
        "locates should almost all complete"
    );
    // The scheme adapted: with 60 agents moving every 300 ms (~200 updates/s)
    // a single IAgent (T_max = 50/s) cannot carry the load alone.
    assert!(
        scheme.stats().splits > 0,
        "the tree should have grown under this load"
    );
}
