//! A patrol-and-report monitoring fleet on a lossy network.
//!
//! Probe agents patrol the LAN measuring "health" at each node; an
//! operator console periodically locates every probe and collects its
//! latest readings. The network drops 2% of messages, so every layer —
//! the location mechanism's retries and the console's re-polling — has to
//! tolerate loss. This is the paper's "intermittent connectivity" use case.
//!
//! ```text
//! cargo run --example network_monitor
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use agentrack::core::{ClientEvent, DirectoryClient, HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, Topology};
use serde::{Deserialize, Serialize};

const NODES: u32 = 10;
const PROBES: usize = 6;

#[derive(Serialize, Deserialize)]
enum Monitor {
    ReadingsRequest {
        reply_node: NodeId,
    },
    Readings {
        probe: AgentId,
        samples: Vec<(u32, u32)>,
    },
}

/// Patrols nodes in a fixed ring, sampling per-node "health".
struct Probe {
    client: Box<dyn DirectoryClient>,
    samples: Vec<(u32, u32)>,
}

impl Probe {
    fn sample(&mut self, ctx: &mut AgentCtx<'_>) {
        let health = 90 + ctx.rng().index(10) as u32;
        let node = ctx.node().raw();
        self.samples.push((node, health));
        if self.samples.len() > 32 {
            self.samples.remove(0);
        }
    }
}

impl Agent for Probe {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        self.sample(ctx);
        ctx.set_timer(SimDuration::from_millis(600));
    }

    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        self.sample(ctx);
        ctx.set_timer(SimDuration::from_millis(600));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.client.on_timer(ctx, timer) == ClientEvent::NotMine {
            let next = NodeId::new((ctx.node().raw() + 1) % NODES); // ring patrol
            ctx.dispatch(next);
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if self.client.on_message(ctx, from, payload) != ClientEvent::NotMine {
            return;
        }
        if let Ok(Monitor::ReadingsRequest { reply_node }) = payload.decode() {
            let me = ctx.self_id();
            ctx.send(
                from,
                reply_node,
                Payload::encode(&Monitor::Readings {
                    probe: me,
                    samples: self.samples.clone(),
                }),
            );
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

type Board = Arc<Mutex<BTreeMap<AgentId, usize>>>;

/// The operator console: locate every probe, pull its readings.
struct Console {
    client: Box<dyn DirectoryClient>,
    probes: Vec<AgentId>,
    board: Board,
    next_token: u64,
    poll_timer: Option<TimerId>,
}

impl Agent for Console {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.poll_timer = Some(ctx.set_timer(SimDuration::from_secs(2)));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.poll_timer == Some(timer) {
            for i in 0..self.probes.len() {
                let target = self.probes[i];
                let token = self.next_token;
                self.next_token += 1;
                self.client.locate(ctx, target, token);
            }
            self.poll_timer = Some(ctx.set_timer(SimDuration::from_secs(2)));
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        match self.client.on_message(ctx, from, payload) {
            ClientEvent::Located { target, node, .. } => {
                let here = ctx.node();
                ctx.send(
                    target,
                    node,
                    Payload::encode(&Monitor::ReadingsRequest { reply_node: here }),
                );
            }
            ClientEvent::NotMine => {
                if let Ok(Monitor::Readings { probe, samples }) = payload.decode() {
                    self.board.lock().unwrap().insert(probe, samples.len());
                }
            }
            _ => {}
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        // Lost chase: the next poll re-locates. The location mechanism's
        // own retries are handled inside the client.
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

fn main() {
    // 2% message loss: monitoring must survive it.
    let topology =
        Topology::lan(NODES, DurationDist::Constant(SimDuration::from_micros(300))).with_loss(0.02);
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(5));
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let probes: Vec<AgentId> = (0..PROBES)
        .map(|i| {
            platform.spawn(
                Box::new(Probe {
                    client: scheme.make_client(),
                    samples: Vec::new(),
                }),
                NodeId::new(i as u32 % NODES),
            )
        })
        .collect();

    let board: Board = Arc::default();
    platform.spawn(
        Box::new(Console {
            client: scheme.make_client(),
            probes: probes.clone(),
            board: board.clone(),
            next_token: 0,
            poll_timer: None,
        }),
        NodeId::new(0),
    );

    platform.run_for(SimDuration::from_secs(30));

    let stats = platform.stats();
    println!("network monitor after 30 simulated seconds (2% loss)");
    println!(
        "  messages: {} sent, {} lost in flight, {} bounced",
        stats.messages_sent, stats.messages_lost, stats.messages_failed
    );
    let board = board.lock().unwrap();
    for probe in &probes {
        match board.get(probe) {
            Some(n) => println!("  {probe}: reporting, {n} readings in the last window"),
            None => println!("  {probe}: NO REPORT"),
        }
    }
    assert!(stats.messages_lost > 0, "loss injection should have bitten");
    assert!(
        board.len() >= PROBES - 1,
        "monitoring must survive message loss"
    );
}
