//! A mobile-agent marketplace: the paper's motivating workload, built
//! directly on the platform API.
//!
//! A buyer launches *shopper* agents that roam vendor nodes collecting
//! price quotes (mobile agents as "an efficient, asynchronous method for
//! searching for information"). While they roam, the buyer uses the
//! hash-based location mechanism to find each shopper and ask it for its
//! best quote so far — locate, then talk.
//!
//! Demonstrates: writing custom [`Agent`] behaviours, embedding a
//! [`DirectoryClient`] for registration/updates/locates, and recovering
//! when a located agent has already moved on (the reply bounces and the
//! buyer simply re-locates).
//!
//! ```text
//! cargo run --example marketplace
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use agentrack::core::{ClientEvent, DirectoryClient, HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, Topology};
use serde::{Deserialize, Serialize};

const NODES: u32 = 12;
const SHOPPERS: usize = 8;

#[derive(Serialize, Deserialize, Debug)]
enum Market {
    /// Buyer → shopper: "what is your best quote so far?"
    QuoteRequest { reply_node: NodeId },
    /// Shopper → buyer.
    QuoteReply {
        shopper: AgentId,
        best: u64,
        visited: u32,
    },
}

/// A shopper roams vendor nodes; each node quotes a pseudo-random price.
struct Shopper {
    client: Box<dyn DirectoryClient>,
    best: u64,
    visited: u32,
}

impl Shopper {
    fn take_quote(&mut self, ctx: &mut AgentCtx<'_>) {
        // The "vendor" at this node quotes a price.
        let quote = 50 + ctx.rng().index(100) as u64;
        self.best = self.best.min(quote);
        self.visited += 1;
    }
}

impl Agent for Shopper {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        self.take_quote(ctx);
        ctx.set_timer(SimDuration::from_millis(400));
    }

    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        self.take_quote(ctx);
        ctx.set_timer(SimDuration::from_millis(400));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.client.on_timer(ctx, timer) == ClientEvent::NotMine {
            // Residence over: move to the next vendor.
            let next = NodeId::new(ctx.rng().index(NODES as usize) as u32);
            if next == ctx.node() {
                ctx.set_timer(SimDuration::from_millis(400));
            } else {
                ctx.dispatch(next);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if self.client.on_message(ctx, from, payload) != ClientEvent::NotMine {
            return;
        }
        if let Ok(Market::QuoteRequest { reply_node }) = payload.decode() {
            let me = ctx.self_id();
            ctx.send(
                from,
                reply_node,
                Payload::encode(&Market::QuoteReply {
                    shopper: me,
                    best: self.best,
                    visited: self.visited,
                }),
            );
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

type Quotes = Arc<Mutex<HashMap<AgentId, (u64, u32)>>>;

/// The buyer: locates each shopper every second and asks for its quote.
struct Buyer {
    client: Box<dyn DirectoryClient>,
    shoppers: Vec<AgentId>,
    quotes: Quotes,
    next_token: u64,
    poll_timer: Option<TimerId>,
    locates_sent: Arc<Mutex<u64>>,
    bounced: Arc<Mutex<u64>>,
}

impl Buyer {
    fn poll(&mut self, ctx: &mut AgentCtx<'_>) {
        for i in 0..self.shoppers.len() {
            let target = self.shoppers[i];
            let token = self.next_token;
            self.next_token += 1;
            *self.locates_sent.lock().unwrap() += 1;
            self.client.locate(ctx, target, token);
        }
        self.poll_timer = Some(ctx.set_timer(SimDuration::from_secs(1)));
    }
}

impl Agent for Buyer {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        // Give shoppers a moment to register before the first poll.
        self.poll_timer = Some(ctx.set_timer(SimDuration::from_secs(1)));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.poll_timer == Some(timer) {
            self.poll(ctx);
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        match self.client.on_message(ctx, from, payload) {
            ClientEvent::Located { target, node, .. } => {
                // Phase 2 of "communicate with a mobile agent": we know
                // where it is, now talk to it.
                let here = ctx.node();
                ctx.send(
                    target,
                    node,
                    Payload::encode(&Market::QuoteRequest { reply_node: here }),
                );
            }
            ClientEvent::NotMine => {
                if let Ok(Market::QuoteReply {
                    shopper,
                    best,
                    visited,
                }) = payload.decode()
                {
                    self.quotes.lock().unwrap().insert(shopper, (best, visited));
                }
            }
            _ => {}
        }
    }

    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        if self.client.on_delivery_failed(ctx, to, node, payload) == ClientEvent::NotMine {
            // Our QuoteRequest chased a shopper that moved between the
            // locate answer and the delivery. Count it; the next poll
            // re-locates.
            *self.bounced.lock().unwrap() += 1;
        }
    }
}

fn main() {
    let topology = Topology::lan(NODES, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(11));
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let shoppers: Vec<AgentId> = (0..SHOPPERS)
        .map(|i| {
            platform.spawn(
                Box::new(Shopper {
                    client: scheme.make_client(),
                    best: u64::MAX,
                    visited: 0,
                }),
                NodeId::new(i as u32 % NODES),
            )
        })
        .collect();

    let quotes: Quotes = Arc::default();
    let locates_sent = Arc::new(Mutex::new(0u64));
    let bounced = Arc::new(Mutex::new(0u64));
    platform.spawn(
        Box::new(Buyer {
            client: scheme.make_client(),
            shoppers: shoppers.clone(),
            quotes: quotes.clone(),
            next_token: 0,
            poll_timer: None,
            locates_sent: locates_sent.clone(),
            bounced: bounced.clone(),
        }),
        NodeId::new(0),
    );

    platform.run_for(SimDuration::from_secs(20));

    println!("marketplace after 20 simulated seconds");
    println!("  locate operations : {}", locates_sent.lock().unwrap());
    println!(
        "  chased-and-missed : {} (shopper moved; re-located next poll)",
        bounced.lock().unwrap()
    );
    let quotes = quotes.lock().unwrap();
    for shopper in &shoppers {
        match quotes.get(shopper) {
            Some((best, visited)) => {
                println!("  {shopper}: best quote {best} after {visited} vendors")
            }
            None => println!("  {shopper}: no quote reported yet"),
        }
    }
    assert!(
        quotes.len() >= SHOPPERS - 1,
        "nearly every shopper should have reported"
    );
    println!("  (tracked by {} IAgents)", scheme.stats().trackers);
}
