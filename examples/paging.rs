//! Paging a fleet that never stands still: guaranteed delivery in action.
//!
//! A control tower pages fast-moving drone agents two ways:
//!
//! * **naive** — locate the drone, then fire the page at the answered
//!   node (and shrug if it bounces);
//! * **mediated** — hand the page to the location mechanism
//!   ([`DirectoryClient::send_via`]): the responsible IAgent forwards it,
//!   buffering across the drone's migrations, so the page always lands.
//!
//! This is the paper's §6 open problem ("an agent moves faster than the
//! requests for its location") made concrete.
//!
//! ```text
//! cargo run --release --example paging
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use agentrack::core::{ClientEvent, DirectoryClient, HashedScheme, LocationConfig, LocationScheme};
use agentrack::platform::{
    Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
};
use agentrack::sim::{DurationDist, SimDuration, Topology};

const NODES: u32 = 8;
const DRONES: usize = 5;
const PAGES_PER_DRONE: u32 = 40;

/// Hops every 25 ms — far faster than a locate round-trip can chase.
struct Drone {
    client: Box<dyn DirectoryClient>,
    naive_pages: Arc<AtomicU64>,
    mediated_pages: Arc<AtomicU64>,
}

impl Agent for Drone {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.register(ctx);
        ctx.set_timer(SimDuration::from_millis(25));
    }
    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.client.moved(ctx);
        ctx.set_timer(SimDuration::from_millis(25));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.client.on_timer(ctx, timer) == ClientEvent::NotMine {
            let next = NodeId::new(ctx.rng().index(NODES as usize) as u32);
            if next == ctx.node() {
                ctx.set_timer(SimDuration::from_millis(25));
            } else {
                ctx.dispatch(next);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        match self.client.on_message(ctx, from, payload) {
            ClientEvent::Mail { .. } => {
                self.mediated_pages.fetch_add(1, Ordering::Relaxed);
            }
            ClientEvent::NotMine if payload.decode::<String>().is_ok() => {
                self.naive_pages.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

/// Pages every drone on a round-robin, alternating the two methods.
struct Tower {
    client: Box<dyn DirectoryClient>,
    drones: Vec<AgentId>,
    pages_left: u32,
    naive_sent: u64,
    mediated_sent: u64,
    token: u64,
    tick: Option<TimerId>,
    totals: Arc<AtomicU64>, // encodes (naive_sent << 32) | mediated_sent at the end
}

impl Agent for Tower {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        self.tick = Some(ctx.set_timer(SimDuration::from_millis(30)));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        if self.tick == Some(timer) {
            if self.pages_left > 0 {
                self.pages_left -= 1;
                let drone = self.drones[(self.pages_left as usize) % self.drones.len()];
                if self.pages_left.is_multiple_of(2) {
                    self.mediated_sent += 1;
                    self.client.send_via(ctx, drone, b"report in".to_vec());
                } else {
                    self.naive_sent += 1;
                    self.token += 1;
                    self.client.locate(ctx, drone, self.token);
                }
                self.tick = Some(ctx.set_timer(SimDuration::from_millis(30)));
            } else {
                self.totals.store(
                    (self.naive_sent << 32) | self.mediated_sent,
                    Ordering::Relaxed,
                );
            }
            return;
        }
        let _ = self.client.on_timer(ctx, timer);
    }
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        if let ClientEvent::Located { target, node, .. } =
            self.client.on_message(ctx, from, payload)
        {
            ctx.send(target, node, Payload::encode(&"report in".to_owned()));
        }
    }
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = self.client.on_delivery_failed(ctx, to, node, payload);
    }
}

fn main() {
    let topology = Topology::lan(NODES, DurationDist::Constant(SimDuration::from_micros(300)));
    let mut platform = SimPlatform::new(topology, PlatformConfig::default().with_seed(44));
    let mut scheme = HashedScheme::new(LocationConfig::default());
    scheme.bootstrap(&mut platform);

    let naive_pages = Arc::new(AtomicU64::new(0));
    let mediated_pages = Arc::new(AtomicU64::new(0));
    let drones: Vec<AgentId> = (0..DRONES)
        .map(|i| {
            platform.spawn(
                Box::new(Drone {
                    client: scheme.make_client(),
                    naive_pages: naive_pages.clone(),
                    mediated_pages: mediated_pages.clone(),
                }),
                NodeId::new(i as u32 % NODES),
            )
        })
        .collect();

    let totals = Arc::new(AtomicU64::new(0));
    platform.spawn(
        Box::new(Tower {
            client: scheme.make_client(),
            drones,
            pages_left: PAGES_PER_DRONE * DRONES as u32 * 2,
            naive_sent: 0,
            mediated_sent: 0,
            token: 0,
            tick: None,
            totals: totals.clone(),
        }),
        NodeId::new(0),
    );

    platform.run_for(SimDuration::from_secs(60));

    let packed = totals.load(Ordering::Relaxed);
    let naive_sent = packed >> 32;
    let mediated_sent = packed & 0xffff_ffff;
    let naive_got = naive_pages.load(Ordering::Relaxed);
    let mediated_got = mediated_pages.load(Ordering::Relaxed);
    println!("paging {DRONES} drones hopping every 25 ms:");
    println!(
        "  locate-then-send : {naive_got}/{naive_sent} pages arrived ({:.1}%)",
        100.0 * naive_got as f64 / naive_sent as f64
    );
    println!(
        "  send_via (mailbox): {mediated_got}/{mediated_sent} pages arrived ({:.1}%)",
        100.0 * mediated_got as f64 / mediated_sent as f64
    );
    assert_eq!(
        mediated_got, mediated_sent,
        "mediated paging must be lossless"
    );
    assert!(naive_got < naive_sent, "the race must bite the naive path");
}
