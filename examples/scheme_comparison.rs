//! Side-by-side comparison of all four location schemes on one workload.
//!
//! Runs the same population / mobility / query mix against the paper's
//! hash-based mechanism, the centralized baseline it was evaluated
//! against, and the two related-work schemes (Ajanta-style home
//! registries, Voyager-style forwarding pointers), then prints a summary
//! — and, for each scheme, the critical-path breakdown of its *slowest*
//! locate, reconstructed from the trace ring as a causal span tree.
//!
//! ```text
//! cargo run --release --example scheme_comparison [--export DIR]
//! ```
//!
//! With `--export DIR`, also writes a Chrome/Perfetto trace
//! (`<scheme>.perfetto.json`, open in <https://ui.perfetto.dev>) and a
//! folded-stack flamegraph (`<scheme>.folded`, feed to `flamegraph.pl`
//! or speedscope) per scheme.

use agentrack::core::{
    CentralizedScheme, ForwardingScheme, HashedScheme, HomeRegistryScheme, LocationConfig,
};
use agentrack::sim::TraceSink;
use agentrack::trace_analysis::{
    build_spans, render_breakdown, slowest, to_folded, to_perfetto_json, SpanTree,
};
use agentrack::workload::{RunOptions, Scenario, ScenarioReport};

fn run(name: &str, scenario: &Scenario) -> (ScenarioReport, Vec<SpanTree>) {
    let config = LocationConfig::default();
    let sink = TraceSink::bounded(262_144);
    let out = match name {
        "hashed" => scenario.run_with(
            &mut HashedScheme::new(config),
            RunOptions::new().with_sink(sink.clone()),
        ),
        "centralized" => scenario.run_with(
            &mut CentralizedScheme::new(config),
            RunOptions::new().with_sink(sink.clone()),
        ),
        "home-registry" => scenario.run_with(
            &mut HomeRegistryScheme::new(config),
            RunOptions::new().with_sink(sink.clone()),
        ),
        "forwarding" => scenario.run_with(
            &mut ForwardingScheme::new(config),
            RunOptions::new().with_sink(sink.clone()),
        ),
        _ => unreachable!(),
    };
    let trees = build_spans(&sink.snapshot())
        .into_iter()
        .filter(|t| !t.duration().is_zero())
        .collect();
    (out.report, trees)
}

fn main() {
    let mut export_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--export" => export_dir = args.next().map(std::path::PathBuf::from),
            other => {
                eprintln!("unknown argument {other:?} (only --export DIR is supported)");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = &export_dir {
        std::fs::create_dir_all(dir).expect("create export dir");
    }

    // A hot workload: 250 agents hopping every 250 ms (≈ 1000 updates/s —
    // about one tracker's entire capacity), 400 queries.
    let scenario = Scenario::new("comparison")
        .with_agents(250)
        .with_residence_ms(250)
        .with_queries(400)
        .with_seconds(15.0, 8.0);

    println!(
        "{:>14}  {:>9}  {:>8}  {:>8}  {:>9}  {:>8}",
        "scheme", "mean(ms)", "p95(ms)", "answered", "trackers", "failures"
    );
    let mut slowest_per_scheme = Vec::new();
    for name in ["hashed", "centralized", "home-registry", "forwarding"] {
        let (r, trees) = run(name, &scenario);
        println!(
            "{:>14}  {:>9.2}  {:>8.2}  {:>8}  {:>9}  {:>8}",
            r.scheme,
            r.mean_locate_ms,
            r.p95_locate_ms,
            r.locates_completed,
            r.trackers,
            r.locate_failures,
        );
        if let Some(worst) = slowest(&trees) {
            slowest_per_scheme.push((name, worst.clone()));
        }
        if let Some(dir) = &export_dir {
            std::fs::write(
                dir.join(format!("{name}.perfetto.json")),
                to_perfetto_json(&trees),
            )
            .expect("write perfetto trace");
            std::fs::write(dir.join(format!("{name}.folded")), to_folded(&trees, name))
                .expect("write folded stacks");
        }
    }

    println!();
    println!("slowest locate per scheme, phase by phase:");
    for (name, tree) in &slowest_per_scheme {
        println!();
        println!("-- {name} --");
        print!("{}", render_breakdown(tree));
    }
    if let Some(dir) = &export_dir {
        println!();
        println!(
            "wrote per-scheme Perfetto traces and folded stacks to {}",
            dir.display()
        );
    }

    println!();
    println!("what to look for:");
    println!("  * hashed      — flat latency; tracker count adapted to the load");
    println!("  * centralized — one tracker at ~100% utilisation: queueing blows up");
    println!("  * home-reg.   — fast, but only works when names encode the home node");
    println!("  * forwarding  — pointer chains grow with mobility; latency drifts up");
    println!("  * the breakdowns name the culprit: queue_wait for the saturated");
    println!("    central tracker, chain_traversal for long forwarding chains,");
    println!("    retry_backoff wherever answers outlived the client's patience");
}
