//! Side-by-side comparison of all four location schemes on one workload.
//!
//! Runs the same population / mobility / query mix against the paper's
//! hash-based mechanism, the centralized baseline it was evaluated
//! against, and the two related-work schemes (Ajanta-style home
//! registries, Voyager-style forwarding pointers), then prints a summary.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use agentrack::core::{
    CentralizedScheme, ForwardingScheme, HashedScheme, HomeRegistryScheme, LocationConfig,
};
use agentrack::workload::{Scenario, ScenarioReport};

fn run(name: &str, scenario: &Scenario) -> ScenarioReport {
    let config = LocationConfig::default();
    match name {
        "hashed" => scenario.run(&mut HashedScheme::new(config)),
        "centralized" => scenario.run(&mut CentralizedScheme::new(config)),
        "home-registry" => scenario.run(&mut HomeRegistryScheme::new(config)),
        "forwarding" => scenario.run(&mut ForwardingScheme::new(config)),
        _ => unreachable!(),
    }
}

fn main() {
    // A hot workload: 250 agents hopping every 250 ms (≈ 1000 updates/s —
    // about one tracker's entire capacity), 400 queries.
    let scenario = Scenario::new("comparison")
        .with_agents(250)
        .with_residence_ms(250)
        .with_queries(400)
        .with_seconds(15.0, 8.0);

    println!(
        "{:>14}  {:>9}  {:>8}  {:>8}  {:>9}  {:>8}",
        "scheme", "mean(ms)", "p95(ms)", "answered", "trackers", "failures"
    );
    for name in ["hashed", "centralized", "home-registry", "forwarding"] {
        let r = run(name, &scenario);
        println!(
            "{:>14}  {:>9.2}  {:>8.2}  {:>8}  {:>9}  {:>8}",
            r.scheme,
            r.mean_locate_ms,
            r.p95_locate_ms,
            r.locates_completed,
            r.trackers,
            r.locate_failures,
        );
    }
    println!();
    println!("what to look for:");
    println!("  * hashed      — flat latency; tracker count adapted to the load");
    println!("  * centralized — one tracker at ~100% utilisation: queueing blows up");
    println!("  * home-reg.   — fast, but only works when names encode the home node");
    println!("  * forwarding  — pointer chains grow with mobility; latency drifts up");
}
