//! String strategies from regex-like patterns.
//!
//! The real proptest treats `&str` as a strategy generating strings that
//! match the pattern as a regex. This stand-in supports the subset of
//! regex syntax its users need: literal characters, character classes
//! with ranges (`[a-z0-9 .,]`), `.`, and the quantifiers `{m}`,
//! `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 32 repeats).

use rand::Rng;

use crate::TestRng;

/// One parsed pattern element plus its repetition bounds.
struct Element {
    /// Characters this element can produce.
    choices: Vec<char>,
    min: u32,
    max: u32,
}

/// Printable ASCII, the real crate's default alphabet for `.`.
fn any_printable() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

fn parse(pattern: &str) -> Vec<Element> {
    let mut chars = pattern.chars().peekable();
    let mut elements = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let start = prev.take().expect("checked");
                            let end = chars.next().expect("peeked");
                            assert!(start <= end, "bad range {start}-{end} in {pattern:?}");
                            set.extend((start..=end).filter(|c| *c != start));
                        }
                        Some('\\') => {
                            let esc = chars.next().expect("escape in class");
                            set.push(esc);
                            prev = Some(esc);
                        }
                        Some(other) => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                set
            }
            '.' => any_printable(),
            '\\' => vec![chars.next().expect("dangling escape")],
            other => vec![other],
        };
        // Quantifier, if any.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            _ => (1, 1),
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        elements.push(Element { choices, min, max });
    }
    elements
}

/// Generates one string matching `pattern`.
pub(crate) fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for element in parse(pattern) {
        let count = if element.min == element.max {
            element.min
        } else {
            rng.gen_range(element.min..=element.max)
        };
        for _ in 0..count {
            let idx = rng.gen_range(0..element.choices.len());
            out.push(element.choices[idx]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Strategy, TestRng};

    #[test]
    fn class_with_ranges_and_quantifier() {
        let mut rng = TestRng::from_test_name("string");
        let strategy = "[a-cA-C0-2 .,!?]{0,10}";
        for _ in 0..200 {
            let s = strategy.generate(&mut rng);
            assert!(s.chars().count() <= 10, "too long: {s:?}");
            assert!(
                s.chars().all(|c| "abcABC012 .,!?".contains(c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn literals_and_simple_quantifiers() {
        let mut rng = TestRng::from_test_name("lits");
        assert_eq!("abc".generate(&mut rng), "abc");
        let s = "x{3}".generate(&mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let s = "a?b+".generate(&mut rng);
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
            assert!(s.contains('b'));
        }
    }
}
