//! Option strategies (`proptest::option::of`).

use rand::Rng;

use crate::{Strategy, TestRng};

/// Strategy generating `Option<T>` (`None` with the real crate's default
/// 1-in-4 probability).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

/// Wraps `inner` into an `Option` strategy.
#[must_use]
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
