//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`,
//! `proptest::option::of`, weighted `prop_oneof!`, and the `proptest!`
//! / `prop_assert!` / `prop_assert_eq!` macros. Cases are generated
//! from a deterministic per-test seed (hash of the test's module path
//! and name), so failures reproduce across runs. There is **no
//! shrinking**: a failing case reports the generated inputs as-is.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod option;
mod string;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias so `prop::collection::vec(..)` resolves, as with
    /// the real crate's prelude.
    pub use crate as prop;
}

/// The generator driving every strategy, seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a deterministic generator from a test's full name.
    #[must_use]
    pub fn from_test_name(name: &str) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in name.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

/// Controls how a `proptest!` block runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the suite fast on small
        // machines while still exploring the space well.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case, produced by the `prop_assert*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if no arm exists or all weights are zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.arms {
            if pick < *weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights cover the sampled range")
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for `T` (`any::<u64>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for the full domain of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite floats across magnitudes: sign * mantissa * 2^exp.
        let mantissa: f64 = rng.gen();
        let exp = rng.gen_range(-64i32..64);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mantissa * (exp as f64).exp2()
    }
}
impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Chooses between strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(binding in strategy, …) { … }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    (@fns ($config:expr); ) => {};
    (@fns ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_test_name(
                ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
            );
            $(let $binding = $strategy;)+
            for case in 0..config.cases {
                $(let $binding = $crate::Strategy::generate(&$binding, &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = {
                    $(let $binding = ::std::clone::Clone::clone(&$binding);)+
                    let run = || { $body ::std::result::Result::Ok(()) };
                    run()
                };
                if let ::std::result::Result::Err(e) = result {
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&::std::format!(
                        "\n  {} = {:?}",
                        ::std::stringify!($binding),
                        &$binding
                    ));)+
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_test_name("x::y");
        let mut b = crate::TestRng::from_test_name("x::y");
        let s = 0u64..100;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![
            9 => (0u64..1).prop_map(|_| true),
            1 => (0u64..1).prop_map(|_| false),
        ];
        let mut rng = crate::TestRng::from_test_name("weights");
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!((800..1000).contains(&hits), "weight skew: {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_and_tuples(pair in (0u64..10, 5i64..8), flag in any::<bool>()) {
            prop_assert!(pair.0 < 10);
            prop_assert!((5..8).contains(&pair.1));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(pair.0 as i64 + 100, pair.1);
        }

        fn vec_sizes(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "bad len {}", v.len());
        }

        fn options_mix(o in prop::option::of(0u32..3)) {
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }
    }

    proptest! {
        fn default_config_runs(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }
}
