//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::{Strategy, TestRng};

/// Strategy generating vectors whose length is drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with per-element strategy `element` and a length drawn
/// uniformly from `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
