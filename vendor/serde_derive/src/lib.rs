//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize` / `Deserialize` for the sibling `serde` stand-in
//! by parsing the item's token stream directly (no `syn`/`quote`, which
//! are unavailable offline). Supports exactly the shapes this workspace
//! declares: non-generic named structs, tuple structs, unit structs, and
//! enums with unit / tuple / named-field variants. `#[serde(...)]`
//! attributes are not supported (the workspace uses none) and any
//! generic parameter is a hard error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// What a `#[derive]` target looks like after parsing.
enum Shape {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<(String, Body)>,
    },
}

/// The field layout of a struct or enum variant.
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = generate_serialize(&shape);
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = generate_deserialize(&shape);
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (including doc comments, which arrive as
/// `#[doc = "..."]`).
fn skip_attrs(iter: &mut Tokens) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        // The bracketed attribute body.
        iter.next();
    }
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …).
fn skip_visibility(iter: &mut Tokens) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn expect_ident(iter: &mut Tokens, what: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected {what}, got {other:?}"),
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_visibility(&mut iter);
    let kind = expect_ident(&mut iter, "`struct` or `enum`");
    let name = expect_ident(&mut iter, "item name");
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                body: Body::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Struct {
                name,
                body: Body::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct {
                name,
                body: Body::Unit,
            },
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, got `{other}`"),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names. Types
/// are consumed by skipping to the next comma at angle-bracket depth
/// zero; nested tuples/arrays arrive as single groups, so only `<`/`>`
/// need explicit depth tracking.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        let field = expect_ident(&mut iter, "field name");
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{field}`, got {other:?}"),
        }
        fields.push(field);
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut depth = 0i32;
    let mut segment_has_tokens = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if segment_has_tokens {
                        arity += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Body)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut iter, "variant name");
        let body = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Body::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                Body::Tuple(arity)
            }
            _ => Body::Unit,
        };
        variants.push((name, body));
        // Skip up to the separating comma (tolerating explicit
        // discriminants, which this workspace does not use).
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `(f0, f1, …)` binder list for a tuple variant of the given arity.
fn tuple_binders(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("f{i}")).collect()
}

fn generate_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, body } => {
            let expr = match body {
                Body::Unit => "::serde::Value::Null".to_string(),
                Body::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Body::Tuple(arity) => {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Body::Named(fields) => serialize_named_expr(fields, "&self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, body)| match body {
                    Body::Unit => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Body::Tuple(arity) => {
                        let binders = tuple_binders(*arity);
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),",
                            binders.join(", ")
                        )
                    }
                    Body::Named(fields) => {
                        let payload = serialize_named_expr(fields, "");
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),",
                            fields.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// `Value::Map` expression for named fields; `access` prefixes each
/// field (either `&self.` for structs or `` for match binders, which are
/// already references).
fn serialize_named_expr(fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize({access}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn generate_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct { name, body } => deserialize_body_expr(name, body, "value"),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, b)| matches!(b, Body::Unit))
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, b)| !matches!(b, Body::Unit))
                .map(|(vname, b)| {
                    let expr = deserialize_variant_expr(name, vname, b);
                    format!("\"{vname}\" => {{ {expr} }}")
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = value.as_str() {{\n\
                     return match s {{\n{}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant {{other}} for {name}\"))),\n\
                     }};\n\
                 }}\n\
                 if let ::std::option::Option::Some(entries) = value.as_map() {{\n\
                     if entries.len() == 1 {{\n\
                         let (tag, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         return match tag.as_str() {{\n{}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant {{other}} for {name}\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected {name} variant, got {{value:?}}\")))",
                unit_arms.join("\n"),
                data_arms.join("\n"),
            )
        }
    };
    let name = match shape {
        Shape::Struct { name, .. } | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Expression deserialising a struct (as the fn tail) from `source`.
fn deserialize_body_expr(name: &str, body: &Body, source: &str) -> String {
    match body {
        Body::Unit => format!(
            "match {source} {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected null for {name}, got {{other:?}}\"))),\n\
             }}"
        ),
        Body::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize({source})?))"
        ),
        Body::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "{{\n\
                     let items = {source}.as_seq().ok_or_else(|| ::serde::Error::custom(\
                         \"expected sequence for {name}\"))?;\n\
                     if items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))\n\
                 }}",
                items.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match {source}.get(\"{f}\") {{\n\
                             ::std::option::Option::Some(v) => \
                                 ::serde::Deserialize::deserialize(v)?,\n\
                             ::std::option::Option::None => \
                                 ::serde::Deserialize::deserialize_missing().map_err(|_| \
                                     ::serde::Error::custom(\"missing field {f}\"))?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "{{\n\
                     if {source}.as_map().is_none() {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"expected map for {name}, got {{:?}}\", {source})));\n\
                     }}\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})\n\
                 }}",
                inits.join("\n")
            )
        }
    }
}

/// Match-arm body deserialising one data-carrying enum variant from the
/// externally tagged `payload`.
fn deserialize_variant_expr(name: &str, vname: &str, body: &Body) -> String {
    let path = format!("{name}::{vname}");
    match body {
        Body::Unit => unreachable!("unit variants are handled as strings"),
        Body::Tuple(1) => format!(
            "::std::result::Result::Ok({path}(::serde::Deserialize::deserialize(payload)?))"
        ),
        Body::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = payload.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     \"expected sequence for {path}\"))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple arity for {path}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({path}({}))",
                items.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match payload.get(\"{f}\") {{\n\
                             ::std::option::Option::Some(v) => \
                                 ::serde::Deserialize::deserialize(v)?,\n\
                             ::std::option::Option::None => \
                                 ::serde::Deserialize::deserialize_missing().map_err(|_| \
                                     ::serde::Error::custom(\"missing field {f}\"))?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "if payload.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected map for {path}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({path} {{\n{}\n}})",
                inits.join("\n")
            )
        }
    }
}
