//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses: the `RngCore` / `Rng` /
//! `SeedableRng` traits and an `StdRng` built on xoshiro256++ seeded via
//! SplitMix64. The stream differs from upstream `StdRng` (which is
//! ChaCha12) — nothing in this workspace depends on the exact stream,
//! only on determinism and statistical quality, both of which
//! xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type samplable uniformly over its whole domain (rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range type usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` uniformly over its domain.
    #[allow(clippy::should_implement_trait)] // matches the rand 0.8 API
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[allow(clippy::cast_possible_truncation)]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean drifted: {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
