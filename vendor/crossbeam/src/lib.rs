//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` with the subset of its API this
//! workspace uses, implemented over `std::sync::mpsc` (whose `Sender`
//! has been `Sync` since Rust 1.72, so sharing a sender vector behind an
//! `Arc` works exactly as it does with the real crate).

/// Multi-producer channels with timeout-aware receives.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Instant;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks until a message arrives, the deadline passes, or all
        /// senders are gone.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let timeout = deadline.saturating_duration_since(Instant::now());
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        t.join().unwrap();
    }

    #[test]
    fn recv_deadline_times_out() {
        let (tx, rx) = unbounded::<u32>();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
        drop(tx);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(
            rx.recv_deadline(deadline),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
