//! The in-memory data model every serialisable type passes through.

/// A tree in the serialisation data model (structurally the JSON data
/// model, with unsigned and signed integers kept apart so `u64::MAX`
/// survives a round trip).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float; integers coerce losslessly enough for the
    /// workloads here (matching `serde_json`'s behaviour for `f64`
    /// fields fed integral JSON numbers).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a sequence, if it is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as map entries, if it is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in a map value (first match wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(5).as_u64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::U64(5).as_i64(), Some(5));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::U64(2).as_f64(), Some(2.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        let m = Value::Map(vec![("a".into(), Value::Null)]);
        assert!(matches!(m.get("a"), Some(Value::Null)));
        assert!(m.get("b").is_none());
    }
}
