//! Offline stand-in for `serde`.
//!
//! The real serde separates data structures from data formats through a
//! visitor API. This stand-in keeps the same surface (`Serialize` /
//! `Deserialize` traits, derive macros, `serde::de::DeserializeOwned`)
//! but routes everything through one concrete in-memory data model,
//! [`Value`] — the only format this workspace serialises to is JSON
//! (via the sibling `serde_json` stand-in), so a single intermediate
//! tree is sufficient and keeps the derive macro tiny.
//!
//! Mapping conventions match `serde_json`'s defaults for the shapes this
//! workspace uses: named structs become maps, newtype structs are
//! transparent, tuple structs become sequences, unit enum variants
//! become strings and data-carrying variants become externally tagged
//! single-entry maps. Maps with integer-like keys stringify the key,
//! exactly as `serde_json` does.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type serialisable into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not encode a `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called for struct fields absent from the serialised map. Only
    /// `Option` admits a missing field (as `None`); everything else is
    /// an error, matching serde's default (non-`#[serde(default)]`)
    /// behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless the type tolerates absence.
    fn deserialize_missing() -> Result<Self, Error> {
        Err(Error::custom("missing field"))
    }
}

/// Deserialisation helpers namespace, mirroring `serde::de`.
pub mod de {
    /// Marker for types deserialisable without borrowing from the input.
    /// Our [`Deserialize`](crate::Deserialize) never borrows, so every
    /// deserialisable type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {value:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        u64::deserialize(value).and_then(|n| {
            usize::try_from(n).map_err(|_| Error::custom("integer out of range for usize"))
        })
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {value:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arity = [$($idx),+].len();
                match value {
                    Value::Seq(items) if items.len() == arity => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected sequence of length {arity}, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Stringifies a map key the way `serde_json` does: strings pass
/// through, integers render in decimal.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be string-like, got {other:?}"
        ))),
    }
}

/// Re-parses a stringified key so integer-keyed maps round-trip.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!(
        "cannot reconstruct map key from {key:?}"
    )))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.serialize())
                    .expect("map keys in this workspace are string-like");
                (key, v.serialize())
            })
            .collect();
        // Deterministic output so equal maps encode to equal bytes.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.serialize())
                        .expect("map keys in this workspace are string-like");
                    (key, v.serialize())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

// `Value` round-trips through itself, mirroring serde_json's blanket
// `Serialize`/`Deserialize` for `serde_json::Value`: callers can parse a
// document to the raw tree (e.g. for strict unknown-key checking) before
// the typed deserialization pass.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        // Integral JSON numbers satisfy float fields.
        assert_eq!(f64::deserialize(&Value::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn option_distinguishes_missing_from_null() {
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::deserialize_missing().unwrap(), None);
        assert!(u64::deserialize_missing().is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(10u64, "ten".to_string());
        m.insert(2u64, "two".to_string());
        let back: HashMap<u64, String> = HashMap::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);

        let arr = [5u32, 6];
        let back: [u32; 2] = <[u32; 2]>::deserialize(&arr.serialize()).unwrap();
        assert_eq!(back, arr);

        let t = (1u8, "x".to_string(), true);
        let back: (u8, String, bool) = Deserialize::deserialize(&t.serialize()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::deserialize(&Value::Str("no".into())).is_err());
        assert!(Vec::<u64>::deserialize(&Value::U64(1)).is_err());
        assert!(<[u8; 3]>::deserialize(&vec![1u8].serialize()).is_err());
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }
}
