//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's poison-free API: `lock()`,
//! `read()` and `write()` return guards directly, recovering the inner
//! value if a previous holder panicked (matching parking_lot, which has
//! no poisoning at all).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
