//! Offline stand-in for `serde_json`.
//!
//! Serialises the `serde` stand-in's [`Value`] tree to JSON text and
//! parses JSON text back. Floats are emitted with Rust's shortest
//! round-trip formatting (the behaviour of serde_json's
//! `float_roundtrip` feature, which this workspace enables).

use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Error produced by JSON parsing or by a type mismatch during
/// deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to a JSON string.
///
/// # Errors
///
/// Never fails for the types this workspace serialises; the `Result`
/// mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serialises `value` to JSON bytes.
///
/// # Errors
///
/// Never fails for the types this workspace serialises.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a JSON string into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::deserialize(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON bytes into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; it
                // always contains a '.' or 'e' so the value re-parses as
                // a float.
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json errors on non-finite floats; nothing
                // in this workspace serialises them, and `null` is the
                // least-wrong representation if something ever does.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad sequence at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad map at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {:?}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is valid UTF-8:
                    // it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| Error::new(e.to_string()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|e| Error::new(e.to_string()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for f in [0.1f64, 1.0, -2.5, 1e-9, 12345.6789, f64::MAX] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\te\u{08}\u{0c}\u{1f}ü‰😀";
        let s = to_string(&tricky.to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), tricky);
        // Explicit unicode escapes, including a surrogate pair.
        assert_eq!(from_str::<String>(r#""ü😀\/""#).unwrap(), "ü😀/");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u64, 2u64), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u64, u64)>>(&s).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert(7u64, vec![1u8]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"7":[1]}"#);
        assert_eq!(
            from_str::<std::collections::HashMap<u64, Vec<u8>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn whitespace_tolerated_and_garbage_rejected() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n3 ] ").unwrap(),
            vec![1, 2, 3]
        );
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_slice::<u64>(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn to_vec_matches_to_string() {
        assert_eq!(to_vec(&true).unwrap(), b"true".to_vec());
    }
}
