//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `Criterion` API so
//! the workspace's benches compile and run offline, with a simple but
//! honest measurement loop: each benchmark is calibrated until one
//! sample takes a measurable amount of wall-clock time, several samples
//! are taken, and the **median** ns/iteration is reported (robust to
//! scheduler noise). Results are printed and kept on the [`Criterion`]
//! value so custom `main`s can export them (see
//! [`Criterion::results`]).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples taken per benchmark (medianed).
const SAMPLES: usize = 7;
/// Minimum wall-clock time for one calibrated sample.
const MIN_SAMPLE: Duration = Duration::from_millis(5);

/// How `iter_batched` sizes its batches. The stand-in times each batch
/// of one input; the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// An id carrying only a parameter (joined to the group name).
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/param` or plain name).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// The measurement state passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, called in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters: u64 = 1;
        // Calibrate: grow the iteration count until one sample is long
        // enough to measure reliably.
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE || iters >= 1 << 40 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 128
            } else {
                // Aim straight for the target with headroom.
                let scale = MIN_SAMPLE.as_nanos() as f64 / elapsed.as_nanos() as f64;
                (iters as f64 * scale.max(2.0)).min(1e12) as u64
            };
        }
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            *sample = start.elapsed().as_nanos() as f64 / iters as f64;
        }
        self.ns_per_iter = median(&mut samples);
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate the batch count so the timed section is measurable.
        let mut batch: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE || batch >= 1 << 24 {
                break;
            }
            batch *= if elapsed.is_zero() { 64 } else { 4 };
        }
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            *sample = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        self.ns_per_iter = median(&mut samples);
    }

    /// Lets the routine time itself: it receives an iteration count and
    /// returns the elapsed wall-clock time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let mut iters: u64 = 1;
        loop {
            let elapsed = routine(iters);
            if elapsed >= MIN_SAMPLE || iters >= 1 << 24 {
                break;
            }
            iters *= if elapsed.is_zero() { 64 } else { 4 };
        }
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            *sample = routine(iters).as_nanos() as f64 / iters as f64;
        }
        self.ns_per_iter = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The benchmark harness root.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run(name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All results measured so far (used by custom `main`s to export).
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        println!("bench {id:<50} {:>14.1} ns/iter", bencher.ns_per_iter);
        self.results.push(BenchResult {
            id,
            ns_per_iter: bencher.ns_per_iter,
        });
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's sample count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in auto-calibrates.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run(full, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run(full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, as with the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, running each group. Tolerates the
/// argument conventions `cargo bench` uses (`--bench`, filters), which
/// the stand-in ignores.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            let _ = c.results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for i in 0..iters {
                    black_box(i);
                }
                start.elapsed()
            });
        });
        group.finish();
    }

    #[test]
    fn harness_measures_everything() {
        let mut c = Criterion::default();
        quick(&mut c);
        let results = c.results();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.ns_per_iter >= 0.0));
        assert_eq!(results[1].id, "grp/4");
    }
}
