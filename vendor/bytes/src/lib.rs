//! Offline stand-in for the `bytes` crate.
//!
//! Implements the small slice of the API this workspace uses: an
//! immutable, cheaply cloneable byte buffer. Cloning shares the
//! allocation via `Arc` exactly like the real crate (without the
//! zero-copy slicing machinery, which nothing here needs).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::new(bytes.to_vec()))
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::new(v.to_vec()))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&*a, &[1, 2, 3]);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_static_round_trips() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.as_ref(), b"hello");
    }
}
