//! Property tests of the histogram primitives: the striped
//! [`AtomicLogHistogram`] must be indistinguishable from the sequential
//! [`LogHistogram`] on the same multiset of samples, and merging
//! partition snapshots must be order-independent.

use agentrack_sim::{AtomicLogHistogram, LogHistogram, SimDuration};
use proptest::prelude::*;

/// Records `samples` into a sequential histogram.
fn sequential(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(SimDuration::from_nanos(s));
    }
    h
}

proptest! {
    /// Concurrent striped recording agrees exactly with sequential
    /// recording of the same samples: same counts, same total, same sum
    /// (and therefore same mean and every percentile).
    #[test]
    fn atomic_agrees_with_sequential(
        samples in prop::collection::vec(any::<u64>(), 0..400),
        stripes in 1usize..9,
        threads in 1usize..5,
    ) {
        let atomic = AtomicLogHistogram::new(stripes);
        // Deal the samples round-robin to `threads` recording threads so
        // the interleaving (and the stripe each lands in) varies freely.
        std::thread::scope(|scope| {
            for t in 0..threads {
                let atomic = &atomic;
                let samples = &samples;
                scope.spawn(move || {
                    for s in samples.iter().skip(t).step_by(threads) {
                        atomic.record(SimDuration::from_nanos(*s));
                    }
                });
            }
        });
        prop_assert_eq!(atomic.snapshot(), sequential(&samples));
    }

    /// Snapshot merging is order-independent: splitting the samples into
    /// chunks, snapshotting each, and merging the snapshots in any
    /// permutation gives the histogram of the whole sample set.
    #[test]
    fn merge_is_order_independent(
        chunks in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..60), 1..8),
        seed in any::<u64>(),
    ) {
        let snapshots: Vec<LogHistogram> = chunks
            .iter()
            .map(|c| {
                let h = AtomicLogHistogram::new(2);
                for &s in c {
                    h.record_value(s);
                }
                h.snapshot()
            })
            .collect();

        // A cheap deterministic permutation of the merge order.
        let mut order: Vec<usize> = (0..snapshots.len()).collect();
        let mut state = seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut merged = LogHistogram::new();
        for &i in &order {
            merged.merge(&snapshots[i]);
        }
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        prop_assert_eq!(&merged, &sequential(&all));

        // Forward-order merge agrees with the permuted order too.
        let mut forward = LogHistogram::new();
        for s in &snapshots {
            forward.merge(s);
        }
        prop_assert_eq!(&forward, &merged);
    }
}
