//! Property tests of the simulation kernel: event ordering, station
//! conservation, and distribution sanity.

use agentrack_sim::{
    DurationDist, Scheduler, ServiceStation, SimDuration, SimRng, SimTime, WindowedRate,
};
use proptest::prelude::*;

proptest! {
    /// Events come out in non-decreasing time order regardless of the
    /// scheduling order, and same-instant events preserve FIFO order.
    #[test]
    fn scheduler_orders_any_schedule(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sched: Scheduler<usize> = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut popped = 0usize;
        while let Some((at, idx)) = sched.pop() {
            popped += 1;
            prop_assert!(at >= last_time, "time went backwards");
            if at == last_time {
                // FIFO within an instant: indices increase.
                if let Some(&prev) = seen_at_time.last() {
                    if times[prev] == times[idx] {
                        prop_assert!(idx > prev, "FIFO violated at {at}");
                    }
                }
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = at;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// A FIFO station serves every item exactly once, in order, with no
    /// overlap: completion times are strictly increasing by at least the
    /// service time, and total busy time equals the sum of service times.
    #[test]
    fn station_conserves_work(
        jobs in prop::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)
    ) {
        let mut jobs = jobs;
        jobs.sort_by_key(|&(arrive, _)| arrive);
        let mut station = ServiceStation::new();
        let mut last_done = SimTime::ZERO;
        let mut total_service = SimDuration::ZERO;
        for &(arrive, service) in &jobs {
            let arrive = SimTime::from_nanos(arrive);
            let service = SimDuration::from_nanos(service);
            let done = station.admit(arrive, service);
            prop_assert!(done >= arrive + service, "service cannot finish early");
            prop_assert!(done >= last_done + service, "overlapping service");
            last_done = done;
            total_service += service;
        }
        prop_assert_eq!(station.admitted(), jobs.len() as u64);
        // The server can never have been busy longer than the span it had.
        prop_assert!(station.busy_until() >= SimTime::ZERO + total_service);
    }

    /// The windowed rate estimator never reports a negative rate and
    /// reports zero after the window fully rolls past the last event.
    #[test]
    fn windowed_rate_bounds(gaps in prop::collection::vec(0u64..200_000_000, 1..100)) {
        let mut rate = WindowedRate::new(SimDuration::from_secs(1), 10);
        let mut t = SimTime::ZERO;
        for gap in gaps {
            t += SimDuration::from_nanos(gap);
            rate.record(t);
            let r = rate.rate_per_sec(t);
            prop_assert!(r >= 0.0);
        }
        let silent = t + SimDuration::from_secs(2);
        prop_assert_eq!(rate.rate_per_sec(silent), 0.0);
    }

    /// Sampled durations respect their distribution's support.
    #[test]
    fn distributions_stay_in_support(seed in any::<u64>(), lo in 0u64..1000, width in 0u64..1000) {
        let mut rng = SimRng::seed_from(seed);
        let lo_d = SimDuration::from_micros(lo);
        let hi_d = SimDuration::from_micros(lo + width);
        let uniform = DurationDist::Uniform { lo: lo_d, hi: hi_d };
        for _ in 0..50 {
            let s = rng.sample(&uniform);
            prop_assert!(s >= lo_d && s <= hi_d);
        }
        let constant = DurationDist::Constant(lo_d);
        prop_assert_eq!(rng.sample(&constant), lo_d);
    }
}
