//! The event queue: a future-event list ordered by virtual time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A discrete-event scheduler over events of type `E`.
///
/// Events scheduled for the same instant are delivered in scheduling order
/// (FIFO tie-breaking), which keeps runs deterministic.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{Scheduler, SimDuration, SimTime};
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_after(SimDuration::from_millis(2), "second");
/// sched.schedule_after(SimDuration::from_millis(1), "first");
/// assert_eq!(sched.pop(), Some((SimTime::from_nanos(1_000_000), "first")));
/// assert_eq!(sched.pop(), Some((SimTime::from_nanos(2_000_000), "second")));
/// assert_eq!(sched.pop(), None);
/// ```
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    scheduled_total: u64,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-scheduled) event comes out first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// The current virtual time: the timestamp of the last event popped.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — the simulation cannot rewrite
    /// history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.scheduled_total += 1;
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Advances the clock to `t` without processing anything. A bounded
    /// run that finds no event before its deadline must still end *at*
    /// the deadline, or repeated short runs across a quiet gap would
    /// recompute the same deadline forever and the clock would never
    /// move. Going backwards is a no-op.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_nanos(30), 3);
        s.schedule(SimTime::from_nanos(10), 1);
        s.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_nanos(30));
        assert_eq!(s.scheduled_total(), 3);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            s.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_after(SimDuration::from_millis(1), "a");
        let (t1, _) = s.pop().unwrap();
        s.schedule_after(SimDuration::from_millis(1), "b");
        let (t2, _) = s.pop().unwrap();
        assert_eq!(t2 - t1, SimDuration::from_millis(1));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_nanos(10), 1);
        s.pop();
        s.schedule(SimTime::from_nanos(5), 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_nanos(10), 1);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(s.now(), SimTime::ZERO);
    }
}
