//! A shared metrics registry: per-tracker gauges and counters, rehash
//! counts per hash-function version, and a locate-latency histogram.
//!
//! The paper's evaluation reports aggregates; operating the mechanism
//! needs the per-tracker view — which IAgent is saturated, whose
//! mailbox is filling, how each rehash generation behaved. Scheme
//! implementations update the registry from inside agent callbacks
//! (the handle is `Clone` and internally locked); experiment drivers
//! snapshot it at the end of a run and export JSON or CSV.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::Histogram;
use crate::time::SimDuration;

/// Live metrics for one tracker (IAgent or equivalent directory node).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackerMetrics {
    /// Protocol messages this tracker has handled.
    pub requests: u64,
    /// Pending-locate queue depth at the last observation.
    pub queue_depth: usize,
    /// Largest pending-locate queue depth ever observed.
    pub queue_depth_peak: usize,
    /// Mailbox occupancy at the last observation.
    pub mailbox_occupancy: usize,
    /// Largest mailbox occupancy ever observed.
    pub mailbox_occupancy_peak: usize,
    /// Windowed request rate (messages/s) at the last observation.
    pub rate_per_sec: f64,
    /// Directory records held at the last observation.
    pub records_held: usize,
    /// Guaranteed-delivery messages buffered while targets migrated.
    pub mail_buffered: u64,
    /// Buffered messages flushed to re-registered targets.
    pub mail_flushed: u64,
    /// Buffered messages dropped after their TTL expired.
    pub mail_lost: u64,
    /// Locates against this tracker abandoned because the final attempt
    /// timed out unanswered (tracker crashed, partitioned, or saturated).
    pub giveup_timeout: u64,
    /// Locates against this tracker abandoned on an explicit negative
    /// answer (`NotFound`/`NotResponsible` on the final attempt).
    pub giveup_negative: u64,
    /// Of [`giveup_timeout`](Self::giveup_timeout), how many hit a
    /// tracker on a *different node* than the querier — the signature of
    /// a severed inter-region link, as opposed to a local overload.
    pub giveup_timeout_remote: u64,
    /// Of [`giveup_negative`](Self::giveup_negative), how many came from
    /// a tracker on a different node than the querier.
    pub giveup_negative_remote: u64,
}

impl TrackerMetrics {
    /// Observes the current queue depth, updating the gauge and peak.
    pub fn observe_queue_depth(&mut self, depth: usize) {
        self.queue_depth = depth;
        self.queue_depth_peak = self.queue_depth_peak.max(depth);
    }

    /// Observes the current mailbox occupancy, updating gauge and peak.
    pub fn observe_mailbox(&mut self, occupancy: usize) {
        self.mailbox_occupancy = occupancy;
        self.mailbox_occupancy_peak = self.mailbox_occupancy_peak.max(occupancy);
    }
}

/// Rehash activity within one hash-function version.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RehashCounts {
    /// Splits that produced this version.
    pub splits: u64,
    /// Merges that produced this version.
    pub merges: u64,
}

/// Summary statistics of the locate-latency histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Completed locates measured.
    pub count: usize,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Worst latency in milliseconds.
    pub max_ms: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    trackers: BTreeMap<u64, TrackerMetrics>,
    rehashes: BTreeMap<u64, RehashCounts>,
    locate_latency: Histogram,
}

/// A cloneable, internally-locked handle to the metrics store.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{MetricsRegistry, SimDuration};
///
/// let registry = MetricsRegistry::new();
/// registry.update_tracker(7, |t| {
///     t.requests += 1;
///     t.observe_mailbox(3);
/// });
/// registry.record_locate(SimDuration::from_millis(4));
/// let snap = registry.snapshot();
/// assert_eq!(snap.trackers[0].1.requests, 1);
/// assert_eq!(snap.locate_latency.count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Updates (creating on first touch) the metrics of one tracker.
    pub fn update_tracker(&self, tracker: u64, f: impl FnOnce(&mut TrackerMetrics)) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        f(inner.trackers.entry(tracker).or_default());
    }

    /// Counts a committed split under the version it produced.
    pub fn record_split(&self, version: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.rehashes.entry(version).or_default().splits += 1;
    }

    /// Counts a committed merge under the version it produced.
    pub fn record_merge(&self, version: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.rehashes.entry(version).or_default().merges += 1;
    }

    /// Records one completed locate's end-to-end latency.
    pub fn record_locate(&self, elapsed: SimDuration) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.locate_latency.record(elapsed);
    }

    /// Total guaranteed-delivery messages lost to TTL expiry, across
    /// all trackers.
    #[must_use]
    pub fn mail_lost(&self) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.trackers.values().map(|t| t.mail_lost).sum()
    }

    /// A consistent copy of everything the registry holds.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let ms = |d: SimDuration| d.as_millis_f64();
        let locate_latency = LatencySummary {
            count: inner.locate_latency.len(),
            mean_ms: ms(inner.locate_latency.mean()),
            p50_ms: ms(inner.locate_latency.percentile(50.0)),
            p95_ms: ms(inner.locate_latency.percentile(95.0)),
            p99_ms: ms(inner.locate_latency.percentile(99.0)),
            max_ms: ms(inner.locate_latency.max()),
        };
        RegistrySnapshot {
            trackers: inner
                .trackers
                .iter()
                .map(|(&id, m)| (id, m.clone()))
                .collect(),
            rehashes: inner.rehashes.iter().map(|(&v, &c)| (v, c)).collect(),
            locate_latency,
        }
    }
}

/// A point-in-time copy of the registry, ready for export.
///
/// Trackers and rehash versions are sorted by id, so rendering the same
/// simulation twice yields byte-identical output — the determinism gate
/// diffs these files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Per-tracker metrics, ordered by tracker id.
    pub trackers: Vec<(u64, TrackerMetrics)>,
    /// Rehash counts, ordered by hash-function version.
    pub rehashes: Vec<(u64, RehashCounts)>,
    /// Locate-latency summary.
    pub locate_latency: LatencySummary,
}

impl RegistrySnapshot {
    /// Header of the per-tracker CSV produced by [`Self::to_csv`].
    pub const CSV_HEADER: &'static str = "tracker,requests,rate_per_sec,queue_depth,\
queue_depth_peak,mailbox_occupancy,mailbox_occupancy_peak,records_held,\
mail_buffered,mail_flushed,mail_lost,giveup_timeout,giveup_negative,\
giveup_timeout_remote,giveup_negative_remote";

    /// Renders the per-tracker metrics as CSV (header + one row per
    /// tracker).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for (id, t) in &self.trackers {
            let _ = writeln!(
                out,
                "{id},{},{:.3},{},{},{},{},{},{},{},{},{},{},{},{}",
                t.requests,
                t.rate_per_sec,
                t.queue_depth,
                t.queue_depth_peak,
                t.mailbox_occupancy,
                t.mailbox_occupancy_peak,
                t.records_held,
                t.mail_buffered,
                t.mail_flushed,
                t.mail_lost,
                t.giveup_timeout,
                t.giveup_negative,
                t.giveup_timeout_remote,
                t.giveup_negative_remote,
            );
        }
        out
    }

    /// Renders the full snapshot as a JSON document.
    ///
    /// Hand-rolled (every field is a number) so the sim crate needs no
    /// JSON dependency; keys appear in a fixed order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"trackers\": [");
        for (i, (id, t)) in self.trackers.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"tracker\": {id}, \"requests\": {}, \"rate_per_sec\": {:.3}, \
                 \"queue_depth\": {}, \"queue_depth_peak\": {}, \"mailbox_occupancy\": {}, \
                 \"mailbox_occupancy_peak\": {}, \"records_held\": {}, \"mail_buffered\": {}, \
                 \"mail_flushed\": {}, \"mail_lost\": {}, \"giveup_timeout\": {}, \
                 \"giveup_negative\": {}, \"giveup_timeout_remote\": {}, \
                 \"giveup_negative_remote\": {}}}",
                if i == 0 { "" } else { "," },
                t.requests,
                t.rate_per_sec,
                t.queue_depth,
                t.queue_depth_peak,
                t.mailbox_occupancy,
                t.mailbox_occupancy_peak,
                t.records_held,
                t.mail_buffered,
                t.mail_flushed,
                t.mail_lost,
                t.giveup_timeout,
                t.giveup_negative,
                t.giveup_timeout_remote,
                t.giveup_negative_remote,
            );
        }
        out.push_str("\n  ],\n  \"rehashes\": [");
        for (i, (version, c)) in self.rehashes.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"version\": {version}, \"splits\": {}, \"merges\": {}}}",
                if i == 0 { "" } else { "," },
                c.splits,
                c.merges,
            );
        }
        let l = &self.locate_latency;
        let _ = write!(
            out,
            "\n  ],\n  \"locate_latency\": {{\"count\": {}, \"mean_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}\n}}\n",
            l.count, l.mean_ms, l.p50_ms, l.p95_ms, l.p99_ms, l.max_ms,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_gauges_track_peaks() {
        let registry = MetricsRegistry::new();
        registry.update_tracker(1, |t| t.observe_queue_depth(5));
        registry.update_tracker(1, |t| t.observe_queue_depth(2));
        registry.update_tracker(1, |t| {
            t.observe_mailbox(3);
            t.mail_lost += 2;
        });
        let snap = registry.snapshot();
        let (id, t) = &snap.trackers[0];
        assert_eq!(*id, 1);
        assert_eq!(t.queue_depth, 2);
        assert_eq!(t.queue_depth_peak, 5);
        assert_eq!(t.mailbox_occupancy_peak, 3);
        assert_eq!(registry.mail_lost(), 2);
    }

    #[test]
    fn rehashes_are_counted_per_version() {
        let registry = MetricsRegistry::new();
        registry.record_split(1);
        registry.record_split(2);
        registry.record_merge(3);
        registry.record_split(2);
        let snap = registry.snapshot();
        assert_eq!(
            snap.rehashes,
            vec![
                (
                    1,
                    RehashCounts {
                        splits: 1,
                        merges: 0
                    }
                ),
                (
                    2,
                    RehashCounts {
                        splits: 2,
                        merges: 0
                    }
                ),
                (
                    3,
                    RehashCounts {
                        splits: 0,
                        merges: 1
                    }
                ),
            ]
        );
    }

    #[test]
    fn latency_summary_reports_percentiles() {
        let registry = MetricsRegistry::new();
        for ms in 1..=100 {
            registry.record_locate(SimDuration::from_millis(ms));
        }
        let l = registry.snapshot().locate_latency;
        assert_eq!(l.count, 100);
        assert_eq!(l.p50_ms, 50.0);
        assert_eq!(l.p95_ms, 95.0);
        assert_eq!(l.p99_ms, 99.0);
        assert_eq!(l.max_ms, 100.0);
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let registry = MetricsRegistry::new();
        registry.update_tracker(2, |t| t.requests = 10);
        registry.update_tracker(1, |t| {
            t.requests = 4;
            t.rate_per_sec = 1.25;
        });
        registry.record_split(1);
        let a = registry.snapshot();
        let b = registry.snapshot();
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_json(), b.to_json());
        let csv = a.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(RegistrySnapshot::CSV_HEADER));
        assert!(csv.contains("\n1,4,1.250,"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",0,0"));
        assert!(a.to_json().contains("\"giveup_timeout\": 0"));
        assert!(a.to_json().contains("\"giveup_timeout_remote\": 0"));
        assert!(RegistrySnapshot::CSV_HEADER.ends_with("giveup_negative_remote"));
        assert!(csv.contains("\n2,10,"));
        let json = a.to_json();
        assert!(json.contains("\"rate_per_sec\": 1.250"));
        assert!(json.contains("\"version\": 1, \"splits\": 1"));
        assert!(json.contains("\"locate_latency\""));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.to_csv(), format!("{}\n", RegistrySnapshot::CSV_HEADER));
        assert!(snap.to_json().contains("\"trackers\": [\n  ]"));
    }
}
