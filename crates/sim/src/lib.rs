//! # agentrack-sim
//!
//! A deterministic discrete-event simulation kernel: the substrate that
//! stands in for the paper's physical testbed (Aglets 2.0 on a Sun Blade
//! LAN).
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond
//!   resolution;
//! * [`Scheduler`] — a future-event list with FIFO tie-breaking, so runs
//!   are reproducible event by event;
//! * [`SimRng`] / [`DurationDist`] / [`Zipf`] — seeded randomness and the
//!   distributions workloads and network models draw from;
//! * [`Topology`] — a LAN model: full mesh, per-hop latency distributions,
//!   optional loss/duplication for failure-injection tests — plus
//!   [`RegionTopo`], the multi-region WAN generalisation with an
//!   inter-region latency matrix and per-link sever/heal faults;
//! * [`ServiceStation`] — single-server FIFO queues that make tracker
//!   saturation (the paper's headline effect) emerge naturally;
//! * [`Histogram`] / [`WindowedRate`] / [`Counter`] — measurement, plus the
//!   windowed request-rate statistics IAgents use to decide splits and
//!   merges;
//! * [`TraceSink`] / [`TraceEvent`] / [`CorrId`] — structured protocol
//!   tracing: correlation ids threaded through wire messages land in a
//!   bounded ring buffer, off by default and zero-cost when disabled;
//! * [`MetricsRegistry`] — per-tracker gauges and counters, per-version
//!   rehash counts, and locate-latency percentiles, exportable as
//!   JSON/CSV;
//! * [`FaultPlan`] / [`ChaosConfig`] — time-scheduled correlated faults
//!   (partitions, crash/restart, latency spikes, loss bursts,
//!   blackholes) plus a seeded chaos generator and plan shrinker.
//!
//! The mobile-agent platform in `agentrack-platform` builds its runtime on
//! top of these pieces.
//!
//! ## Example: a tiny latency experiment
//!
//! ```
//! use agentrack_sim::{
//!     DurationDist, Histogram, NodeId, Scheduler, SimDuration, SimRng, Topology,
//! };
//!
//! let topo = Topology::lan(4, DurationDist::Constant(SimDuration::from_micros(250)));
//! let mut rng = SimRng::seed_from(7);
//! let mut sched: Scheduler<NodeId> = Scheduler::new();
//! let mut hist = Histogram::new();
//!
//! // Send a message to each node and record the delivery latencies.
//! for dst in topo.nodes() {
//!     let latency = topo.latency(NodeId::new(0), dst, &mut rng);
//!     sched.schedule_after(latency, dst);
//! }
//! let start = sched.now();
//! while let Some((at, _dst)) = sched.pop() {
//!     hist.record(at - start);
//! }
//! assert_eq!(hist.len(), 4);
//! assert_eq!(hist.max(), SimDuration::from_micros(250));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod faults;
mod metrics;
mod net;
mod queue;
mod registry;
mod rng;
mod station;
mod time;
mod trace;

pub use faults::{shrink, ChaosConfig, FaultEvent, FaultKind, FaultPlan};
pub use metrics::{AtomicLogHistogram, Counter, Histogram, LogHistogram, WindowedRate};
pub use net::{arrival, Delivery, NodeId, RegionTopo, Topology};
pub use queue::Scheduler;
pub use registry::{
    LatencySummary, MetricsRegistry, RegistrySnapshot, RehashCounts, TrackerMetrics,
};
pub use rng::{DurationDist, SimRng, Zipf};
pub use station::ServiceStation;
pub use time::{SimDuration, SimTime};
pub use trace::{CorrId, GiveUpCause, TraceEvent, TraceRecord, TraceSink};
