//! Scheduled fault injection: time-ordered fault plans, the randomized
//! chaos generator, and the greedy plan shrinker.
//!
//! The per-link loss/duplication knobs on [`crate::Topology`] inject
//! *memoryless* failures; the mechanism's hard cases are *correlated*
//! ones — a partition that isolates a tracker for seconds, a crash that
//! drops every queued message at once, a restart that comes back with
//! empty soft state. A [`FaultPlan`] schedules exactly those, in virtual
//! time, so a failing run replays identically from its seed.
//!
//! This module is pure data plus deterministic generation; the platform
//! runtime applies the plan (it owns the network and the agent slots).

use serde::{Deserialize, Serialize};

use crate::net::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One kind of scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Severs the network into groups: a message between nodes in
    /// different groups is dropped until `heal_at`. Nodes not listed in
    /// any group straddle the partition and keep talking to everyone.
    Partition {
        /// The isolated node groups (pairwise disjoint).
        groups: Vec<Vec<NodeId>>,
        /// When the partition heals.
        heal_at: SimTime,
    },
    /// Crashes a node: in-flight and queued messages to it are dropped,
    /// its agents stop processing, and its timers die. A crashed node
    /// sends no delivery-failure bounces — senders must recover via
    /// their own timeouts, which is what exercises failover.
    NodeCrash {
        /// The node to crash.
        node: NodeId,
        /// Whether trackers on the node lose their soft state (records,
        /// mailboxes) on restart, or come back with memory intact.
        lose_soft_state: bool,
        /// When to restart the node, if at all within the plan.
        restart_at: Option<SimTime>,
    },
    /// Restarts a crashed node (no-op if the node is up). Agents on it
    /// resume and are told whether their soft state was lost.
    NodeRestart {
        /// The node to restart.
        node: NodeId,
    },
    /// Multiplies remote latency by `factor` until `until`.
    LatencySpike {
        /// Latency multiplier (≥ 1).
        factor: f64,
        /// When the spike ends.
        until: SimTime,
    },
    /// Adds message loss on remote links until `until`.
    LossBurst {
        /// Extra loss probability in `[0, 1]`.
        loss: f64,
        /// When the burst ends.
        until: SimTime,
    },
    /// Drops every message sent from `from` to `to` (one direction)
    /// until `until`.
    Blackhole {
        /// Sending side of the severed direction.
        from: NodeId,
        /// Receiving side of the severed direction.
        to: NodeId,
        /// When the blackhole closes.
        until: SimTime,
    },
    /// Severs the WAN link between two regions (both directions) until
    /// `heal_at`: messages between any node of region `a` and any node
    /// of region `b` are dropped. Requires a region topology
    /// ([`crate::Topology::with_regions`]); the platform rejects the
    /// plan otherwise. Generalises the ad-hoc node-group `Partition`
    /// for the multi-region WAN model.
    RegionSever {
        /// One severed region.
        a: u32,
        /// The other severed region.
        b: u32,
        /// When the inter-region link heals.
        heal_at: SimTime,
    },
}

impl FaultKind {
    /// When this fault's effect ends, if it ends on its own.
    #[must_use]
    pub fn ends_at(&self) -> Option<SimTime> {
        match self {
            FaultKind::Partition { heal_at, .. } => Some(*heal_at),
            FaultKind::NodeCrash { restart_at, .. } => *restart_at,
            FaultKind::NodeRestart { .. } => None,
            FaultKind::LatencySpike { until, .. }
            | FaultKind::LossBurst { until, .. }
            | FaultKind::Blackhole { until, .. } => Some(*until),
            FaultKind::RegionSever { heal_at, .. } => Some(*heal_at),
        }
    }

    /// Short static name, used in trace events and error messages.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Partition { .. } => "partition",
            FaultKind::NodeCrash { .. } => "node-crash",
            FaultKind::NodeRestart { .. } => "node-restart",
            FaultKind::LatencySpike { .. } => "latency-spike",
            FaultKind::LossBurst { .. } => "loss-burst",
            FaultKind::Blackhole { .. } => "blackhole",
            FaultKind::RegionSever { .. } => "region-sever",
        }
    }
}

/// A fault scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered fault schedule.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{FaultEvent, FaultKind, FaultPlan, NodeId, SimDuration, SimTime};
///
/// let mut plan = FaultPlan::new();
/// plan.push(FaultEvent {
///     at: SimTime::from_nanos(2_000_000_000),
///     kind: FaultKind::NodeCrash {
///         node: NodeId::new(3),
///         lose_soft_state: true,
///         restart_at: Some(SimTime::from_nanos(5_000_000_000)),
///     },
/// });
/// assert!(plan.validate(8).is_ok());
/// assert!(plan.fully_heals(SimTime::from_nanos(10_000_000_000)));
/// assert!(plan.loses_soft_state());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Adds a fault, keeping the schedule time-ordered (stable for
    /// equal times: earlier pushes fire first).
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.at);
    }

    /// The scheduled events, in firing order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when any scheduled crash loses tracker soft state.
    #[must_use]
    pub fn loses_soft_state(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::NodeCrash {
                    lose_soft_state: true,
                    ..
                }
            )
        })
    }

    /// `true` when every scheduled fault's effect has ended by
    /// `horizon`: partitions healed, crashed nodes restarted, spikes and
    /// bursts and blackholes expired. Invariant checking only makes
    /// sense after a plan that fully heals.
    #[must_use]
    pub fn fully_heals(&self, horizon: SimTime) -> bool {
        self.events.iter().all(|e| match e.kind.ends_at() {
            Some(end) => end <= horizon,
            // A bare restart has no lingering effect; an unrestarted
            // crash does.
            None => matches!(e.kind, FaultKind::NodeRestart { .. }),
        })
    }

    /// Checks the plan against a topology of `nodes` nodes: every node
    /// id in range, every end time after its start time, partition
    /// groups non-empty and pairwise disjoint, probabilities and factors
    /// in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self, nodes: u32) -> Result<(), String> {
        let check_node = |n: NodeId| -> Result<(), String> {
            if n.raw() >= nodes {
                return Err(format!("{n} outside the {nodes}-node topology"));
            }
            Ok(())
        };
        for (i, e) in self.events.iter().enumerate() {
            if let Some(end) = e.kind.ends_at() {
                if end <= e.at {
                    return Err(format!("event {i} ends at {end} but starts at {}", e.at));
                }
            }
            match &e.kind {
                FaultKind::Partition { groups, .. } => {
                    let mut seen = std::collections::HashSet::new();
                    for group in groups {
                        if group.is_empty() {
                            return Err(format!("event {i}: empty partition group"));
                        }
                        for &n in group {
                            check_node(n)?;
                            if !seen.insert(n) {
                                return Err(format!("event {i}: {n} in two partition groups"));
                            }
                        }
                    }
                }
                FaultKind::NodeCrash { node, .. } | FaultKind::NodeRestart { node } => {
                    check_node(*node)?;
                }
                FaultKind::LatencySpike { factor, .. } => {
                    if !factor.is_finite() || *factor < 1.0 {
                        return Err(format!("event {i}: latency factor {factor} < 1"));
                    }
                }
                FaultKind::LossBurst { loss, .. } => {
                    if !(0.0..=1.0).contains(loss) {
                        return Err(format!("event {i}: loss {loss} outside [0, 1]"));
                    }
                }
                FaultKind::Blackhole { from, to, .. } => {
                    check_node(*from)?;
                    check_node(*to)?;
                    if from == to {
                        return Err(format!("event {i}: blackhole from {from} to itself"));
                    }
                }
                FaultKind::RegionSever { a, b, .. } => {
                    // Region-range checks need the topology's region map;
                    // the platform performs them when installing the plan.
                    if a == b {
                        return Err(format!("event {i}: region {a} severed from itself"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parameters for randomized chaos-plan generation.
///
/// One `(seed, intensity)` pair fully determines the plan, so a failing
/// chaos run reproduces from two numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Generator seed.
    pub seed: u64,
    /// Fault density knob: `0.0` produces an empty plan, `1.0` roughly
    /// six overlapping faults. Values above `1.0` scale further.
    pub intensity: f64,
}

impl ChaosConfig {
    /// Generates a valid fault plan for a `nodes`-node topology whose
    /// faults all start after a quarter of `horizon` (letting the system
    /// bootstrap) and fully heal by 85% of it (leaving time to recover).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `intensity` is negative.
    #[must_use]
    pub fn generate(&self, nodes: u32, horizon: SimDuration) -> FaultPlan {
        assert!(nodes > 0, "chaos needs nodes");
        assert!(
            self.intensity >= 0.0 && self.intensity.is_finite(),
            "intensity must be a non-negative number"
        );
        let mut plan = FaultPlan::new();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let count = (self.intensity * 6.0).round() as usize;
        if count == 0 {
            return plan;
        }
        let mut rng = SimRng::seed_from(self.seed);
        for _ in 0..count {
            let start = SimTime::ZERO + horizon.mul_f64(0.25 + 0.45 * rng.unit());
            let latest = SimTime::ZERO + horizon.mul_f64(0.85);
            let end = start + (latest.saturating_since(start)).mul_f64(0.2 + 0.8 * rng.unit());
            // A zero-length window can arise from rounding; stretch it.
            let end = if end <= start {
                start + SimDuration::from_millis(100)
            } else {
                end
            };
            let roll = rng.unit();
            let kind = if roll < 0.25 && nodes >= 2 {
                // Split the nodes into two non-empty groups.
                let mut left = Vec::new();
                let mut right = Vec::new();
                for n in 0..nodes {
                    if rng.chance(0.5) {
                        left.push(NodeId::new(n));
                    } else {
                        right.push(NodeId::new(n));
                    }
                }
                if left.is_empty() {
                    left.push(right.pop().expect("nodes >= 2"));
                } else if right.is_empty() {
                    right.push(left.pop().expect("nodes >= 2"));
                }
                FaultKind::Partition {
                    groups: vec![left, right],
                    heal_at: end,
                }
            } else if roll < 0.60 {
                FaultKind::NodeCrash {
                    node: NodeId::new(rng.index(nodes as usize) as u32),
                    lose_soft_state: rng.chance(0.5),
                    restart_at: Some(end),
                }
            } else if roll < 0.75 {
                FaultKind::LatencySpike {
                    factor: 2.0 + 6.0 * rng.unit(),
                    until: end,
                }
            } else if roll < 0.90 || nodes < 2 {
                FaultKind::LossBurst {
                    loss: 0.1 + 0.5 * rng.unit(),
                    until: end,
                }
            } else {
                let from = rng.index(nodes as usize) as u32;
                let to = (from + 1 + rng.index(nodes as usize - 1) as u32) % nodes;
                FaultKind::Blackhole {
                    from: NodeId::new(from),
                    to: NodeId::new(to),
                    until: end,
                }
            };
            plan.push(FaultEvent { at: start, kind });
        }
        plan
    }
}

/// Greedily minimizes a failing plan: repeatedly tries dropping one
/// event at a time, keeping any reduction for which `still_fails`
/// returns `true`, until no single removal preserves the failure.
///
/// The result is *1-minimal* (removing any single remaining event makes
/// the failure disappear), which is usually a plan of one or two events
/// — small enough to read.
pub fn shrink(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same index now holds the next event.
            } else {
                i += 1;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn push_keeps_time_order() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: secs(5),
            kind: FaultKind::LossBurst {
                loss: 0.3,
                until: secs(6),
            },
        });
        plan.push(FaultEvent {
            at: secs(2),
            kind: FaultKind::NodeRestart {
                node: NodeId::new(1),
            },
        });
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, secs(2));
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let bad_node = FaultPlan {
            events: vec![FaultEvent {
                at: secs(1),
                kind: FaultKind::NodeCrash {
                    node: NodeId::new(9),
                    lose_soft_state: false,
                    restart_at: Some(secs(2)),
                },
            }],
        };
        assert!(bad_node.validate(4).is_err());

        let ends_before_start = FaultPlan {
            events: vec![FaultEvent {
                at: secs(3),
                kind: FaultKind::LatencySpike {
                    factor: 2.0,
                    until: secs(3),
                },
            }],
        };
        assert!(ends_before_start.validate(4).is_err());

        let overlapping_groups = FaultPlan {
            events: vec![FaultEvent {
                at: secs(1),
                kind: FaultKind::Partition {
                    groups: vec![vec![NodeId::new(0)], vec![NodeId::new(0)]],
                    heal_at: secs(2),
                },
            }],
        };
        assert!(overlapping_groups.validate(4).is_err());

        let self_blackhole = FaultPlan {
            events: vec![FaultEvent {
                at: secs(1),
                kind: FaultKind::Blackhole {
                    from: NodeId::new(2),
                    to: NodeId::new(2),
                    until: secs(2),
                },
            }],
        };
        assert!(self_blackhole.validate(4).is_err());
    }

    #[test]
    fn region_sever_validates_and_heals() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: secs(2),
            kind: FaultKind::RegionSever {
                a: 0,
                b: 1,
                heal_at: secs(5),
            },
        });
        assert!(plan.validate(8).is_ok());
        assert!(plan.fully_heals(secs(5)));
        assert!(!plan.fully_heals(secs(4)));
        assert_eq!(plan.events()[0].kind.name(), "region-sever");

        let self_sever = FaultPlan {
            events: vec![FaultEvent {
                at: secs(1),
                kind: FaultKind::RegionSever {
                    a: 2,
                    b: 2,
                    heal_at: secs(3),
                },
            }],
        };
        assert!(self_sever.validate(8).is_err());
    }

    #[test]
    fn fully_heals_requires_every_effect_to_end() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: secs(1),
            kind: FaultKind::NodeCrash {
                node: NodeId::new(0),
                lose_soft_state: false,
                restart_at: Some(secs(4)),
            },
        });
        assert!(plan.fully_heals(secs(4)));
        assert!(!plan.fully_heals(secs(3)));

        let mut unrestarted = FaultPlan::new();
        unrestarted.push(FaultEvent {
            at: secs(1),
            kind: FaultKind::NodeCrash {
                node: NodeId::new(0),
                lose_soft_state: false,
                restart_at: None,
            },
        });
        assert!(!unrestarted.fully_heals(secs(100)));
    }

    #[test]
    fn generator_produces_valid_healing_plans() {
        for seed in 0..200u64 {
            for &intensity in &[0.2, 0.5, 1.0, 2.0] {
                let chaos = ChaosConfig { seed, intensity };
                let plan = chaos.generate(8, SimDuration::from_secs(30));
                plan.validate(8).unwrap_or_else(|e| {
                    panic!("seed {seed} intensity {intensity}: invalid plan: {e}")
                });
                assert!(
                    plan.fully_heals(secs(30)),
                    "seed {seed} intensity {intensity}: plan does not heal"
                );
                for e in plan.events() {
                    assert!(e.at >= SimTime::ZERO + SimDuration::from_secs(30).mul_f64(0.25));
                }
            }
        }
    }

    #[test]
    fn generator_is_deterministic_and_intensity_scales() {
        let chaos = ChaosConfig {
            seed: 7,
            intensity: 1.0,
        };
        let a = chaos.generate(8, SimDuration::from_secs(20));
        let b = chaos.generate(8, SimDuration::from_secs(20));
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let none = ChaosConfig {
            seed: 7,
            intensity: 0.0,
        }
        .generate(8, SimDuration::from_secs(20));
        assert!(none.is_empty());
    }

    #[test]
    fn shrink_finds_the_single_culprit() {
        let plan = ChaosConfig {
            seed: 3,
            intensity: 1.5,
        }
        .generate(8, SimDuration::from_secs(30));
        assert!(plan.len() >= 3);
        // Pretend the failure needs exactly the crash events.
        let is_crash = |e: &FaultEvent| matches!(e.kind, FaultKind::NodeCrash { .. });
        let crashes = plan.events().iter().filter(|e| is_crash(e)).count();
        assert!(crashes >= 1, "generated plan has no crash to shrink to");
        let shrunk = shrink(&plan, |p| {
            p.events().iter().filter(|e| is_crash(e)).count() == crashes
        });
        assert_eq!(shrunk.len(), crashes);
        assert!(shrunk.events().iter().all(is_crash));
    }

    #[test]
    fn shrink_keeps_a_plan_that_fails_regardless() {
        let plan = ChaosConfig {
            seed: 4,
            intensity: 1.0,
        }
        .generate(8, SimDuration::from_secs(30));
        // A predicate that always fails shrinks to the empty plan.
        let shrunk = shrink(&plan, |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = ChaosConfig {
            seed: 11,
            intensity: 1.0,
        }
        .generate(8, SimDuration::from_secs(30));
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
