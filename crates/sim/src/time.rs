//! Virtual time: instants and durations on the simulation clock.
//!
//! The paper's evaluation measures *location time* in milliseconds on a real
//! LAN. Our experiments run on a deterministic virtual clock instead, with
//! nanosecond resolution — fine enough that queueing at microsecond-scale
//! service times is modelled faithfully, wide enough (u64 nanoseconds ≈ 584
//! years) that no experiment can overflow it.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, measured in nanoseconds since the
/// simulation started.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Millis since the epoch, as a float (for reporting).
    #[must_use]
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration since an earlier instant, saturating at zero if `earlier`
    /// is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", SimDuration(self.0))
    }
}

/// A span of virtual time.
///
/// # Examples
///
/// ```
/// use agentrack_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[must_use]
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds, as a float.
    #[must_use]
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` for the zero duration.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, rounding to nanoseconds and saturating
    /// at zero for negative results.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor).max(0.0).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n == 0 {
            f.write_str("0ns")
        } else if n.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", n / 1_000_000_000)
        } else if n.is_multiple_of(1_000_000) {
            write!(f, "{}ms", n / 1_000_000)
        } else if n.is_multiple_of(1_000) {
            write!(f, "{}us", n / 1_000)
        } else {
            write!(f, "{n}ns")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(1).as_millis_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(10));
        let mut t2 = t;
        t2 += SimDuration::from_millis(5);
        assert_eq!(t2.saturating_since(t), SimDuration::from_millis(5));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
        assert_eq!(t.max(t2), t2);

        let d = SimDuration::from_millis(4);
        assert_eq!(d * 2, SimDuration::from_millis(8));
        assert_eq!(d / 2, SimDuration::from_millis(2));
        assert_eq!(d + d - d, d);
        let mut d2 = d;
        d2 += d;
        d2 -= SimDuration::from_millis(2);
        assert_eq!(d2, SimDuration::from_millis(6));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(10));
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_the_natural_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1500ms");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_millis(3)).to_string(),
            "t+3ms"
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
