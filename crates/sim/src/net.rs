//! The network model: nodes, link latencies, and failure injection.
//!
//! The paper ran on "a LAN network using Sun Blade running Solaris 2.8".
//! We model that as a full mesh of nodes with a configurable latency
//! distribution per remote hop, a near-zero latency for node-local
//! delivery, and optional message loss/duplication knobs used by the
//! failure-injection tests.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::{DurationDist, SimRng};
use crate::time::{SimDuration, SimTime};

/// Identifier of a network node (an agent server in the platform).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u32 {
        self.0
    }

    /// Index form, for direct table addressing.
    #[must_use]
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// What happened to a message offered to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver once, arriving after the given latency.
    Deliver(SimDuration),
    /// Deliver twice (duplicated in flight).
    Duplicate(SimDuration, SimDuration),
    /// Lost in flight; never arrives.
    Lost,
}

/// A partition of the node range into WAN regions, with an inter-region
/// one-way latency matrix.
///
/// Nodes in the same region talk at the owning [`Topology`]'s remote
/// (LAN) latency; nodes in different regions pay the matrix entry for
/// their region pair instead. The matrix is row-major `regions ×
/// regions`; diagonal entries are never sampled.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{DurationDist, RegionTopo, SimDuration};
///
/// let wan = DurationDist::Constant(SimDuration::from_millis(40));
/// let topo = RegionTopo::contiguous(16, 2, wan);
/// assert_eq!(topo.region_count(), 2);
/// assert_eq!(topo.region_of_index(0), 0);
/// assert_eq!(topo.region_of_index(15), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionTopo {
    /// `region_of[node.index()]` is the node's region id.
    region_of: Vec<u32>,
    /// Number of regions.
    regions: u32,
    /// Row-major `regions × regions` inter-region latency matrix.
    inter_latency: Vec<DurationDist>,
}

impl RegionTopo {
    /// Builds a region map from an explicit node→region assignment and a
    /// full inter-region latency matrix (row-major, `regions²` entries).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is empty, region ids are not dense in
    /// `0..regions`, or the matrix has the wrong shape.
    #[must_use]
    pub fn new(region_of: Vec<u32>, regions: u32, inter_latency: Vec<DurationDist>) -> Self {
        assert!(!region_of.is_empty(), "region map needs nodes");
        assert!(regions > 0, "region map needs regions");
        assert!(
            region_of.iter().all(|&r| r < regions),
            "region id out of range"
        );
        assert!(
            (0..regions).all(|r| region_of.contains(&r)),
            "region ids must be dense: every region needs at least one node"
        );
        assert_eq!(
            inter_latency.len(),
            (regions as usize) * (regions as usize),
            "inter-region latency matrix must be regions x regions"
        );
        RegionTopo {
            region_of,
            regions,
            inter_latency,
        }
    }

    /// Splits `node_count` nodes into `regions` contiguous near-equal
    /// slices with one uniform inter-region latency — the common
    /// symmetric-WAN shape (and the shape the old ad-hoc
    /// `regional_partition` fault plan assumed).
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero or exceeds `node_count`.
    #[must_use]
    pub fn contiguous(node_count: u32, regions: u32, inter_latency: DurationDist) -> Self {
        assert!(regions > 0, "region map needs regions");
        assert!(regions <= node_count, "more regions than nodes");
        let region_of = (0..node_count)
            .map(|n| (u64::from(n) * u64::from(regions) / u64::from(node_count)) as u32)
            .collect();
        let matrix = vec![inter_latency; (regions as usize) * (regions as usize)];
        RegionTopo::new(region_of, regions, matrix)
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> u32 {
        self.regions
    }

    /// Number of nodes the map covers.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.region_of.len() as u32
    }

    /// The region of a node, by raw index.
    ///
    /// # Panics
    ///
    /// Panics if the index is outside the map.
    #[must_use]
    pub fn region_of_index(&self, node: usize) -> u32 {
        self.region_of[node]
    }

    /// The nodes of one region, in id order.
    #[must_use]
    pub fn members(&self, region: u32) -> Vec<NodeId> {
        self.region_of
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == region)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }

    /// Samples the inter-region latency for a region pair.
    ///
    /// # Panics
    ///
    /// Panics if either region id is out of range or `a == b` (same-region
    /// traffic uses the topology's LAN latency, not the matrix).
    #[must_use]
    pub fn inter_latency(&self, a: u32, b: u32, rng: &mut SimRng) -> SimDuration {
        assert!(a < self.regions && b < self.regions, "unknown region");
        assert_ne!(a, b, "intra-region latency is the LAN latency");
        rng.sample(&self.inter_latency[(a as usize) * (self.regions as usize) + b as usize])
    }
}

/// A LAN topology: `n` nodes, full mesh, configurable latency and failure
/// injection. Attach a [`RegionTopo`] with [`Topology::with_regions`] (or
/// build one via [`Topology::regional`]) to generalise the mesh into a
/// multi-region WAN: same-region hops keep the LAN latency, cross-region
/// hops pay the region pair's matrix entry.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{DurationDist, SimDuration, NodeId, SimRng, Topology};
///
/// let topo = Topology::lan(4, DurationDist::Constant(SimDuration::from_micros(500)));
/// let mut rng = SimRng::seed_from(1);
/// let latency = topo.latency(NodeId::new(0), NodeId::new(3), &mut rng);
/// assert_eq!(latency, SimDuration::from_micros(500));
/// assert!(topo.latency(NodeId::new(2), NodeId::new(2), &mut rng) < latency);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    node_count: u32,
    /// One-way latency between distinct nodes.
    remote_latency: DurationDist,
    /// Latency for messages that never leave the node (loopback / in-VM).
    local_latency: DurationDist,
    /// Probability a remote message is lost.
    loss_probability: f64,
    /// Probability a remote message is duplicated.
    duplicate_probability: f64,
    /// Optional WAN region structure; `None` models the paper's single
    /// healthy LAN.
    regions: Option<RegionTopo>,
}

impl Topology {
    /// A healthy LAN: given remote latency, 10 µs local latency, no loss.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn lan(node_count: u32, remote_latency: DurationDist) -> Self {
        assert!(node_count > 0, "topology needs at least one node");
        Topology {
            node_count,
            remote_latency,
            local_latency: DurationDist::Constant(SimDuration::from_micros(10)),
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            regions: None,
        }
    }

    /// A symmetric multi-region WAN: `regions` contiguous slices of the
    /// node range, LAN latency within a region, one uniform `wan_latency`
    /// between regions.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`, `regions == 0`, or
    /// `regions > node_count`.
    #[must_use]
    pub fn regional(
        node_count: u32,
        lan_latency: DurationDist,
        regions: u32,
        wan_latency: DurationDist,
    ) -> Self {
        Topology::lan(node_count, lan_latency).with_regions(RegionTopo::contiguous(
            node_count,
            regions,
            wan_latency,
        ))
    }

    /// Attaches a WAN region structure.
    ///
    /// # Panics
    ///
    /// Panics if the region map does not cover exactly this topology's
    /// nodes.
    #[must_use]
    pub fn with_regions(mut self, regions: RegionTopo) -> Self {
        assert_eq!(
            regions.node_count(),
            self.node_count,
            "region map must cover every node exactly once"
        );
        self.regions = Some(regions);
        self
    }

    /// Sets the local-delivery latency.
    #[must_use]
    pub fn with_local_latency(mut self, local: DurationDist) -> Self {
        self.local_latency = local;
        self
    }

    /// Enables message loss with the given probability (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss_probability = p;
        self
    }

    /// Enables message duplication with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_probability = p;
        self
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId::new)
    }

    /// Returns `true` if the node id belongs to this topology.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.node_count
    }

    /// The attached region structure, when this is a multi-region WAN.
    #[must_use]
    pub fn region_topo(&self) -> Option<&RegionTopo> {
        self.regions.as_ref()
    }

    /// Number of regions (1 for a plain LAN).
    #[must_use]
    pub fn region_count(&self) -> u32 {
        self.regions.as_ref().map_or(1, RegionTopo::region_count)
    }

    /// The region a node belongs to (0 for a plain LAN).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the topology.
    #[must_use]
    pub fn region_of(&self, node: NodeId) -> u32 {
        assert!(self.contains(node), "unknown node");
        self.regions
            .as_ref()
            .map_or(0, |r| r.region_of_index(node.index()))
    }

    /// `true` when both nodes share a region (always, for a plain LAN).
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    #[must_use]
    pub fn same_region(&self, a: NodeId, b: NodeId) -> bool {
        self.region_of(a) == self.region_of(b)
    }

    /// Samples the one-way latency from `src` to `dst`: local, LAN
    /// (same region), or WAN (the region pair's matrix entry).
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    #[must_use]
    pub fn latency(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> SimDuration {
        assert!(self.contains(src) && self.contains(dst), "unknown node");
        if src == dst {
            return rng.sample(&self.local_latency);
        }
        if let Some(regions) = &self.regions {
            let (a, b) = (
                regions.region_of_index(src.index()),
                regions.region_of_index(dst.index()),
            );
            if a != b {
                return regions.inter_latency(a, b, rng);
            }
        }
        rng.sample(&self.remote_latency)
    }

    /// Decides the fate of a message from `src` to `dst`: delivered (with
    /// latency), duplicated, or lost. Local messages are never lost or
    /// duplicated.
    #[must_use]
    pub fn transmit(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> Delivery {
        if src != dst {
            if self.loss_probability > 0.0 && rng.chance(self.loss_probability) {
                return Delivery::Lost;
            }
            if self.duplicate_probability > 0.0 && rng.chance(self.duplicate_probability) {
                return Delivery::Duplicate(
                    self.latency(src, dst, rng),
                    self.latency(src, dst, rng),
                );
            }
        }
        Delivery::Deliver(self.latency(src, dst, rng))
    }
}

/// A transmission instant paired with the sampled latency; small helper for
/// callers that want the arrival time directly.
#[must_use]
pub fn arrival(now: SimTime, latency: SimDuration) -> SimTime {
    now + latency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::lan(8, DurationDist::Constant(SimDuration::from_micros(300)))
    }

    #[test]
    fn node_id_basics() {
        let n = NodeId::new(3);
        assert_eq!(n.raw(), 3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "node3");
        assert_eq!(NodeId::from(3u32), n);
    }

    #[test]
    fn local_is_faster_than_remote() {
        let topo = topo();
        let mut rng = SimRng::seed_from(1);
        let local = topo.latency(NodeId::new(0), NodeId::new(0), &mut rng);
        let remote = topo.latency(NodeId::new(0), NodeId::new(1), &mut rng);
        assert!(local < remote);
    }

    #[test]
    fn healthy_lan_always_delivers() {
        let topo = topo();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            match topo.transmit(NodeId::new(0), NodeId::new(5), &mut rng) {
                Delivery::Deliver(lat) => {
                    assert_eq!(lat, SimDuration::from_micros(300));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn loss_injection_drops_roughly_the_configured_fraction() {
        let topo = topo().with_loss(0.2);
        let mut rng = SimRng::seed_from(3);
        let lost = (0..10_000)
            .filter(|_| {
                matches!(
                    topo.transmit(NodeId::new(0), NodeId::new(1), &mut rng),
                    Delivery::Lost
                )
            })
            .count();
        assert!((1700..2300).contains(&lost), "loss skew: {lost}");
    }

    #[test]
    fn duplication_injection_duplicates() {
        let topo = topo().with_duplication(0.5);
        let mut rng = SimRng::seed_from(4);
        let dups = (0..1000)
            .filter(|_| {
                matches!(
                    topo.transmit(NodeId::new(0), NodeId::new(1), &mut rng),
                    Delivery::Duplicate(..)
                )
            })
            .count();
        assert!((400..600).contains(&dups), "dup skew: {dups}");
    }

    #[test]
    fn local_messages_are_never_lost() {
        let topo = topo().with_loss(1.0);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(matches!(
                topo.transmit(NodeId::new(2), NodeId::new(2), &mut rng),
                Delivery::Deliver(_)
            ));
        }
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let topo = topo();
        let nodes: Vec<NodeId> = topo.nodes().collect();
        assert_eq!(nodes.len(), 8);
        assert!(topo.contains(NodeId::new(7)));
        assert!(!topo.contains(NodeId::new(8)));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn latency_checks_bounds() {
        let topo = topo();
        let mut rng = SimRng::seed_from(6);
        let _ = topo.latency(NodeId::new(0), NodeId::new(99), &mut rng);
    }

    #[test]
    fn arrival_helper() {
        assert_eq!(
            arrival(SimTime::from_nanos(10), SimDuration::from_nanos(5)),
            SimTime::from_nanos(15)
        );
    }

    fn regional() -> Topology {
        Topology::regional(
            8,
            DurationDist::Constant(SimDuration::from_micros(300)),
            2,
            DurationDist::Constant(SimDuration::from_millis(40)),
        )
    }

    #[test]
    fn contiguous_regions_partition_the_node_range() {
        let topo = regional();
        assert_eq!(topo.region_count(), 2);
        let r = topo.region_topo().expect("regions attached");
        assert_eq!(r.members(0), (0..4).map(NodeId::new).collect::<Vec<_>>());
        assert_eq!(r.members(1), (4..8).map(NodeId::new).collect::<Vec<_>>());
        assert!(topo.same_region(NodeId::new(0), NodeId::new(3)));
        assert!(!topo.same_region(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn contiguous_regions_handle_uneven_splits() {
        let r = RegionTopo::contiguous(5, 3, DurationDist::Constant(SimDuration::from_millis(10)));
        let sizes: Vec<usize> = (0..3).map(|g| r.members(g).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn cross_region_hops_pay_wan_latency() {
        let topo = regional();
        let mut rng = SimRng::seed_from(7);
        let lan = topo.latency(NodeId::new(0), NodeId::new(1), &mut rng);
        let wan = topo.latency(NodeId::new(0), NodeId::new(7), &mut rng);
        assert_eq!(lan, SimDuration::from_micros(300));
        assert_eq!(wan, SimDuration::from_millis(40));
    }

    #[test]
    fn plain_lan_is_one_region() {
        let topo = topo();
        assert_eq!(topo.region_count(), 1);
        assert_eq!(topo.region_of(NodeId::new(5)), 0);
        assert!(topo.same_region(NodeId::new(0), NodeId::new(7)));
        assert!(topo.region_topo().is_none());
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn region_map_must_match_node_count() {
        let _ =
            Topology::lan(8, DurationDist::Constant(SimDuration::from_micros(300))).with_regions(
                RegionTopo::contiguous(4, 2, DurationDist::Constant(SimDuration::from_millis(1))),
            );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn region_ids_must_be_dense() {
        let _ = RegionTopo::new(
            vec![0, 0, 2, 2],
            3,
            vec![DurationDist::Constant(SimDuration::from_millis(1)); 9],
        );
    }
}
