//! The network model: nodes, link latencies, and failure injection.
//!
//! The paper ran on "a LAN network using Sun Blade running Solaris 2.8".
//! We model that as a full mesh of nodes with a configurable latency
//! distribution per remote hop, a near-zero latency for node-local
//! delivery, and optional message loss/duplication knobs used by the
//! failure-injection tests.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::{DurationDist, SimRng};
use crate::time::{SimDuration, SimTime};

/// Identifier of a network node (an agent server in the platform).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u32 {
        self.0
    }

    /// Index form, for direct table addressing.
    #[must_use]
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// What happened to a message offered to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver once, arriving after the given latency.
    Deliver(SimDuration),
    /// Deliver twice (duplicated in flight).
    Duplicate(SimDuration, SimDuration),
    /// Lost in flight; never arrives.
    Lost,
}

/// A LAN topology: `n` nodes, full mesh, configurable latency and failure
/// injection.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{DurationDist, SimDuration, NodeId, SimRng, Topology};
///
/// let topo = Topology::lan(4, DurationDist::Constant(SimDuration::from_micros(500)));
/// let mut rng = SimRng::seed_from(1);
/// let latency = topo.latency(NodeId::new(0), NodeId::new(3), &mut rng);
/// assert_eq!(latency, SimDuration::from_micros(500));
/// assert!(topo.latency(NodeId::new(2), NodeId::new(2), &mut rng) < latency);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    node_count: u32,
    /// One-way latency between distinct nodes.
    remote_latency: DurationDist,
    /// Latency for messages that never leave the node (loopback / in-VM).
    local_latency: DurationDist,
    /// Probability a remote message is lost.
    loss_probability: f64,
    /// Probability a remote message is duplicated.
    duplicate_probability: f64,
}

impl Topology {
    /// A healthy LAN: given remote latency, 10 µs local latency, no loss.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn lan(node_count: u32, remote_latency: DurationDist) -> Self {
        assert!(node_count > 0, "topology needs at least one node");
        Topology {
            node_count,
            remote_latency,
            local_latency: DurationDist::Constant(SimDuration::from_micros(10)),
            loss_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }

    /// Sets the local-delivery latency.
    #[must_use]
    pub fn with_local_latency(mut self, local: DurationDist) -> Self {
        self.local_latency = local;
        self
    }

    /// Enables message loss with the given probability (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss_probability = p;
        self
    }

    /// Enables message duplication with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_probability = p;
        self
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId::new)
    }

    /// Returns `true` if the node id belongs to this topology.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.node_count
    }

    /// Samples the one-way latency from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    #[must_use]
    pub fn latency(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> SimDuration {
        assert!(self.contains(src) && self.contains(dst), "unknown node");
        if src == dst {
            rng.sample(&self.local_latency)
        } else {
            rng.sample(&self.remote_latency)
        }
    }

    /// Decides the fate of a message from `src` to `dst`: delivered (with
    /// latency), duplicated, or lost. Local messages are never lost or
    /// duplicated.
    #[must_use]
    pub fn transmit(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> Delivery {
        if src != dst {
            if self.loss_probability > 0.0 && rng.chance(self.loss_probability) {
                return Delivery::Lost;
            }
            if self.duplicate_probability > 0.0 && rng.chance(self.duplicate_probability) {
                return Delivery::Duplicate(
                    self.latency(src, dst, rng),
                    self.latency(src, dst, rng),
                );
            }
        }
        Delivery::Deliver(self.latency(src, dst, rng))
    }
}

/// A transmission instant paired with the sampled latency; small helper for
/// callers that want the arrival time directly.
#[must_use]
pub fn arrival(now: SimTime, latency: SimDuration) -> SimTime {
    now + latency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::lan(8, DurationDist::Constant(SimDuration::from_micros(300)))
    }

    #[test]
    fn node_id_basics() {
        let n = NodeId::new(3);
        assert_eq!(n.raw(), 3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "node3");
        assert_eq!(NodeId::from(3u32), n);
    }

    #[test]
    fn local_is_faster_than_remote() {
        let topo = topo();
        let mut rng = SimRng::seed_from(1);
        let local = topo.latency(NodeId::new(0), NodeId::new(0), &mut rng);
        let remote = topo.latency(NodeId::new(0), NodeId::new(1), &mut rng);
        assert!(local < remote);
    }

    #[test]
    fn healthy_lan_always_delivers() {
        let topo = topo();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            match topo.transmit(NodeId::new(0), NodeId::new(5), &mut rng) {
                Delivery::Deliver(lat) => {
                    assert_eq!(lat, SimDuration::from_micros(300));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn loss_injection_drops_roughly_the_configured_fraction() {
        let topo = topo().with_loss(0.2);
        let mut rng = SimRng::seed_from(3);
        let lost = (0..10_000)
            .filter(|_| {
                matches!(
                    topo.transmit(NodeId::new(0), NodeId::new(1), &mut rng),
                    Delivery::Lost
                )
            })
            .count();
        assert!((1700..2300).contains(&lost), "loss skew: {lost}");
    }

    #[test]
    fn duplication_injection_duplicates() {
        let topo = topo().with_duplication(0.5);
        let mut rng = SimRng::seed_from(4);
        let dups = (0..1000)
            .filter(|_| {
                matches!(
                    topo.transmit(NodeId::new(0), NodeId::new(1), &mut rng),
                    Delivery::Duplicate(..)
                )
            })
            .count();
        assert!((400..600).contains(&dups), "dup skew: {dups}");
    }

    #[test]
    fn local_messages_are_never_lost() {
        let topo = topo().with_loss(1.0);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(matches!(
                topo.transmit(NodeId::new(2), NodeId::new(2), &mut rng),
                Delivery::Deliver(_)
            ));
        }
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let topo = topo();
        let nodes: Vec<NodeId> = topo.nodes().collect();
        assert_eq!(nodes.len(), 8);
        assert!(topo.contains(NodeId::new(7)));
        assert!(!topo.contains(NodeId::new(8)));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn latency_checks_bounds() {
        let topo = topo();
        let mut rng = SimRng::seed_from(6);
        let _ = topo.latency(NodeId::new(0), NodeId::new(99), &mut rng);
    }

    #[test]
    fn arrival_helper() {
        assert_eq!(
            arrival(SimTime::from_nanos(10), SimDuration::from_nanos(5)),
            SimTime::from_nanos(15)
        );
    }
}
