//! Structured event tracing: correlation ids, protocol trace events, and
//! a bounded ring-buffer sink.
//!
//! The location mechanism is a distributed protocol; a single locate
//! fans out over many hops (client → LHAgent → IAgent → chase → answer)
//! and a latency outlier is invisible in aggregate statistics. This
//! module gives every locate a [`CorrId`] that rides inside the wire
//! messages, so the full multi-hop path can be reconstructed from the
//! recorded [`TraceRecord`]s after the fact.
//!
//! Tracing is **off by default** and zero-cost when disabled: the sink
//! is an `Option` internally and [`TraceSink::emit`] takes a closure
//! that is never invoked (no event is even constructed) unless a buffer
//! was installed. When enabled, records land in a bounded ring buffer —
//! the newest `capacity` events are kept and a drop counter tracks how
//! many older ones were overwritten.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::net::NodeId;
use crate::time::{SimDuration, SimTime};

/// Correlates every message belonging to one logical operation.
///
/// A locate's correlation id is `(origin, seq)` where `origin` is the
/// raw id of the agent that issued the operation and `seq` is that
/// client's per-operation token — globally unique without coordination,
/// and stable across retries of the same attempt chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CorrId {
    /// Raw id of the agent that originated the operation.
    pub origin: u64,
    /// The originator's operation token.
    pub seq: u64,
}

impl CorrId {
    /// Creates a correlation id.
    #[must_use]
    pub const fn new(origin: u64, seq: u64) -> Self {
        CorrId { origin, seq }
    }
}

impl fmt::Display for CorrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// One structured protocol event.
///
/// Agent ids appear as raw `u64`s: the sim crate sits below the
/// platform's `AgentId` type, and raw ids keep the event type free of
/// upward dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A protocol message left an agent.
    MessageSend {
        /// Wire message kind (static name, e.g. `"Locate"`).
        kind: &'static str,
        /// Correlation id, when the message belongs to an operation.
        corr: Option<CorrId>,
        /// Sending agent (raw id).
        from: u64,
        /// Destination agent (raw id).
        to: u64,
        /// Node the destination is believed to be at.
        node: NodeId,
    },
    /// A protocol message was handled by an agent.
    MessageRecv {
        /// Wire message kind.
        kind: &'static str,
        /// Correlation id, when the message belongs to an operation.
        corr: Option<CorrId>,
        /// Receiving agent (raw id).
        by: u64,
        /// Node the receiver is at.
        node: NodeId,
        /// Time the message spent waiting in the node's service queue
        /// before handling began (zero where queueing is not modelled).
        queued: SimDuration,
    },
    /// A directory split committed: a new tracker took over half of an
    /// overloaded tracker's hash-space leaf.
    RehashSplit {
        /// Hash-function version after the split.
        version: u64,
        /// The tracker that was split.
        from_tracker: u64,
        /// The tracker that took over the new leaf.
        to_tracker: u64,
    },
    /// A directory merge committed: an underloaded tracker's records
    /// folded back into its buddy.
    RehashMerge {
        /// Hash-function version after the merge.
        version: u64,
        /// The tracker that was retired.
        from_tracker: u64,
        /// The tracker that absorbed its records.
        into_tracker: u64,
    },
    /// A guaranteed-delivery message was buffered in a mailbox because
    /// its target is mid-migration.
    MailBuffered {
        /// The tracker holding the mailbox.
        tracker: u64,
        /// The agent the mail is addressed to.
        target: u64,
        /// Mailbox occupancy after buffering.
        occupancy: usize,
    },
    /// Buffered mail was flushed to its target after the target
    /// re-registered.
    MailFlushed {
        /// The tracker holding the mailbox.
        tracker: u64,
        /// The agent the mail was delivered to.
        target: u64,
        /// Number of messages flushed.
        count: usize,
    },
    /// Buffered mail exceeded its TTL and was dropped. Guaranteed
    /// delivery has a deadline; this event is the record of the loss.
    MailExpired {
        /// The tracker holding the mailbox.
        tracker: u64,
        /// Number of messages lost.
        lost: usize,
    },
    /// A client re-issued a locate after a timeout or negative answer.
    RetryAttempt {
        /// Correlation id of the operation being retried.
        corr: Option<CorrId>,
        /// The retrying client.
        client: u64,
        /// The agent being located.
        target: u64,
        /// Attempt number (1 = first retry).
        attempt: u32,
    },
    /// A client exhausted its retry budget and reported failure.
    RetryGiveUp {
        /// Correlation id of the failed operation.
        corr: Option<CorrId>,
        /// The client giving up.
        client: u64,
        /// The agent that could not be located.
        target: u64,
        /// Attempts made before giving up.
        attempts: u32,
        /// What ended the final attempt: a timeout or a negative answer.
        cause: GiveUpCause,
    },
    /// An agent rotated away from an unresponsive hash-function source
    /// to the next replica.
    Failover {
        /// The agent that failed over (raw id).
        by: u64,
        /// The source it rotated away from.
        from_source: u64,
        /// The replica it rotated to.
        to_source: u64,
    },
    /// A scheduled network partition took effect.
    PartitionStarted {
        /// Number of isolated groups.
        groups: usize,
    },
    /// A scheduled network partition healed.
    PartitionHealed,
    /// A node crashed: its agents stopped and queued traffic was
    /// dropped.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Whether the node's agents will lose soft state on restart.
        lost_soft_state: bool,
    },
    /// A crashed node came back up and its agents resumed.
    NodeRestarted {
        /// The restarted node.
        node: NodeId,
    },
    /// A scheduled fault effect (latency spike, loss burst, blackhole)
    /// took effect.
    FaultApplied {
        /// Static fault-kind name.
        kind: &'static str,
    },
    /// A scheduled fault effect expired.
    FaultCleared {
        /// Static fault-kind name.
        kind: &'static str,
    },
    /// A tracker replicated a batch of its location records to its buddy
    /// replica.
    RecordSync {
        /// The replicating tracker (raw id).
        tracker: u64,
        /// The buddy holding the replica.
        buddy: u64,
        /// Number of records in the batch.
        records: usize,
        /// The tracker's epoch the batch is stamped with.
        epoch: u64,
    },
    /// A restarted tracker lost its soft state and entered recovery: it
    /// will pull its buddy's replica and answer in degraded mode until
    /// the record set converges.
    RecoveryStart {
        /// The recovering tracker.
        tracker: u64,
    },
    /// A recovering tracker declared its record set converged (or gave up
    /// waiting) and resumed normal answering.
    RecoveryEnd {
        /// The tracker that finished recovering.
        tracker: u64,
        /// Records recovered from the replica.
        recovered: usize,
        /// Replica records never reconfirmed by a fresh registration
        /// before recovery ended.
        stale_left: usize,
    },
    /// A recovering tracker answered a locate from an unconfirmed
    /// replica record instead of reporting "not found".
    StaleAnswer {
        /// The answering tracker.
        tracker: u64,
        /// The agent whose stale location was returned.
        target: u64,
    },
}

/// Why a client's locate retry budget ran out: the final attempt timed
/// out unanswered, or it drew an explicit negative answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GiveUpCause {
    /// The last attempt got no answer before the retry timer fired.
    Timeout,
    /// The last attempt was answered `NotFound`/`NotResponsible`.
    Negative,
}

impl GiveUpCause {
    /// Static label for trace rendering and CSV columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GiveUpCause::Timeout => "timeout",
            GiveUpCause::Negative => "negative",
        }
    }
}

impl TraceEvent {
    /// The correlation id carried by this event, if any.
    #[must_use]
    pub fn corr(&self) -> Option<CorrId> {
        match self {
            TraceEvent::MessageSend { corr, .. }
            | TraceEvent::MessageRecv { corr, .. }
            | TraceEvent::RetryAttempt { corr, .. }
            | TraceEvent::RetryGiveUp { corr, .. } => *corr,
            _ => None,
        }
    }
}

/// A [`TraceEvent`] stamped with the simulation time it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

#[derive(Debug)]
struct Ring {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

/// A cloneable handle to a bounded trace buffer — or to nothing.
///
/// The default sink is disabled: `emit` is a branch on an `Option` and
/// the event-constructing closure is never called, so instrumented code
/// pays nothing when tracing is off.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{SimTime, TraceEvent, TraceSink};
///
/// let off = TraceSink::disabled();
/// off.emit(SimTime::ZERO, || unreachable!("not evaluated when disabled"));
///
/// let sink = TraceSink::bounded(2);
/// for lost in 1..=3 {
///     sink.emit(SimTime::ZERO, || TraceEvent::MailExpired { tracker: 7, lost });
/// }
/// let records = sink.snapshot();
/// assert_eq!(records.len(), 2); // oldest event overwritten
/// assert_eq!(sink.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<Ring>>>,
}

impl TraceSink {
    /// The disabled sink: records nothing, costs (almost) nothing.
    #[must_use]
    pub const fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A sink backed by a ring buffer keeping the newest `capacity`
    /// records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        TraceSink {
            inner: Some(Arc::new(Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// `true` when events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `f` at time `at`. When the sink is
    /// disabled `f` is not called.
    pub fn emit(&self, at: SimTime, f: impl FnOnce() -> TraceEvent) {
        let Some(ring) = &self.inner else {
            return;
        };
        let mut ring = ring.lock().expect("trace ring poisoned");
        if ring.records.len() == ring.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        let record = TraceRecord { at, event: f() };
        ring.records.push_back(record);
    }

    /// A copy of the buffered records, oldest first. Empty when
    /// disabled.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(ring) => ring
                .lock()
                .expect("trace ring poisoned")
                .records
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// How many records were overwritten because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(ring) => ring.lock().expect("trace ring poisoned").dropped,
            None => 0,
        }
    }

    /// The buffered records that belong to one operation, oldest first.
    ///
    /// This is the hop-by-hop reconstruction primitive: filter the ring
    /// by correlation id and read the path in time order.
    #[must_use]
    pub fn records_for(&self, corr: CorrId) -> Vec<TraceRecord> {
        let mut records = self.snapshot();
        records.retain(|r| r.event.corr() == Some(corr));
        records
    }

    /// Discards all buffered records (the drop counter is kept).
    pub fn clear(&self) {
        if let Some(ring) = &self.inner {
            ring.lock().expect("trace ring poisoned").records.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(corr: CorrId, from: u64, to: u64) -> TraceEvent {
        TraceEvent::MessageSend {
            kind: "Locate",
            corr: Some(corr),
            from,
            to,
            node: NodeId::new(0),
        }
    }

    #[test]
    fn disabled_sink_never_evaluates_the_event() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(SimTime::ZERO, || panic!("must not be constructed"));
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_keeps_the_newest_records() {
        let sink = TraceSink::bounded(3);
        assert!(sink.is_enabled());
        for i in 0..5u64 {
            sink.emit(SimTime::from_nanos(i), || send(CorrId::new(1, i), 1, 2));
        }
        let records = sink.snapshot();
        assert_eq!(records.len(), 3);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(records[0].at, SimTime::from_nanos(2));
        assert_eq!(records[2].at, SimTime::from_nanos(4));
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::bounded(8);
        let clone = sink.clone();
        clone.emit(SimTime::ZERO, || send(CorrId::new(9, 1), 9, 3));
        assert_eq!(sink.snapshot().len(), 1);
        sink.clear();
        assert!(clone.snapshot().is_empty());
    }

    #[test]
    fn records_for_filters_by_correlation_id() {
        let sink = TraceSink::bounded(16);
        let a = CorrId::new(1, 7);
        let b = CorrId::new(2, 7);
        sink.emit(SimTime::from_nanos(1), || send(a, 1, 10));
        sink.emit(SimTime::from_nanos(2), || send(b, 2, 10));
        sink.emit(SimTime::from_nanos(3), || TraceEvent::MessageRecv {
            kind: "Locate",
            corr: Some(a),
            by: 10,
            node: NodeId::new(1),
            queued: SimDuration::ZERO,
        });
        sink.emit(SimTime::from_nanos(4), || TraceEvent::MailExpired {
            tracker: 10,
            lost: 1,
        });
        let path = sink.records_for(a);
        assert_eq!(path.len(), 2);
        assert!(matches!(
            path[0].event,
            TraceEvent::MessageSend { kind: "Locate", .. }
        ));
        assert!(matches!(path[1].event, TraceEvent::MessageRecv { .. }));
        assert_eq!(sink.records_for(CorrId::new(5, 5)).len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TraceSink::bounded(0);
    }

    #[test]
    fn corr_id_displays_compactly() {
        assert_eq!(CorrId::new(3, 12).to_string(), "3#12");
    }
}
