//! Deterministic randomness: seeded RNG and the distributions the
//! workloads and network models draw from.
//!
//! Every stochastic choice in a simulation flows through one [`SimRng`]
//! seeded from the experiment configuration, so a (seed, configuration)
//! pair fully determines the run — the property that makes experiments
//! reproducible and failures replayable.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// The simulation's random number generator: a seeded [`StdRng`] plus the
/// sampling helpers the simulator needs.
///
/// # Examples
///
/// ```
/// use agentrack_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct SimRng(StdRng);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng(StdRng::seed_from_u64(seed))
    }

    /// Derives an independent child generator; used to give each component
    /// (workload, network, …) its own stream so adding draws to one does
    /// not perturb the others.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        SimRng(StdRng::seed_from_u64(self.0.gen()))
    }

    /// Next raw 64-bit value.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    #[must_use]
    pub fn unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.0.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Samples a duration from a distribution.
    #[must_use]
    pub fn sample(&mut self, dist: &DurationDist) -> SimDuration {
        match *dist {
            DurationDist::Constant(d) => d,
            DurationDist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    SimDuration::from_nanos(self.0.gen_range(lo.as_nanos()..=hi.as_nanos()))
                }
            }
            DurationDist::Exponential { mean } => {
                // Inverse CDF; clamp the uniform away from 0 to avoid inf.
                let u = self.unit().max(1e-12);
                mean.mul_f64(-u.ln())
            }
            DurationDist::Normal { mean, std_dev } => {
                // Box–Muller transform; negative samples clamp to zero,
                // matching how a latency can never be negative.
                let u1 = self.unit().max(1e-12);
                let u2 = self.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let nanos = mean.as_nanos() as f64 + std_dev.as_nanos() as f64 * z;
                SimDuration::from_nanos(nanos.max(0.0) as u64)
            }
        }
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SimRng(..)")
    }
}

/// A distribution over durations.
///
/// Workload residence times, network latencies and service times are all
/// configured as values of this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurationDist {
    /// Always the same value. The paper's experiments use constant
    /// residence times ("Each TAgent stays at each node for 0.5 sec").
    Constant(SimDuration),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: SimDuration,
        /// Inclusive upper bound.
        hi: SimDuration,
    },
    /// Exponential with the given mean (memoryless residence / inter-arrival
    /// times).
    Exponential {
        /// Mean of the distribution.
        mean: SimDuration,
    },
    /// Normal, truncated at zero (jittered latencies).
    Normal {
        /// Mean of the distribution.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
    },
}

impl DurationDist {
    /// The distribution's mean (after truncation effects are ignored).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        match *self {
            DurationDist::Constant(d) => d,
            DurationDist::Uniform { lo, hi } => (lo + hi) / 2,
            DurationDist::Exponential { mean } => mean,
            DurationDist::Normal { mean, .. } => mean,
        }
    }
}

/// A Zipf-distributed sampler over `{0, 1, …, n-1}`, with rank-frequency
/// exponent `s` (`s = 0` is uniform; larger `s` is more skewed).
///
/// Used by the extension experiments: the paper's workloads pick query
/// targets uniformly, and the skew sweep shows how the mechanism's
/// load-based splitting copes when popularity is concentrated.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{SimRng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SimRng::seed_from(1);
/// let first = (0..1000).filter(|_| zipf.sample(&mut rng) == 0).count();
/// let last = (0..1000).filter(|_| zipf.sample(&mut rng) == 99).count();
/// assert!(first > last);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[i]` = P(X <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler covers no items (never: `new` forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws an item index; index 0 is the most popular.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..10 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // Draws from the fork do not perturb the parent.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn constant_dist_is_constant() {
        let mut rng = SimRng::seed_from(1);
        let d = DurationDist::Constant(SimDuration::from_millis(5));
        for _ in 0..10 {
            assert_eq!(rng.sample(&d), SimDuration::from_millis(5));
        }
        assert_eq!(d.mean(), SimDuration::from_millis(5));
    }

    #[test]
    fn uniform_dist_stays_in_bounds() {
        let mut rng = SimRng::seed_from(2);
        let lo = SimDuration::from_millis(1);
        let hi = SimDuration::from_millis(3);
        let d = DurationDist::Uniform { lo, hi };
        for _ in 0..1000 {
            let s = rng.sample(&d);
            assert!(s >= lo && s <= hi);
        }
        assert_eq!(d.mean(), SimDuration::from_millis(2));
        // Degenerate range collapses to lo.
        let deg = DurationDist::Uniform { lo: hi, hi: lo };
        assert_eq!(rng.sample(&deg), hi);
    }

    #[test]
    fn exponential_dist_has_the_right_mean() {
        let mut rng = SimRng::seed_from(3);
        let mean = SimDuration::from_millis(10);
        let d = DurationDist::Exponential { mean };
        let n = 20_000;
        let total: SimDuration = (0..n).map(|_| rng.sample(&d)).sum();
        let avg_ms = total.as_millis_f64() / n as f64;
        assert!((9.0..11.0).contains(&avg_ms), "mean drifted: {avg_ms}");
    }

    #[test]
    fn normal_dist_clamps_and_centers() {
        let mut rng = SimRng::seed_from(4);
        let d = DurationDist::Normal {
            mean: SimDuration::from_millis(10),
            std_dev: SimDuration::from_millis(2),
        };
        let n = 20_000;
        let total: SimDuration = (0..n).map(|_| rng.sample(&d)).sum();
        let avg_ms = total.as_millis_f64() / n as f64;
        assert!((9.5..10.5).contains(&avg_ms), "mean drifted: {avg_ms}");
    }

    #[test]
    fn index_and_chance() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
        let heads = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&heads), "chance skew: {heads}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        let mut rng = SimRng::seed_from(6);
        let _ = rng.index(0);
    }

    #[test]
    fn zipf_uniform_when_s_is_zero() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed_from(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "uniform skew: {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = SimRng::seed_from(8);
        let mut counts = vec![0usize; 50];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[49]);
        assert_eq!(zipf.len(), 50);
        assert!(!zipf.is_empty());
    }

    #[test]
    fn zipf_single_item() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = SimRng::seed_from(9);
        for _ in 0..10 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
