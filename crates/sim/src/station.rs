//! Single-server FIFO service stations.
//!
//! The paper's headline result — the centralized tracker's location time
//! growing linearly with load while the hash-based mechanism stays flat —
//! is a *queueing* effect: one agent handling every update and query
//! saturates. A [`ServiceStation`] models exactly that: a single server
//! that processes work items one at a time in arrival order, each item
//! occupying the server for its service time. Admission returns the item's
//! completion time; the gap between arrival and completion is the queueing
//! delay plus the service time.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO queue with deterministic admission bookkeeping.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{ServiceStation, SimDuration, SimTime};
///
/// let mut station = ServiceStation::new();
/// let t0 = SimTime::ZERO;
/// let svc = SimDuration::from_millis(2);
/// // Two items arriving together: the second waits for the first.
/// assert_eq!(station.admit(t0, svc), t0 + svc);
/// assert_eq!(station.admit(t0, svc), t0 + svc * 2);
/// // After the backlog drains, service is immediate again.
/// let later = t0 + SimDuration::from_secs(1);
/// assert_eq!(station.admit(later, svc), later + svc);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStation {
    /// The instant the server becomes free.
    busy_until: SimTime,
    /// Items admitted so far.
    admitted: u64,
    /// Total time items spent being served.
    busy_time: SimDuration,
    /// Total time items spent waiting before service.
    waiting_time: SimDuration,
}

impl ServiceStation {
    /// Creates an idle station.
    #[must_use]
    pub fn new() -> Self {
        ServiceStation {
            busy_until: SimTime::ZERO,
            admitted: 0,
            busy_time: SimDuration::ZERO,
            waiting_time: SimDuration::ZERO,
        }
    }

    /// Admits a work item arriving at `now` with the given service time and
    /// returns its completion instant.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        self.admitted += 1;
        self.busy_time += service;
        self.waiting_time += start.saturating_since(now);
        done
    }

    /// The instant the server becomes free.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay an item arriving at `now` would currently face.
    #[must_use]
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Number of items admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Fraction of `[0, now]` the server spent busy.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            (self.busy_time.as_secs_f64() / now.as_secs_f64()).min(1.0)
        }
    }

    /// Mean waiting time per admitted item.
    #[must_use]
    pub fn mean_wait(&self) -> SimDuration {
        if self.admitted == 0 {
            SimDuration::ZERO
        } else {
            self.waiting_time / self.admitted
        }
    }
}

impl Default for ServiceStation {
    fn default() -> Self {
        ServiceStation::new()
    }
}

impl fmt::Display for ServiceStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "station(admitted={}, mean_wait={})",
            self.admitted,
            self.mean_wait()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_station_serves_immediately() {
        let mut st = ServiceStation::new();
        let t = SimTime::from_nanos(100);
        let done = st.admit(t, SimDuration::from_nanos(50));
        assert_eq!(done, SimTime::from_nanos(150));
        assert_eq!(st.mean_wait(), SimDuration::ZERO);
        assert_eq!(st.admitted(), 1);
    }

    #[test]
    fn backlog_accumulates_and_drains() {
        let mut st = ServiceStation::new();
        let t = SimTime::ZERO;
        let svc = SimDuration::from_millis(1);
        for i in 1..=5u64 {
            let done = st.admit(t, svc);
            assert_eq!(done, t + svc * i);
        }
        assert_eq!(st.backlog(t), svc * 5);
        // Wait until the queue drains.
        let later = t + svc * 10;
        assert_eq!(st.backlog(later), SimDuration::ZERO);
        let done = st.admit(later, svc);
        assert_eq!(done, later + svc);
    }

    #[test]
    fn waiting_time_counts_only_queued_items() {
        let mut st = ServiceStation::new();
        let svc = SimDuration::from_millis(2);
        st.admit(SimTime::ZERO, svc); // no wait
        st.admit(SimTime::ZERO, svc); // waits 2ms
        st.admit(SimTime::ZERO, svc); // waits 4ms
        assert_eq!(st.mean_wait(), SimDuration::from_millis(2));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut st = ServiceStation::new();
        st.admit(SimTime::ZERO, SimDuration::from_millis(250));
        let now = SimTime::ZERO + SimDuration::from_millis(1000);
        assert!((st.utilization(now) - 0.25).abs() < 1e-9);
        assert_eq!(st.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn overload_grows_the_queue_linearly() {
        // Arrivals every 1ms, service 2ms: the k-th item waits ~k ms.
        let mut st = ServiceStation::new();
        let svc = SimDuration::from_millis(2);
        let mut last_delay = SimDuration::ZERO;
        for k in 0..100u64 {
            let arrive = SimTime::ZERO + SimDuration::from_millis(k);
            let done = st.admit(arrive, svc);
            let delay = done - arrive;
            assert!(delay >= last_delay, "delay must grow under overload");
            last_delay = delay;
        }
        assert!(last_delay >= SimDuration::from_millis(100));
    }
}
