//! Measurement primitives: counters, duration histograms, and windowed
//! rate estimators.
//!
//! The rate estimator is load-bearing for the mechanism itself, not just
//! for reporting: each IAgent "maintain[s] running statistics of the
//! requests received" and compares the observed message *rate* against the
//! `T_max` / `T_min` thresholds to decide when to split or merge.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A histogram of durations that keeps every sample, supporting exact
/// means and percentiles.
///
/// Experiments record a few thousand location times, so exact storage is
/// cheap and avoids bucketing artefacts in the reproduced figures.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.mean(), SimDuration::from_micros(2500));
/// assert_eq!(h.percentile(50.0), SimDuration::from_millis(2));
/// assert_eq!(h.max(), SimDuration::from_millis(4));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| u128::from(d.as_nanos())).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    /// The `p`-th percentile (nearest-rank), or zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`.
    #[must_use]
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1)]
    }

    /// Smallest sample, or zero when empty.
    #[must_use]
    pub fn min(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Largest sample, or zero when empty.
    #[must_use]
    pub fn max(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// All samples, in recording order is not guaranteed (percentile
    /// queries may sort in place).
    #[must_use]
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }
}

impl Extend<SimDuration> for Histogram {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        for d in iter {
            self.record(d);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "histogram(n={}, mean={})", self.len(), self.mean())
    }
}

/// A fixed-size histogram over power-of-two nanosecond buckets.
///
/// Where [`Histogram`] keeps every sample (exact, but unbounded), this
/// keeps 48 log₂ buckets — enough to span sub-nanosecond noise up to
/// ~1.6 virtual days — so per-phase latency aggregation over arbitrarily
/// long traces stays O(1) in memory and two histograms merge by adding
/// counts. Durations past the top bucket saturate into it rather than
/// being dropped.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{LogHistogram, SimDuration};
///
/// let mut h = LogHistogram::new();
/// h.record(SimDuration::from_nanos(100));
/// h.record(SimDuration::from_nanos(100));
/// h.record(SimDuration::from_millis(1));
/// assert_eq!(h.len(), 3);
/// // Nearest-rank percentiles resolve to the bucket's upper bound.
/// assert_eq!(h.percentile(50.0), SimDuration::from_nanos(127));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; LogHistogram::BUCKETS],
    total: u64,
    sum: u128,
}

impl LogHistogram {
    /// Number of buckets: bucket 0 holds exact zeros, bucket *i* holds
    /// durations in `[2^(i-1), 2^i)` nanoseconds, and the last bucket
    /// additionally absorbs everything larger (saturation).
    pub const BUCKETS: usize = 48;

    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; Self::BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    fn bucket_of(d: SimDuration) -> usize {
        let n = d.as_nanos();
        if n == 0 {
            return 0;
        }
        ((64 - n.leading_zeros()) as usize).min(Self::BUCKETS - 1)
    }

    /// Upper bound (inclusive) of bucket `i`, the value percentile
    /// queries resolve to.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BUCKETS`.
    #[must_use]
    pub fn bucket_upper(i: usize) -> SimDuration {
        assert!(i < Self::BUCKETS, "bucket index out of range");
        if i == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((1u64 << i) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
        self.sum += u128::from(d.as_nanos());
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Number of samples recorded.
    #[must_use]
    pub const fn len(&self) -> u64 {
        self.total
    }

    /// `true` if no samples have been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean (tracked alongside the buckets), or zero
    /// when empty.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / u128::from(self.total)) as u64)
    }

    /// The `p`-th percentile (nearest-rank over buckets), reported as the
    /// matching bucket's upper bound; zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(Self::BUCKETS - 1)
    }

    /// Per-bucket counts, index 0 first.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<SimDuration> for LogHistogram {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        for d in iter {
            self.record(d);
        }
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log-histogram(n={}, mean={})", self.total, self.mean())
    }
}

/// One stripe of an [`AtomicLogHistogram`]: a full bucket array plus a
/// nanosecond sum, all independently updatable with relaxed atomics.
struct AtomicStripe {
    counts: [AtomicU64; LogHistogram::BUCKETS],
    /// Low word of the stripe's exact sample sum. Wraps freely; each
    /// `fetch_add` that wraps it bumps `sum_hi` by exactly one (the adds
    /// serialise atomically, so the adder that observes the wrap is
    /// unique), making `sum_hi << 64 | sum_lo` exact at quiesce.
    sum_lo: AtomicU64,
    sum_hi: AtomicU64,
}

impl AtomicStripe {
    fn new() -> Self {
        AtomicStripe {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_lo: AtomicU64::new(0),
            sum_hi: AtomicU64::new(0),
        }
    }
}

/// Hands every recording thread a stable stripe token on first use, so
/// threads spread across stripes without hashing a `ThreadId` per call.
fn stripe_token() -> usize {
    static NEXT_TOKEN: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TOKEN: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    TOKEN.with(|t| {
        let mut v = t.get();
        if v == usize::MAX {
            v = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

/// A lock-free, concurrently writable variant of [`LogHistogram`].
///
/// Same power-of-two nanosecond buckets, same saturation at the top
/// bucket — but recording is a single relaxed `fetch_add` into one of a
/// power-of-two set of *stripes*, each thread sticking to the stripe its
/// token selects, so concurrent recorders on different threads never
/// contend on a cache line. [`snapshot`](AtomicLogHistogram::snapshot)
/// folds the stripes into an ordinary [`LogHistogram`], which merges,
/// reports percentiles, and serialises like any other.
///
/// Snapshots taken while writers are active are *per-bucket consistent*
/// (every count read was really recorded, the total is derived from the
/// counts actually read, nothing is double-counted); at quiesce a
/// snapshot is exact and equals the [`LogHistogram`] the same samples
/// would have produced in any recording order.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{AtomicLogHistogram, LogHistogram, SimDuration};
///
/// let h = AtomicLogHistogram::new(4);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for ms in [1u64, 2, 3] {
///                 h.record(SimDuration::from_millis(ms));
///             }
///         });
///     }
/// });
/// let snap = h.snapshot();
/// assert_eq!(snap.len(), 12);
///
/// // The snapshot agrees with a sequential LogHistogram of the samples.
/// let mut seq = LogHistogram::new();
/// for _ in 0..4 {
///     for ms in [1u64, 2, 3] {
///         seq.record(SimDuration::from_millis(ms));
///     }
/// }
/// assert_eq!(snap, seq);
/// ```
pub struct AtomicLogHistogram {
    stripes: Box<[AtomicStripe]>,
    mask: usize,
}

impl AtomicLogHistogram {
    /// Creates an empty histogram with `stripes` stripes (rounded up to
    /// a power of two, minimum 1). One stripe is ~400 bytes; 8 is plenty
    /// for a handful of recording threads, 1 minimises memory when
    /// contention is impossible.
    #[must_use]
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        AtomicLogHistogram {
            stripes: (0..n).map(|_| AtomicStripe::new()).collect(),
            mask: n - 1,
        }
    }

    /// Records one duration sample. Lock-free; callable from any thread.
    pub fn record(&self, d: SimDuration) {
        self.record_value(d.as_nanos());
    }

    /// Records one raw `u64` sample into the same log₂ buckets — for
    /// dimensionless quantities (batch occupancy, queue depths) that
    /// want bounded-memory percentiles without pretending to be time.
    pub fn record_value(&self, v: u64) {
        let stripe = &self.stripes[stripe_token() & self.mask];
        let bucket = LogHistogram::bucket_of(SimDuration::from_nanos(v));
        stripe.counts[bucket].fetch_add(1, Ordering::Relaxed);
        let prev = stripe.sum_lo.fetch_add(v, Ordering::Relaxed);
        if prev.checked_add(v).is_none() {
            stripe.sum_hi.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds every stripe into a plain [`LogHistogram`]. The total is
    /// derived from the bucket counts read, so percentile queries on the
    /// snapshot are always internally consistent, even if writers were
    /// active during the fold.
    #[must_use]
    pub fn snapshot(&self) -> LogHistogram {
        let mut counts = [0u64; LogHistogram::BUCKETS];
        let mut sum = 0u128;
        for stripe in self.stripes.iter() {
            for (mine, theirs) in counts.iter_mut().zip(stripe.counts.iter()) {
                *mine += theirs.load(Ordering::Relaxed);
            }
            let hi = stripe.sum_hi.load(Ordering::Relaxed);
            let lo = stripe.sum_lo.load(Ordering::Relaxed);
            sum = sum.wrapping_add((u128::from(hi) << 64) | u128::from(lo));
        }
        let total = counts.iter().sum();
        LogHistogram { counts, total, sum }
    }

    /// Number of samples recorded so far (a snapshot-level sum).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.stripes
            .iter()
            .flat_map(|s| s.counts.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// `true` if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for AtomicLogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicLogHistogram")
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .finish()
    }
}

/// Sliding-window message-rate estimator: the "running statistics of the
/// requests received" each IAgent maintains (paper §4).
///
/// The window is divided into fixed buckets so memory stays bounded no
/// matter how hot an IAgent gets; the rate is the bucket total divided by
/// the covered span.
///
/// # Examples
///
/// ```
/// use agentrack_sim::{SimDuration, SimTime, WindowedRate};
///
/// let mut rate = WindowedRate::new(SimDuration::from_secs(1), 10);
/// let mut t = SimTime::ZERO;
/// // 100 events over one second → ~100 msg/s.
/// for _ in 0..100 {
///     rate.record(t);
///     t += SimDuration::from_millis(10);
/// }
/// let estimate = rate.rate_per_sec(t);
/// assert!((90.0..=110.0).contains(&estimate), "{estimate}");
/// ```
#[derive(Debug, Clone)]
pub struct WindowedRate {
    bucket_width: SimDuration,
    bucket_count: usize,
    /// (bucket start, events in bucket); oldest first.
    buckets: VecDeque<(SimTime, u64)>,
    total_events: u64,
}

impl WindowedRate {
    /// Creates an estimator over `window`, divided into `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `buckets == 0`.
    #[must_use]
    pub fn new(window: SimDuration, buckets: usize) -> Self {
        assert!(!window.is_zero() && buckets > 0, "degenerate rate window");
        assert!(
            window.as_nanos() >= buckets as u64,
            "window too small for the bucket count (bucket width would be zero)"
        );
        WindowedRate {
            bucket_width: window / buckets as u64,
            bucket_count: buckets,
            buckets: VecDeque::with_capacity(buckets + 1),
            total_events: 0,
        }
    }

    fn bucket_start(&self, at: SimTime) -> SimTime {
        let w = self.bucket_width.as_nanos();
        SimTime::from_nanos(at.as_nanos() / w * w)
    }

    fn evict(&mut self, now: SimTime) {
        let window = self.bucket_width * self.bucket_count as u64;
        while let Some(&(start, _)) = self.buckets.front() {
            // A bucket covers [start, start + width); drop it once it lies
            // entirely before the window [now - window, now].
            if now.saturating_since(start + self.bucket_width) >= window {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records one message at `at`. Timestamps must be non-decreasing;
    /// an out-of-order timestamp is clamped into the newest bucket (the
    /// deque stays sorted, so eviction and rate queries stay correct)
    /// and trips a `debug_assert!`.
    pub fn record(&mut self, at: SimTime) {
        let mut start = self.bucket_start(at);
        if let Some(&(newest, _)) = self.buckets.back() {
            debug_assert!(
                start >= newest,
                "WindowedRate::record called with an out-of-order timestamp \
                 ({at} precedes bucket starting at {newest})"
            );
            start = start.max(newest);
        }
        match self.buckets.back_mut() {
            Some((s, count)) if *s == start => *count += 1,
            _ => self.buckets.push_back((start, 1)),
        }
        self.total_events += 1;
        self.evict(at);
    }

    /// Estimated message rate per second over the window ending at `now`.
    #[must_use]
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        let events: u64 = self.buckets.iter().map(|&(_, c)| c).sum();
        let window = self.bucket_width * self.bucket_count as u64;
        if window.is_zero() {
            return 0.0;
        }
        events as f64 / window.as_secs_f64()
    }

    /// Total events ever recorded.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        h.extend((1..=100).map(SimDuration::from_millis));
        assert_eq!(h.len(), 100);
        assert_eq!(h.mean(), SimDuration::from_micros(50_500));
        assert_eq!(h.percentile(50.0), SimDuration::from_millis(50));
        assert_eq!(h.percentile(99.0), SimDuration::from_millis(99));
        assert_eq!(h.percentile(100.0), SimDuration::from_millis(100));
        assert_eq!(h.min(), SimDuration::from_millis(1));
        assert_eq!(h.max(), SimDuration::from_millis(100));
        assert!(h.to_string().contains("n=100"));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_checks_range() {
        let mut h = Histogram::new();
        let _ = h.percentile(101.0);
    }

    #[test]
    fn empty_histograms_report_zero_everywhere() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.0), SimDuration::ZERO);
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        assert_eq!(h.percentile(100.0), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);

        let l = LogHistogram::new();
        assert!(l.is_empty());
        assert_eq!(l.mean(), SimDuration::ZERO);
        assert_eq!(l.percentile(0.0), SimDuration::ZERO);
        assert_eq!(l.percentile(99.9), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(7));
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), SimDuration::from_millis(7));
        }

        let mut l = LogHistogram::new();
        l.record(SimDuration::from_nanos(1000));
        // 1000 ns lands in bucket 10 ([512, 1024)), upper bound 1023.
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(l.percentile(p), SimDuration::from_nanos(1023));
        }
        assert_eq!(l.mean(), SimDuration::from_nanos(1000));
    }

    #[test]
    fn log_histogram_merge_combines_disjoint_ranges() {
        // One histogram of fast samples, one of slow ones: after the
        // merge the percentile sweep must cross both bucket ranges.
        let mut fast = LogHistogram::new();
        fast.extend((0..10).map(|_| SimDuration::from_nanos(100)));
        let mut slow = LogHistogram::new();
        slow.extend((0..10).map(|_| SimDuration::from_millis(100)));

        let mut merged = fast.clone();
        merged.merge(&slow);
        assert_eq!(merged.len(), 20);
        assert_eq!(merged.percentile(25.0), fast.percentile(50.0));
        assert_eq!(merged.percentile(75.0), slow.percentile(50.0));
        // The exact sum survives the merge.
        let want = (10 * 100 + 10 * 100_000_000) / 20;
        assert_eq!(merged.mean(), SimDuration::from_nanos(want));
    }

    #[test]
    fn log_histogram_saturates_at_the_top_bucket() {
        let mut l = LogHistogram::new();
        // ~11.6 virtual days: far past the top bucket's nominal range.
        let huge = SimDuration::from_secs(1_000_000);
        l.record(huge);
        l.record(SimDuration::from_nanos(u64::MAX));
        let top = LogHistogram::bucket_upper(LogHistogram::BUCKETS - 1);
        assert_eq!(l.percentile(50.0), top);
        assert_eq!(l.percentile(100.0), top);
        assert_eq!(l.counts()[LogHistogram::BUCKETS - 1], 2);
        // Zero goes to bucket 0, never the saturated end.
        l.record(SimDuration::ZERO);
        assert_eq!(l.counts()[0], 1);
        assert_eq!(l.percentile(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn log_percentile_checks_range() {
        let l = LogHistogram::new();
        let _ = l.percentile(-0.5);
    }

    #[test]
    fn atomic_log_histogram_matches_sequential_recording() {
        let atomic = AtomicLogHistogram::new(3); // rounds up to 4 stripes
        let mut seq = LogHistogram::new();
        for n in [0u64, 1, 100, 1_000, 1_000_000, u64::MAX] {
            atomic.record(SimDuration::from_nanos(n));
            seq.record(SimDuration::from_nanos(n));
        }
        assert_eq!(atomic.len(), 6);
        assert!(!atomic.is_empty());
        assert_eq!(atomic.snapshot(), seq);
        assert_eq!(atomic.snapshot().percentile(50.0), seq.percentile(50.0));
    }

    #[test]
    fn atomic_log_histogram_concurrent_recorders_lose_nothing() {
        let h = AtomicLogHistogram::new(8);
        let threads = 4;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = &h;
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record_value(t * per_thread + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.len(), threads * per_thread);
        let mut seq = LogHistogram::new();
        for v in 0..threads * per_thread {
            seq.record(SimDuration::from_nanos(v));
        }
        // Same multiset of samples in a different order and stripe
        // layout: the folded snapshot must be identical.
        assert_eq!(snap, seq);
    }

    #[test]
    fn atomic_log_histogram_empty_snapshot_is_empty() {
        let h = AtomicLogHistogram::new(1);
        assert!(h.is_empty());
        assert_eq!(h.snapshot(), LogHistogram::new());
    }

    #[test]
    fn rate_tracks_steady_stream() {
        let mut r = WindowedRate::new(SimDuration::from_secs(1), 10);
        let mut t = SimTime::ZERO;
        for _ in 0..500 {
            r.record(t);
            t += SimDuration::from_millis(2); // 500 msg/s
        }
        let est = r.rate_per_sec(t);
        assert!((450.0..=550.0).contains(&est), "rate estimate {est}");
        assert_eq!(r.total_events(), 500);
    }

    #[test]
    fn rate_decays_after_the_stream_stops() {
        let mut r = WindowedRate::new(SimDuration::from_secs(1), 10);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            r.record(t);
            t += SimDuration::from_millis(10);
        }
        assert!(r.rate_per_sec(t) > 50.0);
        // Ten seconds of silence: the window has rolled past every event.
        let later = t + SimDuration::from_secs(10);
        assert_eq!(r.rate_per_sec(later), 0.0);
    }

    #[test]
    fn rate_of_a_burst_is_averaged_over_the_window() {
        let mut r = WindowedRate::new(SimDuration::from_secs(1), 10);
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        for _ in 0..300 {
            r.record(t);
        }
        // 300 events in one instant over a 1 s window.
        let est = r.rate_per_sec(t);
        assert!((250.0..=350.0).contains(&est), "burst estimate {est}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_window_panics() {
        let _ = WindowedRate::new(SimDuration::ZERO, 4);
    }

    /// Regression: an out-of-order timestamp used to push a bucket with
    /// an *older* start behind the newest one, breaking the deque's
    /// sorted invariant — eviction would then stop at the misplaced
    /// bucket and the rate estimate counted stale events forever. The
    /// invariant now trips a `debug_assert!`, and in release builds the
    /// sample is clamped into the newest bucket.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out-of-order timestamp")]
    fn out_of_order_record_asserts_in_debug() {
        let mut r = WindowedRate::new(SimDuration::from_secs(1), 10);
        r.record(SimTime::ZERO + SimDuration::from_millis(500));
        r.record(SimTime::ZERO + SimDuration::from_millis(100));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_order_record_is_clamped_in_release() {
        let mut r = WindowedRate::new(SimDuration::from_secs(1), 10);
        r.record(SimTime::ZERO + SimDuration::from_millis(500));
        // 400 ms out of order: lands in the newest bucket, not behind it.
        r.record(SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(r.total_events(), 2);
        // The deque must stay sorted so the window keeps rolling: after
        // ten quiet seconds both events are outside the window.
        let later = SimTime::ZERO + SimDuration::from_secs(11);
        assert_eq!(r.rate_per_sec(later), 0.0);
    }
}
