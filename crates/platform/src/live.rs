//! The live runtime: the same [`Agent`] behaviours on real threads.
//!
//! Where [`SimPlatform`](crate::SimPlatform) executes agents on a virtual
//! clock for deterministic experiments, [`LivePlatform`] runs one OS
//! thread per node, connected by channels: messages really travel between
//! threads, migrations really move the boxed behaviour to another thread,
//! and timers fire on the wall clock. The paper's implementation ran on
//! Aglets over a real LAN; this runtime is the analogous "for real"
//! deployment mode, useful for demos and for validating that behaviours
//! make no hidden assumptions about determinism.
//!
//! Semantics match the simulated runtime:
//!
//! * messages are addressed to `(agent, node)`; if the agent is not there,
//!   the sender's `on_delivery_failed` fires;
//! * timers follow their agent across migrations;
//! * disposal runs `on_dispose` and drops the behaviour.
//!
//! Costs differ: latencies are whatever the machine delivers (no modelled
//! network), and runs are *not* reproducible — use the simulated runtime
//! for experiments.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;

use agentrack_sim::{NodeId, SimDuration, SimRng, SimTime, TraceSink};

use crate::agent::{Action, Agent, AgentCtx};
use crate::id::{AgentId, TimerId};
use crate::payload::Payload;

/// Where the registry believes an agent is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Whereabouts {
    Creating(NodeId),
    Active(NodeId),
    InTransit(NodeId),
}

/// Why a behaviour is being handed to a node thread.
enum WelcomeKind {
    Creation,
    Arrival,
}

enum NodeMsg {
    Deliver {
        to: AgentId,
        from: AgentId,
        payload: Payload,
    },
    /// A delivery failure notice for `notify`.
    Failure {
        notify: AgentId,
        to: AgentId,
        node: NodeId,
        payload: Payload,
    },
    /// A behaviour arriving at this node (creation or migration).
    Welcome {
        id: AgentId,
        behavior: Box<dyn Agent>,
        kind: WelcomeKind,
    },
    /// A timer that fired on another node after its agent moved here.
    TimerHop {
        agent: AgentId,
        timer: TimerId,
    },
    Shutdown,
}

#[derive(Default)]
struct LiveCounters {
    messages_sent: AtomicU64,
    messages_delivered: AtomicU64,
    messages_failed: AtomicU64,
    migrations: AtomicU64,
    agents_created: AtomicU64,
    agents_disposed: AtomicU64,
}

/// Snapshot of live-runtime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Messages submitted by agents.
    pub messages_sent: u64,
    /// Messages whose handler ran.
    pub messages_delivered: u64,
    /// Messages that bounced.
    pub messages_failed: u64,
    /// Migrations performed.
    pub migrations: u64,
    /// Agents created.
    pub agents_created: u64,
    /// Agents disposed.
    pub agents_disposed: u64,
}

struct Shared {
    senders: Vec<Sender<NodeMsg>>,
    registry: RwLock<HashMap<AgentId, Whereabouts>>,
    next_agent_id: AtomicU64,
    counters: LiveCounters,
    start: Instant,
    trace: TraceSink,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn send_to_node(&self, node: NodeId, msg: NodeMsg) {
        // A send can only fail after shutdown, when losing messages is fine.
        let _ = self.senders[node.index()].send(msg);
    }

    /// Routes a delivery failure back to the sender, wherever it now is.
    fn bounce(&self, from: AgentId, to: AgentId, node: NodeId, payload: Payload) {
        self.counters
            .messages_failed
            .fetch_add(1, Ordering::Relaxed);
        let whereabouts = self.registry.read().get(&from).copied();
        if let Some(Whereabouts::Active(sender_node)) = whereabouts {
            self.send_to_node(
                sender_node,
                NodeMsg::Failure {
                    notify: from,
                    to,
                    node,
                    payload,
                },
            );
        }
    }
}

/// A multi-threaded agent platform: one thread per node.
///
/// # Examples
///
/// ```
/// use agentrack_platform::{Agent, AgentCtx, LivePlatform, NodeId, Payload};
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
///
/// struct Greeter(Arc<Mutex<Vec<String>>>);
/// impl Agent for Greeter {
///     fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: agentrack_platform::AgentId, payload: &Payload) {
///         self.0.lock().unwrap().push(payload.decode().unwrap());
///     }
/// }
///
/// let platform = LivePlatform::new(2);
/// let log = Arc::new(Mutex::new(Vec::new()));
/// let greeter = platform.spawn(Box::new(Greeter(log.clone())), NodeId::new(1));
/// platform.post(greeter, Payload::encode(&"hello across threads"));
/// platform.run_for(Duration::from_millis(100));
/// platform.shutdown();
/// assert_eq!(log.lock().unwrap().as_slice(), ["hello across threads"]);
/// ```
pub struct LivePlatform {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    node_count: u32,
}

impl LivePlatform {
    /// Starts `node_count` node threads.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn new(node_count: u32) -> Self {
        Self::with_trace(node_count, TraceSink::disabled())
    }

    /// Starts `node_count` node threads with a structured-event trace
    /// sink visible to every handler through [`AgentCtx::trace`]. The
    /// sink is thread-safe; events from different nodes interleave in
    /// wall-clock arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn with_trace(node_count: u32, trace: TraceSink) -> Self {
        assert!(node_count > 0, "live platform needs at least one node");
        let mut senders = Vec::with_capacity(node_count as usize);
        let mut receivers: Vec<Receiver<NodeMsg>> = Vec::with_capacity(node_count as usize);
        for _ in 0..node_count {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            registry: RwLock::new(HashMap::new()),
            next_agent_id: AtomicU64::new(0),
            counters: LiveCounters::default(),
            start: Instant::now(),
            trace,
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                let node = NodeId::new(i as u32);
                std::thread::Builder::new()
                    .name(format!("agentrack-{node}"))
                    .spawn(move || node_loop(node, rx, shared))
                    .expect("spawn node thread")
            })
            .collect();
        LivePlatform {
            shared,
            handles,
            node_count,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// The id the next externally spawned agent will receive.
    #[must_use]
    pub fn peek_next_agent_id(&self) -> u64 {
        self.shared.next_agent_id.load(Ordering::Relaxed)
    }

    /// Creates an agent at `node`; its `on_create` runs on that node's
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn spawn(&self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        assert!(node.raw() < self.node_count, "spawn at unknown node");
        let id = AgentId::new(self.shared.next_agent_id.fetch_add(1, Ordering::Relaxed));
        self.shared
            .registry
            .write()
            .insert(id, Whereabouts::Creating(node));
        self.shared
            .counters
            .agents_created
            .fetch_add(1, Ordering::Relaxed);
        self.shared.send_to_node(
            node,
            NodeMsg::Welcome {
                id,
                behavior,
                kind: WelcomeKind::Creation,
            },
        );
        id
    }

    /// Injects a message from outside the agent world (no failure notice
    /// comes back). Returns `false` if the target is unknown.
    pub fn post(&self, to: AgentId, payload: Payload) -> bool {
        let whereabouts = self.shared.registry.read().get(&to).copied();
        let node = match whereabouts {
            Some(Whereabouts::Active(n) | Whereabouts::Creating(n) | Whereabouts::InTransit(n)) => {
                n
            }
            None => return false,
        };
        self.shared
            .counters
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        self.shared.send_to_node(
            node,
            NodeMsg::Deliver {
                to,
                from: AgentId::new(u64::MAX),
                payload,
            },
        );
        true
    }

    /// The node an agent currently occupies, if it exists.
    #[must_use]
    pub fn agent_node(&self, id: AgentId) -> Option<NodeId> {
        self.shared.registry.read().get(&id).map(|w| match w {
            Whereabouts::Creating(n) | Whereabouts::Active(n) | Whereabouts::InTransit(n) => *n,
        })
    }

    /// Number of live agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.shared.registry.read().len()
    }

    /// Lets the world run for a wall-clock duration.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Activity counters so far.
    #[must_use]
    pub fn stats(&self) -> LiveStats {
        let c = &self.shared.counters;
        LiveStats {
            messages_sent: c.messages_sent.load(Ordering::Relaxed),
            messages_delivered: c.messages_delivered.load(Ordering::Relaxed),
            messages_failed: c.messages_failed.load(Ordering::Relaxed),
            migrations: c.migrations.load(Ordering::Relaxed),
            agents_created: c.agents_created.load(Ordering::Relaxed),
            agents_disposed: c.agents_disposed.load(Ordering::Relaxed),
        }
    }

    /// Stops all node threads and returns the final statistics.
    pub fn shutdown(mut self) -> LiveStats {
        for sender in &self.shared.senders {
            let _ = sender.send(NodeMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl std::fmt::Debug for LivePlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePlatform")
            .field("nodes", &self.node_count)
            .field("agents", &self.agent_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for LivePlatform {
    fn drop(&mut self) {
        for sender in &self.shared.senders {
            let _ = sender.send(NodeMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A pending wall-clock timer, ordered soonest-first in a max-heap.
struct PendingTimer {
    at: Instant,
    agent: AgentId,
    timer: TimerId,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at) // reversed: earliest first
    }
}

fn node_loop(node: NodeId, rx: Receiver<NodeMsg>, shared: Arc<Shared>) {
    let mut residents: HashMap<AgentId, Box<dyn Agent>> = HashMap::new();
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut rng = SimRng::seed_from(0x11fe ^ u64::from(node.raw()));
    // Node-local id allocation from a per-node range (the shared counter
    // covers external spawns, which stay far below these offsets).
    let mut next_agent_id: u64 = (u64::from(node.raw()) + 1) << 40;
    let mut next_timer_id: u64 = (u64::from(node.raw()) + 1) << 40;

    loop {
        // Fire due timers, then wait for the next message or deadline.
        let now = Instant::now();
        while timers.peek().is_some_and(|t| t.at <= now) {
            let t = timers.pop().expect("peeked");
            if residents.contains_key(&t.agent) {
                invoke(
                    &shared,
                    node,
                    &mut residents,
                    &mut timers,
                    &mut rng,
                    &mut next_agent_id,
                    &mut next_timer_id,
                    t.agent,
                    |a, ctx| a.on_timer(ctx, t.timer),
                );
            } else {
                // The agent moved (or is mid-flight): forward the timer.
                let whereabouts = shared.registry.read().get(&t.agent).copied();
                match whereabouts {
                    Some(Whereabouts::Active(n)) if n != node => shared.send_to_node(
                        n,
                        NodeMsg::TimerHop {
                            agent: t.agent,
                            timer: t.timer,
                        },
                    ),
                    Some(Whereabouts::InTransit(_) | Whereabouts::Creating(_)) => {
                        timers.push(PendingTimer {
                            at: Instant::now() + Duration::from_millis(1),
                            agent: t.agent,
                            timer: t.timer,
                        });
                    }
                    _ => {} // disposed, or stale local state: drop
                }
            }
        }

        let msg = match timers.peek() {
            Some(t) => match rx.recv_deadline(t.at) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            },
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => return,
            },
        };

        match msg {
            NodeMsg::Shutdown => return,
            NodeMsg::Welcome { id, behavior, kind } => {
                residents.insert(id, behavior);
                shared
                    .registry
                    .write()
                    .insert(id, Whereabouts::Active(node));
                invoke(
                    &shared,
                    node,
                    &mut residents,
                    &mut timers,
                    &mut rng,
                    &mut next_agent_id,
                    &mut next_timer_id,
                    id,
                    |a, ctx| match kind {
                        WelcomeKind::Creation => a.on_create(ctx),
                        WelcomeKind::Arrival => a.on_arrival(ctx),
                    },
                );
            }
            NodeMsg::Deliver { to, from, payload } => {
                if residents.contains_key(&to) {
                    shared
                        .counters
                        .messages_delivered
                        .fetch_add(1, Ordering::Relaxed);
                    invoke(
                        &shared,
                        node,
                        &mut residents,
                        &mut timers,
                        &mut rng,
                        &mut next_agent_id,
                        &mut next_timer_id,
                        to,
                        |a, ctx| a.on_message(ctx, from, &payload),
                    );
                } else if from != AgentId::new(u64::MAX) {
                    shared.bounce(from, to, node, payload);
                } else {
                    shared
                        .counters
                        .messages_failed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            NodeMsg::Failure {
                notify,
                to,
                node: failed_node,
                payload,
            } => {
                if residents.contains_key(&notify) {
                    invoke(
                        &shared,
                        node,
                        &mut residents,
                        &mut timers,
                        &mut rng,
                        &mut next_agent_id,
                        &mut next_timer_id,
                        notify,
                        |a, ctx| a.on_delivery_failed(ctx, to, failed_node, &payload),
                    );
                }
            }
            NodeMsg::TimerHop { agent, timer } => {
                timers.push(PendingTimer {
                    at: Instant::now(),
                    agent,
                    timer,
                });
            }
        }
    }
}

/// Runs one handler and applies its requested actions.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site family
fn invoke<F>(
    shared: &Arc<Shared>,
    node: NodeId,
    residents: &mut HashMap<AgentId, Box<dyn Agent>>,
    timers: &mut BinaryHeap<PendingTimer>,
    rng: &mut SimRng,
    next_agent_id: &mut u64,
    next_timer_id: &mut u64,
    id: AgentId,
    f: F,
) where
    F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
{
    let Some(mut behavior) = residents.remove(&id) else {
        return;
    };
    let mut actions = Vec::new();
    {
        let mut ctx = AgentCtx {
            now: shared.now(),
            self_id: id,
            node,
            rng,
            actions: &mut actions,
            next_agent_id,
            next_timer_id,
            trace: &shared.trace,
            queued: SimDuration::ZERO,
        };
        f(behavior.as_mut(), &mut ctx);
    }
    // First-wins structural rule (matches the simulated runtime): after a
    // dispatch the behaviour is gone from this thread, so a later dispose
    // is ignored; after a dispose every later action is ignored.
    let mut keep = Some(behavior);
    let mut departed = false;
    for action in actions {
        match action {
            Action::Send {
                to,
                node: dest,
                payload,
            } => {
                if dest.raw() >= shared.senders.len() as u32 {
                    continue;
                }
                shared
                    .counters
                    .messages_sent
                    .fetch_add(1, Ordering::Relaxed);
                shared.send_to_node(
                    dest,
                    NodeMsg::Deliver {
                        to,
                        from: id,
                        payload,
                    },
                );
            }
            Action::Dispatch { to } => {
                if to.raw() >= shared.senders.len() as u32 || keep.is_none() || departed {
                    continue;
                }
                if to == node {
                    continue; // staying put: nothing to transfer
                }
                let behavior = keep.take().expect("checked");
                departed = true;
                shared
                    .registry
                    .write()
                    .insert(id, Whereabouts::InTransit(to));
                shared.counters.migrations.fetch_add(1, Ordering::Relaxed);
                shared.send_to_node(
                    to,
                    NodeMsg::Welcome {
                        id,
                        behavior,
                        kind: WelcomeKind::Arrival,
                    },
                );
            }
            Action::SetTimer { timer, delay } => {
                timers.push(PendingTimer {
                    at: Instant::now() + Duration::from_nanos(delay.as_nanos()),
                    agent: id,
                    timer,
                });
            }
            Action::Create {
                id: new_id,
                node: dest,
                behavior,
            } => {
                if dest.raw() >= shared.senders.len() as u32 {
                    continue;
                }
                shared
                    .registry
                    .write()
                    .insert(new_id, Whereabouts::Creating(dest));
                shared
                    .counters
                    .agents_created
                    .fetch_add(1, Ordering::Relaxed);
                shared.send_to_node(
                    dest,
                    NodeMsg::Welcome {
                        id: new_id,
                        behavior,
                        kind: WelcomeKind::Creation,
                    },
                );
            }
            Action::Dispose => {
                if departed {
                    continue; // the behaviour already left for another node
                }
                if let Some(mut behavior) = keep.take() {
                    let mut dispose_actions = Vec::new();
                    let mut ctx = AgentCtx {
                        now: shared.now(),
                        self_id: id,
                        node,
                        rng,
                        actions: &mut dispose_actions,
                        next_agent_id,
                        next_timer_id,
                        trace: &shared.trace,
                        queued: SimDuration::ZERO,
                    };
                    behavior.on_dispose(&mut ctx);
                    // Farewell sends only; other actions are meaningless now.
                    for action in dispose_actions {
                        if let Action::Send {
                            to,
                            node: dest,
                            payload,
                        } = action
                        {
                            if dest.raw() < shared.senders.len() as u32 {
                                shared
                                    .counters
                                    .messages_sent
                                    .fetch_add(1, Ordering::Relaxed);
                                shared.send_to_node(
                                    dest,
                                    NodeMsg::Deliver {
                                        to,
                                        from: id,
                                        payload,
                                    },
                                );
                            }
                        }
                    }
                    shared.registry.write().remove(&id);
                    shared
                        .counters
                        .agents_disposed
                        .fetch_add(1, Ordering::Relaxed);
                    // The agent is gone; ignore later actions.
                    return;
                }
            }
        }
    }
    if let Some(behavior) = keep {
        residents.insert(id, behavior);
    }
}
