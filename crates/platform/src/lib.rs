//! # agentrack-platform
//!
//! A from-scratch mobile-agent platform: the substrate the location
//! mechanism runs on, standing in for Aglets 2.0 in the original paper.
//!
//! The programming model mirrors Aglets' event-driven lifecycle:
//!
//! * implement [`Agent`] — `on_create`, `on_arrival`, `on_message`,
//!   `on_timer`, `on_dispose`, plus `on_delivery_failed` for bounced
//!   messages;
//! * every effect (send, migrate, create, dispose, timers) is requested
//!   through the [`AgentCtx`] handed to each callback;
//! * [`SimPlatform`] executes agents deterministically over a simulated
//!   LAN ([`agentrack_sim::Topology`]): messages cost latency plus queueing
//!   at the receiver, migrations cost overhead plus state transfer.
//!
//! Addressing is *location-dependent*: `send` takes the node you believe
//! the agent is at, and a wrong belief bounces the message back. That is
//! the gap the hash-based location mechanism (in `agentrack-core`) fills.
//!
//! ## Example: ping-pong between two nodes
//!
//! ```
//! use agentrack_platform::{Agent, AgentCtx, AgentId, Payload, PlatformConfig, SimPlatform};
//! use agentrack_sim::{DurationDist, NodeId, SimDuration, Topology};
//!
//! struct Ponger;
//! impl Agent for Ponger {
//!     fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, _payload: &Payload) {
//!         // Reply to the pinger, which we know lives on node 0.
//!         ctx.send(from, NodeId::new(0), Payload::encode(&"pong"));
//!     }
//! }
//!
//! struct Pinger {
//!     ponger: Option<AgentId>,
//!     got_pong: bool,
//! }
//! impl Agent for Pinger {
//!     fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
//!         let ponger = ctx.create_agent(Box::new(Ponger), NodeId::new(1));
//!         self.ponger = Some(ponger);
//!         let t = ctx.set_timer(SimDuration::from_millis(10));
//!         let _ = t;
//!     }
//!     fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: agentrack_platform::TimerId) {
//!         ctx.send(self.ponger.unwrap(), NodeId::new(1), Payload::encode(&"ping"));
//!     }
//!     fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
//!         self.got_pong = true;
//!     }
//! }
//!
//! let topo = Topology::lan(2, DurationDist::Constant(SimDuration::from_micros(300)));
//! let mut platform = SimPlatform::new(topo, PlatformConfig::default());
//! platform.spawn(Box::new(Pinger { ponger: None, got_pong: false }), NodeId::new(0));
//! platform.run_until_idle();
//! assert_eq!(platform.stats().messages_delivered, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod agent;
mod config;
mod id;
mod live;
mod payload;
mod runtime;
mod spawner;

pub use agent::{Agent, AgentCtx};
pub use config::{LiveConfig, PlatformConfig};
pub use id::{AgentId, TimerId};
pub use live::{
    LiveHandle, LivePlatform, LiveStats, NodeHealth, OpKind, RouteCache, SlowOp, TelemetrySnapshot,
};
pub use payload::{DecodeError, Payload};
pub use runtime::{AgentState, MsgTrace, MsgTracer, PlatformStats, SimPlatform};
pub use spawner::Spawner;

// Re-export the sim vocabulary platform users need constantly.
pub use agentrack_sim::{
    shrink, ChaosConfig, CorrId, DurationDist, FaultEvent, FaultKind, FaultPlan, NodeId,
    SimDuration, SimTime, Topology, TraceEvent, TraceRecord, TraceSink,
};
