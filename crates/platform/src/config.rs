//! Platform cost-model configuration.

use agentrack_sim::{DurationDist, SimDuration};
use serde::{Deserialize, Serialize};

/// Cost model of the platform: how long things take on the virtual clock.
///
/// Defaults are calibrated to a 2003-era Java mobile-agent platform on a
/// LAN (the paper's Aglets 2.0 / Sun Blade setup): handling a message costs
/// a few hundred microseconds of server time, migrating an agent costs
/// milliseconds.
///
/// # Examples
///
/// ```
/// use agentrack_platform::PlatformConfig;
/// use agentrack_sim::{DurationDist, SimDuration};
///
/// let config = PlatformConfig::default()
///     .with_seed(42)
///     .with_handler_service_time(DurationDist::Constant(SimDuration::from_micros(300)));
/// assert_eq!(config.rng_seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Seed for the platform's deterministic RNG.
    pub rng_seed: u64,
    /// Server time an agent spends handling one incoming message. This is
    /// the service time of the per-agent FIFO station — the knob that makes
    /// a tracker saturate under load.
    pub handler_service_time: DurationDist,
    /// Fixed overhead of instantiating an agent.
    pub creation_overhead: SimDuration,
    /// Fixed overhead of a migration (serialisation, class loading,
    /// re-activation), on top of the network transfer.
    pub migration_overhead: SimDuration,
    /// Bandwidth used to transfer serialised agent state during migration.
    pub bandwidth_bytes_per_sec: u64,
    /// Safety valve for `run_until_idle`: maximum number of events to
    /// process before declaring a runaway simulation.
    pub max_events: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            rng_seed: 0x5eed,
            handler_service_time: DurationDist::Constant(SimDuration::from_micros(400)),
            creation_overhead: SimDuration::from_millis(2),
            migration_overhead: SimDuration::from_millis(3),
            bandwidth_bytes_per_sec: 10_000_000, // ~100 Mbit/s LAN
            max_events: 200_000_000,
        }
    }
}

impl PlatformConfig {
    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the per-message handler service time.
    #[must_use]
    pub fn with_handler_service_time(mut self, dist: DurationDist) -> Self {
        self.handler_service_time = dist;
        self
    }

    /// Sets the fixed migration overhead.
    #[must_use]
    pub fn with_migration_overhead(mut self, overhead: SimDuration) -> Self {
        self.migration_overhead = overhead;
        self
    }

    /// Duration of a state transfer of `bytes` at the configured bandwidth.
    #[must_use]
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

/// Tuning knobs of the live (threaded) runtime's hot paths.
///
/// These control throughput mechanics only — *semantics* (delivery,
/// bounce, migration, timers) are identical at every setting, which is
/// what lets the million-agent bench flip them per arm and attribute the
/// difference to the mechanism rather than the workload.
///
/// # Examples
///
/// ```
/// use agentrack_platform::LiveConfig;
///
/// // The pre-sharding, pre-batching runtime, as a bench ablation arm:
/// let flat = LiveConfig::default().with_shards(1).with_batch_max(1);
/// assert_eq!(flat.effective_shards(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveConfig {
    /// Number of registry shards; rounded up to a power of two. `0`
    /// means auto (currently 1024 — small enough that the generation
    /// array stays cache-resident, large enough that a migration
    /// invalidates ~0.1% of cached routes). `1` reproduces the old
    /// single-`RwLock` registry.
    pub shards: usize,
    /// Maximum `Deliver` messages coalesced into one `DeliverBatch`
    /// channel operation per destination node (default 64). `1` disables
    /// coalescing: every message is its own channel op, as before.
    /// Batches always flush when a sender goes idle, so a lone message
    /// never waits for the cap.
    pub batch_max: usize,
    /// Upper bound on messages a node thread drains per wake-up before
    /// it flushes its own outgoing batches and re-checks timers
    /// (default 256). Bounds both timer latency and batch residency.
    pub drain_budget: usize,
    /// log2 of the per-handle route-cache slot count (default 20, i.e.
    /// 2^20 packed 16-byte `(agent, node, generation)` slots arranged as
    /// 2-way sets — 16 MiB). `0` disables the cache so every lookup
    /// takes the sharded-lock path.
    pub route_cache_bits: u8,
    /// Enables live telemetry (default off): latency histograms, queue
    /// depth and drain accounting, heartbeat stall detection, and the
    /// background snapshot aggregator. Off, every instrumented site
    /// costs one predictable branch. See `DESIGN.md` §16.
    pub telemetry: bool,
    /// Capacity K of the slow-op flight recorder (default 0 = off;
    /// requires `telemetry`). The K slowest deliver/move/timer ops are
    /// kept with enqueue/start/end phase timestamps.
    pub flight_recorder: usize,
    /// Period, in milliseconds, of the background aggregator's
    /// [`TelemetrySnapshot`](crate::TelemetrySnapshot) publications
    /// (default 200).
    pub telemetry_interval_ms: u64,
    /// Heartbeat age, in milliseconds, past which a live node loop is
    /// flagged stalled (default 1000). Instrumented idle loops wake at
    /// half this period to re-stamp, so idle never reads as stalled.
    pub stall_after_ms: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            shards: 0,
            batch_max: 64,
            drain_budget: 256,
            route_cache_bits: 20,
            telemetry: false,
            flight_recorder: 0,
            telemetry_interval_ms: 200,
            stall_after_ms: 1000,
        }
    }
}

impl LiveConfig {
    /// Sets the registry shard count (`0` = auto).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-destination coalescing cap (`1` disables batching).
    #[must_use]
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Sets the per-wake-up drain budget.
    #[must_use]
    pub fn with_drain_budget(mut self, drain_budget: usize) -> Self {
        self.drain_budget = drain_budget.max(1);
        self
    }

    /// Sets the route-cache size as a power of two (`0` disables it).
    #[must_use]
    pub fn with_route_cache_bits(mut self, bits: u8) -> Self {
        self.route_cache_bits = bits.min(30);
        self
    }

    /// Enables or disables live telemetry.
    #[must_use]
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Sets the slow-op flight-recorder capacity (`0` disables it).
    #[must_use]
    pub fn with_flight_recorder(mut self, k: usize) -> Self {
        self.flight_recorder = k;
        self
    }

    /// Sets the aggregator's snapshot publication period.
    #[must_use]
    pub fn with_telemetry_interval_ms(mut self, ms: u64) -> Self {
        self.telemetry_interval_ms = ms.max(1);
        self
    }

    /// Sets the heartbeat-age stall threshold.
    #[must_use]
    pub fn with_stall_after_ms(mut self, ms: u64) -> Self {
        self.stall_after_ms = ms.max(1);
        self
    }

    /// The shard count actually used: `shards` rounded up to a power of
    /// two, with `0` resolved to the 1024-shard default.
    #[must_use]
    pub fn effective_shards(&self) -> usize {
        match self.shards {
            0 => 1024,
            n => n.next_power_of_two(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_config_defaults_and_rounding() {
        let c = LiveConfig::default();
        assert_eq!(c.effective_shards(), 1024);
        assert_eq!(c.batch_max, 64);
        assert_eq!(LiveConfig::default().with_shards(7).effective_shards(), 8);
        assert_eq!(LiveConfig::default().with_shards(1).effective_shards(), 1);
        assert_eq!(LiveConfig::default().with_batch_max(0).batch_max, 1);
        assert!(!c.telemetry, "telemetry is opt-in");
        assert_eq!(c.flight_recorder, 0);
        let t = LiveConfig::default()
            .with_telemetry(true)
            .with_flight_recorder(32)
            .with_telemetry_interval_ms(0)
            .with_stall_after_ms(0);
        assert!(t.telemetry);
        assert_eq!(t.flight_recorder, 32);
        assert_eq!(t.telemetry_interval_ms, 1, "period clamps to >= 1ms");
        assert_eq!(t.stall_after_ms, 1, "threshold clamps to >= 1ms");
    }

    #[test]
    fn builder_setters() {
        let c = PlatformConfig::default()
            .with_seed(9)
            .with_handler_service_time(DurationDist::Constant(SimDuration::from_micros(100)))
            .with_migration_overhead(SimDuration::from_millis(1));
        assert_eq!(c.rng_seed, 9);
        assert_eq!(
            c.handler_service_time,
            DurationDist::Constant(SimDuration::from_micros(100))
        );
        assert_eq!(c.migration_overhead, SimDuration::from_millis(1));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let c = PlatformConfig::default();
        assert_eq!(
            c.transfer_time(c.bandwidth_bytes_per_sec as usize),
            SimDuration::from_secs(1)
        );
        assert_eq!(c.transfer_time(0), SimDuration::ZERO);
        let degenerate = PlatformConfig {
            bandwidth_bytes_per_sec: 0,
            ..PlatformConfig::default()
        };
        assert_eq!(degenerate.transfer_time(100), SimDuration::ZERO);
    }
}
