//! Platform cost-model configuration.

use agentrack_sim::{DurationDist, SimDuration};
use serde::{Deserialize, Serialize};

/// Cost model of the platform: how long things take on the virtual clock.
///
/// Defaults are calibrated to a 2003-era Java mobile-agent platform on a
/// LAN (the paper's Aglets 2.0 / Sun Blade setup): handling a message costs
/// a few hundred microseconds of server time, migrating an agent costs
/// milliseconds.
///
/// # Examples
///
/// ```
/// use agentrack_platform::PlatformConfig;
/// use agentrack_sim::{DurationDist, SimDuration};
///
/// let config = PlatformConfig::default()
///     .with_seed(42)
///     .with_handler_service_time(DurationDist::Constant(SimDuration::from_micros(300)));
/// assert_eq!(config.rng_seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Seed for the platform's deterministic RNG.
    pub rng_seed: u64,
    /// Server time an agent spends handling one incoming message. This is
    /// the service time of the per-agent FIFO station — the knob that makes
    /// a tracker saturate under load.
    pub handler_service_time: DurationDist,
    /// Fixed overhead of instantiating an agent.
    pub creation_overhead: SimDuration,
    /// Fixed overhead of a migration (serialisation, class loading,
    /// re-activation), on top of the network transfer.
    pub migration_overhead: SimDuration,
    /// Bandwidth used to transfer serialised agent state during migration.
    pub bandwidth_bytes_per_sec: u64,
    /// Safety valve for `run_until_idle`: maximum number of events to
    /// process before declaring a runaway simulation.
    pub max_events: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            rng_seed: 0x5eed,
            handler_service_time: DurationDist::Constant(SimDuration::from_micros(400)),
            creation_overhead: SimDuration::from_millis(2),
            migration_overhead: SimDuration::from_millis(3),
            bandwidth_bytes_per_sec: 10_000_000, // ~100 Mbit/s LAN
            max_events: 200_000_000,
        }
    }
}

impl PlatformConfig {
    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the per-message handler service time.
    #[must_use]
    pub fn with_handler_service_time(mut self, dist: DurationDist) -> Self {
        self.handler_service_time = dist;
        self
    }

    /// Sets the fixed migration overhead.
    #[must_use]
    pub fn with_migration_overhead(mut self, overhead: SimDuration) -> Self {
        self.migration_overhead = overhead;
        self
    }

    /// Duration of a state transfer of `bytes` at the configured bandwidth.
    #[must_use]
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters() {
        let c = PlatformConfig::default()
            .with_seed(9)
            .with_handler_service_time(DurationDist::Constant(SimDuration::from_micros(100)))
            .with_migration_overhead(SimDuration::from_millis(1));
        assert_eq!(c.rng_seed, 9);
        assert_eq!(
            c.handler_service_time,
            DurationDist::Constant(SimDuration::from_micros(100))
        );
        assert_eq!(c.migration_overhead, SimDuration::from_millis(1));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let c = PlatformConfig::default();
        assert_eq!(
            c.transfer_time(c.bandwidth_bytes_per_sec as usize),
            SimDuration::from_secs(1)
        );
        assert_eq!(c.transfer_time(0), SimDuration::ZERO);
        let degenerate = PlatformConfig {
            bandwidth_bytes_per_sec: 0,
            ..PlatformConfig::default()
        };
        assert_eq!(degenerate.transfer_time(100), SimDuration::ZERO);
    }
}
