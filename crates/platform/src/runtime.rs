//! The deterministic platform runtime: agents, messaging, migration and
//! timers over the simulated network.
//!
//! Everything observable happens through events on the virtual clock:
//!
//! * a **message** costs a network latency (sampled from the topology) to
//!   reach the addressee's node, then queues at the addressee's single-server
//!   [`ServiceStation`] for its handler service time — so a hot agent
//!   (a central tracker, say) accumulates queueing delay exactly the way the
//!   paper's centralized scheme does;
//! * a **migration** costs the platform's fixed overhead plus a network hop
//!   plus the serialized state transfer;
//! * a message addressed to a node where the agent is *not* (it moved, is
//!   in transit, was disposed, or never existed) bounces back to the sender
//!   as a delivery failure — locating agents before talking to them is the
//!   whole point of the location mechanism.

use std::collections::HashMap;
use std::fmt;

use agentrack_sim::{
    Delivery, NodeId, Scheduler, ServiceStation, SimDuration, SimRng, SimTime, Topology, TraceSink,
};

use crate::agent::{Action, Agent, AgentCtx};
use crate::config::PlatformConfig;
use crate::id::{AgentId, TimerId};
use crate::payload::Payload;

/// Where an agent is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// Created but `on_create` has not yet run.
    Creating,
    /// Resident and processing events at its node.
    Active,
    /// Mid-migration to the given node.
    InTransit {
        /// Destination node.
        to: NodeId,
    },
}

struct AgentSlot {
    behavior: Option<Box<dyn Agent>>,
    node: NodeId,
    state: AgentState,
    station: ServiceStation,
}

/// What arrived at a node for an agent.
#[derive(Debug)]
enum Incoming {
    /// A message from another agent.
    Message { from: AgentId, payload: Payload },
    /// A bounce: a message this agent sent could not be delivered.
    Failure {
        to: AgentId,
        node: NodeId,
        payload: Payload,
    },
}

#[derive(Debug)]
enum Event {
    /// Agent instantiation completed; run `on_create`.
    Created { agent: AgentId },
    /// A transmission reached `node`; queue it at the addressee's station.
    Deliver {
        to: AgentId,
        node: NodeId,
        incoming: Incoming,
    },
    /// The station finished serving the item; run the handler.
    Process {
        to: AgentId,
        node: NodeId,
        incoming: Incoming,
    },
    /// A migration completed; run `on_arrival`.
    Arrive { agent: AgentId },
    /// A timer fired.
    TimerFired { agent: AgentId, timer: TimerId },
}

/// Passive snapshot of platform activity, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformStats {
    /// Messages submitted by agents.
    pub messages_sent: u64,
    /// Messages whose source and destination nodes differ (the rest never
    /// left their node — the locality extension's target metric).
    pub messages_remote: u64,
    /// Messages that reached their addressee's handler.
    pub messages_delivered: u64,
    /// Messages that bounced (addressee absent).
    pub messages_failed: u64,
    /// Messages dropped by network loss injection.
    pub messages_lost: u64,
    /// Messages duplicated by network fault injection.
    pub messages_duplicated: u64,
    /// Failure notices that could not even be bounced (sender gone too).
    pub failures_dropped: u64,
    /// Migrations started.
    pub migrations: u64,
    /// Agents created (including spawns).
    pub agents_created: u64,
    /// Agents disposed.
    pub agents_disposed: u64,
    /// Handler invocations of any kind.
    pub handler_invocations: u64,
    /// Actions ignored because they were invalid in context (for example a
    /// second `dispatch` in one handler).
    pub ignored_actions: u64,
}

/// A message-level trace event, passed to the tracer installed with
/// [`SimPlatform::set_tracer`].
///
/// This is the raw transport view (every payload, delivered or bounced).
/// The *protocol*-level view — structured events with correlation ids —
/// is [`agentrack_sim::TraceSink`], installed with
/// [`SimPlatform::set_trace_sink`].
#[derive(Debug)]
pub struct MsgTrace<'a> {
    /// When it happened.
    pub now: SimTime,
    /// Sending agent.
    pub from: AgentId,
    /// Addressed agent.
    pub to: AgentId,
    /// Node the message was addressed to.
    pub node: NodeId,
    /// The payload.
    pub payload: &'a Payload,
    /// `true` if the handler ran; `false` if the message bounced.
    pub delivered: bool,
}

/// A boxed message tracer, installed with [`SimPlatform::set_tracer`].
pub type MsgTracer = Box<dyn FnMut(MsgTrace<'_>)>;

/// The deterministic mobile-agent platform.
///
/// # Examples
///
/// ```
/// use agentrack_platform::{Agent, AgentCtx, AgentId, Payload, PlatformConfig, SimPlatform};
/// use agentrack_sim::{DurationDist, NodeId, SimDuration, Topology};
///
/// struct Echo;
/// impl Agent for Echo {
///     fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
///         let here = ctx.node();
///         ctx.send(from, here, payload.clone()); // assume sender is local
///     }
/// }
///
/// let topo = Topology::lan(2, DurationDist::Constant(SimDuration::from_micros(200)));
/// let mut platform = SimPlatform::new(topo, PlatformConfig::default());
/// let echo = platform.spawn(Box::new(Echo), NodeId::new(0));
/// platform.run_until_idle();
/// assert!(platform.is_active(echo));
/// ```
pub struct SimPlatform {
    config: PlatformConfig,
    topology: Topology,
    sched: Scheduler<Event>,
    rng: SimRng,
    agents: HashMap<AgentId, AgentSlot>,
    next_agent_id: u64,
    next_timer_id: u64,
    stats: PlatformStats,
    tracer: Option<MsgTracer>,
    trace: TraceSink,
}

impl SimPlatform {
    /// Creates a platform over the given topology.
    #[must_use]
    pub fn new(topology: Topology, config: PlatformConfig) -> Self {
        let rng = SimRng::seed_from(config.rng_seed);
        SimPlatform {
            config,
            topology,
            sched: Scheduler::new(),
            rng,
            agents: HashMap::new(),
            next_agent_id: 0,
            next_timer_id: 0,
            stats: PlatformStats::default(),
            tracer: None,
            trace: TraceSink::disabled(),
        }
    }

    /// Installs a message tracer, called for every delivered or bounced
    /// message. Diagnostic tool; `None` by default.
    pub fn set_tracer(&mut self, tracer: MsgTracer) {
        self.tracer = Some(tracer);
    }

    /// Installs a structured-event trace sink, visible to every agent
    /// handler through [`AgentCtx::trace`]. Disabled by default.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The installed structured-event trace sink (disabled unless
    /// [`SimPlatform::set_trace_sink`] was called).
    #[must_use]
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// The network topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost-model configuration.
    #[must_use]
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Activity counters so far.
    #[must_use]
    pub fn stats(&self) -> PlatformStats {
        self.stats
    }

    /// The node an agent currently occupies (destination node while in
    /// transit), or `None` if it does not exist or was disposed.
    #[must_use]
    pub fn agent_node(&self, id: AgentId) -> Option<NodeId> {
        self.agents.get(&id).map(|slot| match slot.state {
            AgentState::InTransit { to } => to,
            _ => slot.node,
        })
    }

    /// `true` if the agent exists and is active at a node.
    #[must_use]
    pub fn is_active(&self, id: AgentId) -> bool {
        self.agents
            .get(&id)
            .is_some_and(|slot| slot.state == AgentState::Active)
    }

    /// Number of live (not disposed) agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The id the next created agent will receive. Ids are assigned
    /// sequentially, so bootstrap code can name a whole cast of agents
    /// before spawning any of them (and assert the assignment held).
    #[must_use]
    pub fn next_agent_id(&self) -> u64 {
        self.next_agent_id
    }

    /// Creates an agent from outside the simulation (bootstrap); its
    /// `on_create` runs after the platform's creation overhead.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn spawn(&mut self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        self.spawn_after(behavior, node, SimDuration::ZERO)
    }

    /// Like [`SimPlatform::spawn`], but the agent comes to life `delay`
    /// after now (plus the creation overhead). Lets a scenario stagger a
    /// population instead of materialising it in one instant.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn spawn_after(
        &mut self,
        behavior: Box<dyn Agent>,
        node: NodeId,
        delay: SimDuration,
    ) -> AgentId {
        assert!(self.topology.contains(node), "spawn at unknown node");
        let id = AgentId::new(self.next_agent_id);
        self.next_agent_id += 1;
        self.insert_creating(id, node, behavior, delay);
        id
    }

    /// Crashes an agent: removes it instantly, *without* running
    /// `on_dispose` (fault injection — a real crash says no goodbyes).
    /// Returns `true` if the agent existed.
    pub fn kill(&mut self, id: AgentId) -> bool {
        self.agents.remove(&id).is_some()
    }

    /// Processes the next event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((_, event)) => {
                self.handle(event);
                true
            }
            None => false,
        }
    }

    /// Runs every event up to and including time `t`, then advances the
    /// clock to `t` — even when no event fired, so repeated bounded runs
    /// make progress across quiet stretches.
    pub fn run_until(&mut self, t: SimTime) {
        while self.sched.peek_time().is_some_and(|pt| pt <= t) {
            self.step();
        }
        self.sched.advance_to(t);
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain; returns the number processed.
    ///
    /// # Panics
    ///
    /// Panics if more than [`PlatformConfig::max_events`] events fire —
    /// the signature of a livelocked protocol.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut processed = 0u64;
        while self.step() {
            processed += 1;
            assert!(
                processed <= self.config.max_events,
                "simulation exceeded {} events; livelock?",
                self.config.max_events
            );
        }
        processed
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::Created { agent } => {
                if let Some(slot) = self.agents.get_mut(&agent) {
                    slot.state = AgentState::Active;
                    self.invoke(agent, |a, ctx| a.on_create(ctx));
                }
            }
            Event::Deliver { to, node, incoming } => {
                // A message racing the addressee's own creation defers
                // until `on_create` has run (the live runtime's channel
                // FIFO gives the same outcome for free).
                if self
                    .agents
                    .get(&to)
                    .is_some_and(|s| s.state == AgentState::Creating && s.node == node)
                {
                    self.sched.schedule_after(
                        SimDuration::from_millis(1),
                        Event::Deliver { to, node, incoming },
                    );
                    return;
                }
                if self.is_present(to, node) {
                    let service = {
                        let service = self.rng.sample(&self.config.handler_service_time);
                        let slot = self.agents.get_mut(&to).expect("checked present");
                        slot.station.admit(self.sched.now(), service)
                    };
                    let delay = service.saturating_since(self.sched.now());
                    self.sched
                        .schedule_after(delay, Event::Process { to, node, incoming });
                } else {
                    self.bounce(to, node, incoming);
                }
            }
            Event::Process { to, node, incoming } => {
                if self.is_present(to, node) {
                    match incoming {
                        Incoming::Message { from, payload } => {
                            self.stats.messages_delivered += 1;
                            if let Some(tracer) = &mut self.tracer {
                                tracer(MsgTrace {
                                    now: self.sched.now(),
                                    from,
                                    to,
                                    node,
                                    payload: &payload,
                                    delivered: true,
                                });
                            }
                            self.invoke(to, |a, ctx| a.on_message(ctx, from, &payload));
                        }
                        Incoming::Failure {
                            to: f_to,
                            node: f_node,
                            payload,
                        } => {
                            self.invoke(to, |a, ctx| {
                                a.on_delivery_failed(ctx, f_to, f_node, &payload);
                            });
                        }
                    }
                } else {
                    // The agent moved away between queueing and service.
                    self.bounce(to, node, incoming);
                }
            }
            Event::Arrive { agent } => {
                if let Some(slot) = self.agents.get_mut(&agent) {
                    if let AgentState::InTransit { to } = slot.state {
                        slot.node = to;
                        slot.state = AgentState::Active;
                        self.invoke(agent, |a, ctx| a.on_arrival(ctx));
                    }
                }
            }
            Event::TimerFired { agent, timer } => match self.agents.get(&agent) {
                Some(slot) if slot.state == AgentState::Active => {
                    self.invoke(agent, |a, ctx| a.on_timer(ctx, timer));
                }
                Some(_) => {
                    // Creating or in transit: retry shortly after.
                    self.sched.schedule_after(
                        SimDuration::from_millis(1),
                        Event::TimerFired { agent, timer },
                    );
                }
                None => {} // disposed: drop silently
            },
        }
    }

    fn is_present(&self, id: AgentId, node: NodeId) -> bool {
        self.agents
            .get(&id)
            .is_some_and(|slot| slot.state == AgentState::Active && slot.node == node)
    }

    /// Sends a delivery-failure notice back to the originator of a failed
    /// message (failure notices themselves are never bounced).
    fn bounce(&mut self, to: AgentId, node: NodeId, incoming: Incoming) {
        self.stats.messages_failed += 1;
        let Incoming::Message { from, payload } = incoming else {
            self.stats.failures_dropped += 1;
            return;
        };
        if let Some(tracer) = &mut self.tracer {
            tracer(MsgTrace {
                now: self.sched.now(),
                from,
                to,
                node,
                payload: &payload,
                delivered: false,
            });
        }
        // Find the sender wherever it currently is; if it is gone or in
        // transit the notice is dropped (it would bounce forever).
        let Some(sender) = self.agents.get(&from) else {
            self.stats.failures_dropped += 1;
            return;
        };
        if sender.state != AgentState::Active {
            self.stats.failures_dropped += 1;
            return;
        }
        let sender_node = sender.node;
        let latency = self.topology.latency(node, sender_node, &mut self.rng);
        self.sched.schedule_after(
            latency,
            Event::Deliver {
                to: from,
                node: sender_node,
                incoming: Incoming::Failure { to, node, payload },
            },
        );
    }

    /// Runs one handler with a fresh action buffer, then applies the
    /// requested effects.
    fn invoke<F>(&mut self, id: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
    {
        let Some(slot) = self.agents.get_mut(&id) else {
            return;
        };
        let mut behavior = slot.behavior.take().expect("re-entrant handler invocation");
        let node = slot.node;
        let mut actions = Vec::new();
        {
            let mut ctx = AgentCtx {
                now: self.sched.now(),
                self_id: id,
                node,
                rng: &mut self.rng,
                actions: &mut actions,
                next_agent_id: &mut self.next_agent_id,
                next_timer_id: &mut self.next_timer_id,
                trace: &self.trace,
            };
            f(behavior.as_mut(), &mut ctx);
        }
        self.stats.handler_invocations += 1;
        if let Some(slot) = self.agents.get_mut(&id) {
            slot.behavior = Some(behavior);
        }
        self.apply_actions(id, node, actions);
    }

    /// Applies a handler's requested effects in order.
    ///
    /// Structural actions follow a first-wins rule, identical on both
    /// runtimes: once the agent has dispatched, a later `dispose` in the
    /// same handler is ignored (the behaviour already departed); once it
    /// has disposed, every later action is ignored (the agent no longer
    /// exists). `on_dispose` runs exactly once, and only its *sends*
    /// (farewells) take effect — structural requests from a destructor
    /// would otherwise recurse.
    fn apply_actions(&mut self, id: AgentId, origin: NodeId, actions: Vec<Action>) {
        let mut dispatched = false;
        for action in actions {
            match action {
                Action::Send { to, node, payload } => {
                    self.transmit(id, origin, to, node, payload);
                }
                Action::Dispatch { to } => {
                    self.start_migration(id, origin, to);
                    dispatched = true;
                }
                Action::SetTimer { timer, delay } => {
                    self.sched
                        .schedule_after(delay, Event::TimerFired { agent: id, timer });
                }
                Action::Create {
                    id: new_id,
                    node,
                    behavior,
                } => {
                    if self.topology.contains(node) {
                        let hop = if node == origin {
                            SimDuration::ZERO
                        } else {
                            self.topology.latency(origin, node, &mut self.rng)
                        };
                        self.insert_creating(new_id, node, behavior, hop);
                    } else {
                        self.stats.ignored_actions += 1;
                    }
                }
                Action::Dispose => {
                    if dispatched {
                        // The behaviour already left for another node.
                        self.stats.ignored_actions += 1;
                        continue;
                    }
                    let Some(mut slot) = self.agents.remove(&id) else {
                        continue;
                    };
                    if let Some(mut behavior) = slot.behavior.take() {
                        let mut farewell = Vec::new();
                        {
                            let mut ctx = AgentCtx {
                                now: self.sched.now(),
                                self_id: id,
                                node: origin,
                                rng: &mut self.rng,
                                actions: &mut farewell,
                                next_agent_id: &mut self.next_agent_id,
                                next_timer_id: &mut self.next_timer_id,
                                trace: &self.trace,
                            };
                            behavior.on_dispose(&mut ctx);
                        }
                        self.stats.handler_invocations += 1;
                        for action in farewell {
                            if let Action::Send { to, node, payload } = action {
                                self.transmit(id, origin, to, node, payload);
                            } else {
                                self.stats.ignored_actions += 1;
                            }
                        }
                    }
                    self.stats.agents_disposed += 1;
                    // The agent is gone; ignore whatever the handler
                    // requested after disposing.
                    break;
                }
            }
        }
    }

    fn transmit(
        &mut self,
        from: AgentId,
        origin: NodeId,
        to: AgentId,
        node: NodeId,
        payload: Payload,
    ) {
        if !self.topology.contains(node) {
            self.stats.ignored_actions += 1;
            return;
        }
        self.stats.messages_sent += 1;
        if origin != node {
            self.stats.messages_remote += 1;
        }
        match self.topology.transmit(origin, node, &mut self.rng) {
            Delivery::Deliver(latency) => {
                self.sched.schedule_after(
                    latency,
                    Event::Deliver {
                        to,
                        node,
                        incoming: Incoming::Message { from, payload },
                    },
                );
            }
            Delivery::Duplicate(first, second) => {
                self.stats.messages_duplicated += 1;
                for latency in [first, second] {
                    self.sched.schedule_after(
                        latency,
                        Event::Deliver {
                            to,
                            node,
                            incoming: Incoming::Message {
                                from,
                                payload: payload.clone(),
                            },
                        },
                    );
                }
            }
            Delivery::Lost => {
                self.stats.messages_lost += 1;
            }
        }
    }

    fn start_migration(&mut self, id: AgentId, origin: NodeId, to: NodeId) {
        if !self.topology.contains(to) {
            self.stats.ignored_actions += 1;
            return;
        }
        let Some(slot) = self.agents.get(&id) else {
            return;
        };
        if slot.state != AgentState::Active {
            self.stats.ignored_actions += 1;
            return;
        }
        let state_size = slot.behavior.as_ref().map_or(512, |b| b.state_size());
        let network = if to == origin {
            SimDuration::ZERO
        } else {
            self.topology.latency(origin, to, &mut self.rng)
        };
        let total =
            self.config.migration_overhead + network + self.config.transfer_time(state_size);
        if let Some(slot) = self.agents.get_mut(&id) {
            slot.state = AgentState::InTransit { to };
        }
        self.stats.migrations += 1;
        self.sched
            .schedule_after(total, Event::Arrive { agent: id });
    }

    fn insert_creating(
        &mut self,
        id: AgentId,
        node: NodeId,
        behavior: Box<dyn Agent>,
        extra_delay: SimDuration,
    ) {
        self.agents.insert(
            id,
            AgentSlot {
                behavior: Some(behavior),
                node,
                state: AgentState::Creating,
                station: ServiceStation::new(),
            },
        );
        self.stats.agents_created += 1;
        self.sched.schedule_after(
            self.config.creation_overhead + extra_delay,
            Event::Created { agent: id },
        );
    }
}

impl fmt::Debug for SimPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimPlatform")
            .field("now", &self.now())
            .field("agents", &self.agents.len())
            .field("stats", &self.stats)
            .finish()
    }
}
