//! The deterministic platform runtime: agents, messaging, migration and
//! timers over the simulated network.
//!
//! Everything observable happens through events on the virtual clock:
//!
//! * a **message** costs a network latency (sampled from the topology) to
//!   reach the addressee's node, then queues at the addressee's single-server
//!   [`ServiceStation`] for its handler service time — so a hot agent
//!   (a central tracker, say) accumulates queueing delay exactly the way the
//!   paper's centralized scheme does;
//! * a **migration** costs the platform's fixed overhead plus a network hop
//!   plus the serialized state transfer;
//! * a message addressed to a node where the agent is *not* (it moved, is
//!   in transit, was disposed, or never existed) bounces back to the sender
//!   as a delivery failure — locating agents before talking to them is the
//!   whole point of the location mechanism.

use std::collections::HashMap;
use std::fmt;

use agentrack_sim::{
    Delivery, FaultEvent, FaultKind, FaultPlan, NodeId, Scheduler, ServiceStation, SimDuration,
    SimRng, SimTime, Topology, TraceEvent, TraceSink,
};

use crate::agent::{Action, Agent, AgentCtx};
use crate::config::PlatformConfig;
use crate::id::{AgentId, TimerId};
use crate::payload::Payload;

/// Where an agent is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// Created but `on_create` has not yet run.
    Creating,
    /// Resident and processing events at its node.
    Active,
    /// Mid-migration to the given node.
    InTransit {
        /// Destination node.
        to: NodeId,
    },
}

struct AgentSlot {
    behavior: Option<Box<dyn Agent>>,
    node: NodeId,
    state: AgentState,
    station: ServiceStation,
}

/// What arrived at a node for an agent.
#[derive(Debug)]
enum Incoming {
    /// A message from another agent.
    Message { from: AgentId, payload: Payload },
    /// A bounce: a message this agent sent could not be delivered.
    Failure {
        to: AgentId,
        node: NodeId,
        payload: Payload,
    },
}

#[derive(Debug)]
enum Event {
    /// Agent instantiation completed; run `on_create`.
    Created { agent: AgentId },
    /// A transmission reached `node`; queue it at the addressee's station.
    Deliver {
        to: AgentId,
        node: NodeId,
        incoming: Incoming,
    },
    /// The station finished serving the item; run the handler.
    Process {
        to: AgentId,
        node: NodeId,
        incoming: Incoming,
        /// Time the item waited in the station's queue before service —
        /// measured at admission, surfaced to the handler's [`AgentCtx`]
        /// so traced receives can attribute queue residency.
        queued: SimDuration,
    },
    /// A migration completed; run `on_arrival`.
    Arrive { agent: AgentId },
    /// A timer fired.
    TimerFired { agent: AgentId, timer: TimerId },
    /// A scheduled fault takes effect (index into the stored plan).
    FaultStart { index: usize },
    /// A timed fault effect (partition, spike, burst, blackhole) expires.
    FaultStop { token: u64 },
    /// A crashed node's scheduled restart is due.
    NodeRestartDue { node: NodeId },
}

/// Bookkeeping for a crashed node: what to tell its agents on restart,
/// and lifecycle events (creations, arrivals) parked until then.
struct DownNode {
    lose_soft_state: bool,
    parked: Vec<Event>,
}

/// Passive snapshot of platform activity, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformStats {
    /// Messages submitted by agents.
    pub messages_sent: u64,
    /// Messages whose source and destination nodes differ (the rest never
    /// left their node — the locality extension's target metric).
    pub messages_remote: u64,
    /// Messages that reached their addressee's handler.
    pub messages_delivered: u64,
    /// Messages that bounced (addressee absent).
    pub messages_failed: u64,
    /// Messages dropped by network loss injection.
    pub messages_lost: u64,
    /// Messages duplicated by network fault injection.
    pub messages_duplicated: u64,
    /// Failure notices that could not even be bounced (sender gone too).
    pub failures_dropped: u64,
    /// Migrations started.
    pub migrations: u64,
    /// Agents created (including spawns).
    pub agents_created: u64,
    /// Agents disposed.
    pub agents_disposed: u64,
    /// Messages dropped by injected faults: addressed to a crashed node,
    /// across a partition, or into a blackhole.
    pub messages_blocked: u64,
    /// Handler invocations of any kind.
    pub handler_invocations: u64,
    /// Actions ignored because they were invalid in context (for example a
    /// second `dispatch` in one handler).
    pub ignored_actions: u64,
}

/// A message-level trace event, passed to the tracer installed with
/// [`SimPlatform::set_tracer`].
///
/// This is the raw transport view (every payload, delivered or bounced).
/// The *protocol*-level view — structured events with correlation ids —
/// is [`agentrack_sim::TraceSink`], installed with
/// [`SimPlatform::set_trace_sink`].
#[derive(Debug)]
pub struct MsgTrace<'a> {
    /// When it happened.
    pub now: SimTime,
    /// Sending agent.
    pub from: AgentId,
    /// Addressed agent.
    pub to: AgentId,
    /// Node the message was addressed to.
    pub node: NodeId,
    /// The payload.
    pub payload: &'a Payload,
    /// `true` if the handler ran; `false` if the message bounced.
    pub delivered: bool,
}

/// A boxed message tracer, installed with [`SimPlatform::set_tracer`].
pub type MsgTracer = Box<dyn FnMut(MsgTrace<'_>)>;

/// The deterministic mobile-agent platform.
///
/// # Examples
///
/// ```
/// use agentrack_platform::{Agent, AgentCtx, AgentId, Payload, PlatformConfig, SimPlatform};
/// use agentrack_sim::{DurationDist, NodeId, SimDuration, Topology};
///
/// struct Echo;
/// impl Agent for Echo {
///     fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
///         let here = ctx.node();
///         ctx.send(from, here, payload.clone()); // assume sender is local
///     }
/// }
///
/// let topo = Topology::lan(2, DurationDist::Constant(SimDuration::from_micros(200)));
/// let mut platform = SimPlatform::new(topo, PlatformConfig::default());
/// let echo = platform.spawn(Box::new(Echo), NodeId::new(0));
/// platform.run_until_idle();
/// assert!(platform.is_active(echo));
/// ```
pub struct SimPlatform {
    config: PlatformConfig,
    topology: Topology,
    sched: Scheduler<Event>,
    rng: SimRng,
    /// Transport randomness (latency samples, loss/duplication rolls,
    /// handler service times), kept on its own stream so fault and
    /// network decisions never perturb the agent-visible `rng` — a run
    /// with faults enabled sees the same workload arrival sequence as
    /// one without.
    net_rng: SimRng,
    agents: HashMap<AgentId, AgentSlot>,
    next_agent_id: u64,
    next_timer_id: u64,
    stats: PlatformStats,
    tracer: Option<MsgTracer>,
    trace: TraceSink,
    fault_plan: Vec<FaultEvent>,
    down: HashMap<NodeId, DownNode>,
    /// Active partitions: token → node-to-group map. A message is
    /// blocked when both endpoints are mapped to *different* groups.
    partitions: Vec<(u64, HashMap<NodeId, usize>)>,
    latency_spikes: Vec<(u64, f64)>,
    loss_bursts: Vec<(u64, f64)>,
    blackholes: Vec<(u64, (NodeId, NodeId))>,
    /// Severed inter-region WAN links: token → unordered region pair.
    region_severs: Vec<(u64, (u32, u32))>,
    next_fault_token: u64,
    /// Per-agent minimum live timer id, bumped on node restart so timer
    /// chains armed before the crash stay dead (restarted behaviours
    /// re-arm their own).
    timer_floor: HashMap<AgentId, TimerId>,
}

impl SimPlatform {
    /// Creates a platform over the given topology.
    #[must_use]
    pub fn new(topology: Topology, config: PlatformConfig) -> Self {
        let rng = SimRng::seed_from(config.rng_seed);
        let net_rng = SimRng::seed_from(config.rng_seed ^ 0x9e37_79b9_7f4a_7c15);
        SimPlatform {
            config,
            topology,
            sched: Scheduler::new(),
            rng,
            net_rng,
            agents: HashMap::new(),
            next_agent_id: 0,
            next_timer_id: 0,
            stats: PlatformStats::default(),
            tracer: None,
            trace: TraceSink::disabled(),
            fault_plan: Vec::new(),
            down: HashMap::new(),
            partitions: Vec::new(),
            latency_spikes: Vec::new(),
            loss_bursts: Vec::new(),
            blackholes: Vec::new(),
            region_severs: Vec::new(),
            next_fault_token: 0,
            timer_floor: HashMap::new(),
        }
    }

    /// Installs a fault plan: each event is scheduled at its absolute
    /// virtual time and applied by the runtime when the clock reaches
    /// it. May be called once per run, before or during execution;
    /// events in the past are applied at the next step.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] against this
    /// platform's topology.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        plan.validate(self.topology.node_count())
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        // Region-range checks need the topology's region map, which the
        // plan itself cannot see.
        for (i, event) in plan.events().iter().enumerate() {
            if let FaultKind::RegionSever { a, b, .. } = event.kind {
                let regions = self.topology.region_count();
                assert!(
                    self.topology.region_topo().is_some(),
                    "invalid fault plan: event {i} severs regions but the topology has none"
                );
                assert!(
                    a < regions && b < regions,
                    "invalid fault plan: event {i} severs region {} outside the \
                     {regions}-region topology",
                    a.max(b)
                );
            }
        }
        for event in plan.events() {
            let index = self.fault_plan.len();
            self.fault_plan.push(event.clone());
            self.sched
                .schedule(event.at.max(self.sched.now()), Event::FaultStart { index });
        }
    }

    /// `true` while `node` is crashed by the fault plan.
    #[must_use]
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down.contains_key(&node)
    }

    /// `true` if the agent exists (has not been disposed or killed),
    /// whatever its lifecycle state. Crashed-node residents count as
    /// live: they resume on restart.
    #[must_use]
    pub fn is_live(&self, id: AgentId) -> bool {
        self.agents.contains_key(&id)
    }

    /// Installs a message tracer, called for every delivered or bounced
    /// message. Diagnostic tool; `None` by default.
    pub fn set_tracer(&mut self, tracer: MsgTracer) {
        self.tracer = Some(tracer);
    }

    /// Installs a structured-event trace sink, visible to every agent
    /// handler through [`AgentCtx::trace`]. Disabled by default.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The installed structured-event trace sink (disabled unless
    /// [`SimPlatform::set_trace_sink`] was called).
    #[must_use]
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// The network topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost-model configuration.
    #[must_use]
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Activity counters so far.
    #[must_use]
    pub fn stats(&self) -> PlatformStats {
        self.stats
    }

    /// The node an agent currently occupies (destination node while in
    /// transit), or `None` if it does not exist or was disposed.
    #[must_use]
    pub fn agent_node(&self, id: AgentId) -> Option<NodeId> {
        self.agents.get(&id).map(|slot| match slot.state {
            AgentState::InTransit { to } => to,
            _ => slot.node,
        })
    }

    /// `true` if the agent exists and is active at a node.
    #[must_use]
    pub fn is_active(&self, id: AgentId) -> bool {
        self.agents
            .get(&id)
            .is_some_and(|slot| slot.state == AgentState::Active)
    }

    /// Number of live (not disposed) agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The id the next created agent will receive. Ids are assigned
    /// sequentially, so bootstrap code can name a whole cast of agents
    /// before spawning any of them (and assert the assignment held).
    #[must_use]
    pub fn next_agent_id(&self) -> u64 {
        self.next_agent_id
    }

    /// Creates an agent from outside the simulation (bootstrap); its
    /// `on_create` runs after the platform's creation overhead.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn spawn(&mut self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        self.spawn_after(behavior, node, SimDuration::ZERO)
    }

    /// Like [`SimPlatform::spawn`], but the agent comes to life `delay`
    /// after now (plus the creation overhead). Lets a scenario stagger a
    /// population instead of materialising it in one instant.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn spawn_after(
        &mut self,
        behavior: Box<dyn Agent>,
        node: NodeId,
        delay: SimDuration,
    ) -> AgentId {
        assert!(self.topology.contains(node), "spawn at unknown node");
        let id = AgentId::new(self.next_agent_id);
        self.next_agent_id += 1;
        self.insert_creating(id, node, behavior, delay);
        id
    }

    /// Crashes an agent: removes it instantly, *without* running
    /// `on_dispose` (fault injection — a real crash says no goodbyes).
    /// Returns `true` if the agent existed.
    pub fn kill(&mut self, id: AgentId) -> bool {
        self.agents.remove(&id).is_some()
    }

    /// Processes the next event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((_, event)) => {
                self.handle(event);
                true
            }
            None => false,
        }
    }

    /// Runs every event up to and including time `t`, then advances the
    /// clock to `t` — even when no event fired, so repeated bounded runs
    /// make progress across quiet stretches.
    pub fn run_until(&mut self, t: SimTime) {
        while self.sched.peek_time().is_some_and(|pt| pt <= t) {
            self.step();
        }
        self.sched.advance_to(t);
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain; returns the number processed.
    ///
    /// # Panics
    ///
    /// Panics if more than [`PlatformConfig::max_events`] events fire —
    /// the signature of a livelocked protocol.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut processed = 0u64;
        while self.step() {
            processed += 1;
            assert!(
                processed <= self.config.max_events,
                "simulation exceeded {} events; livelock?",
                self.config.max_events
            );
        }
        processed
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::Created { agent } => {
                if let Some(slot) = self.agents.get(&agent) {
                    // Birth node crashed mid-creation: park until restart.
                    if let Some(down) = self.down.get_mut(&slot.node) {
                        down.parked.push(Event::Created { agent });
                        return;
                    }
                }
                if let Some(slot) = self.agents.get_mut(&agent) {
                    slot.state = AgentState::Active;
                    self.invoke(agent, |a, ctx| a.on_create(ctx));
                }
            }
            Event::Deliver { to, node, incoming } => {
                if self.down.contains_key(&node) {
                    // The node crashed while the message was in flight or
                    // queued: it is gone, with no failure bounce — senders
                    // must recover via their own timeouts.
                    self.stats.messages_blocked += 1;
                    return;
                }
                // A message racing the addressee's own creation defers
                // until `on_create` has run (the live runtime's channel
                // FIFO gives the same outcome for free).
                if self
                    .agents
                    .get(&to)
                    .is_some_and(|s| s.state == AgentState::Creating && s.node == node)
                {
                    self.sched.schedule_after(
                        SimDuration::from_millis(1),
                        Event::Deliver { to, node, incoming },
                    );
                    return;
                }
                if self.is_present(to, node) {
                    let (done, queued) = {
                        let service = self.net_rng.sample(&self.config.handler_service_time);
                        let slot = self.agents.get_mut(&to).expect("checked present");
                        let done = slot.station.admit(self.sched.now(), service);
                        (done, done.saturating_since(self.sched.now() + service))
                    };
                    let delay = done.saturating_since(self.sched.now());
                    self.sched.schedule_after(
                        delay,
                        Event::Process {
                            to,
                            node,
                            incoming,
                            queued,
                        },
                    );
                } else {
                    self.bounce(to, node, incoming);
                }
            }
            Event::Process {
                to,
                node,
                incoming,
                queued,
            } => {
                if self.down.contains_key(&node) {
                    self.stats.messages_blocked += 1;
                    return;
                }
                if self.is_present(to, node) {
                    match incoming {
                        Incoming::Message { from, payload } => {
                            self.stats.messages_delivered += 1;
                            if let Some(tracer) = &mut self.tracer {
                                tracer(MsgTrace {
                                    now: self.sched.now(),
                                    from,
                                    to,
                                    node,
                                    payload: &payload,
                                    delivered: true,
                                });
                            }
                            self.invoke_queued(to, queued, |a, ctx| {
                                a.on_message(ctx, from, &payload);
                            });
                        }
                        Incoming::Failure {
                            to: f_to,
                            node: f_node,
                            payload,
                        } => {
                            self.invoke_queued(to, queued, |a, ctx| {
                                a.on_delivery_failed(ctx, f_to, f_node, &payload);
                            });
                        }
                    }
                } else {
                    // The agent moved away between queueing and service.
                    self.bounce(to, node, incoming);
                }
            }
            Event::Arrive { agent } => {
                if let Some(slot) = self.agents.get(&agent) {
                    if let AgentState::InTransit { to } = slot.state {
                        // Destination crashed while the agent was in
                        // transit: the arrival waits out the downtime.
                        if let Some(down) = self.down.get_mut(&to) {
                            down.parked.push(Event::Arrive { agent });
                            return;
                        }
                    }
                }
                if let Some(slot) = self.agents.get_mut(&agent) {
                    if let AgentState::InTransit { to } = slot.state {
                        slot.node = to;
                        slot.state = AgentState::Active;
                        self.invoke(agent, |a, ctx| a.on_arrival(ctx));
                    }
                }
            }
            Event::TimerFired { agent, timer } => {
                if self
                    .timer_floor
                    .get(&agent)
                    .is_some_and(|&floor| timer < floor)
                {
                    return; // armed before a crash; the restart re-arms
                }
                match self.agents.get(&agent) {
                    Some(slot) if self.down.contains_key(&slot.node) => {
                        // Timers die with their node.
                    }
                    Some(slot) if slot.state == AgentState::Active => {
                        self.invoke(agent, |a, ctx| a.on_timer(ctx, timer));
                    }
                    Some(_) => {
                        // Creating or in transit: retry shortly after.
                        self.sched.schedule_after(
                            SimDuration::from_millis(1),
                            Event::TimerFired { agent, timer },
                        );
                    }
                    None => {} // disposed: drop silently
                }
            }
            Event::FaultStart { index } => self.fault_start(index),
            Event::FaultStop { token } => self.fault_stop(token),
            Event::NodeRestartDue { node } => self.restart_node(node),
        }
    }

    // ------------------------------------------------------------------
    // Fault application
    // ------------------------------------------------------------------

    fn fault_start(&mut self, index: usize) {
        let kind = self.fault_plan[index].kind.clone();
        let now = self.sched.now();
        match kind {
            FaultKind::Partition { groups, heal_at } => {
                let mut membership = HashMap::new();
                for (g, group) in groups.iter().enumerate() {
                    for &n in group {
                        membership.insert(n, g);
                    }
                }
                let token = self.issue_fault_token(heal_at);
                let count = groups.len();
                self.partitions.push((token, membership));
                self.trace
                    .emit(now, || TraceEvent::PartitionStarted { groups: count });
            }
            FaultKind::NodeCrash {
                node,
                lose_soft_state,
                restart_at,
            } => {
                self.crash_node(node, lose_soft_state);
                if let Some(at) = restart_at {
                    self.sched
                        .schedule(at.max(now), Event::NodeRestartDue { node });
                }
            }
            FaultKind::NodeRestart { node } => self.restart_node(node),
            FaultKind::LatencySpike { factor, until } => {
                let token = self.issue_fault_token(until);
                self.latency_spikes.push((token, factor));
                self.trace.emit(now, || TraceEvent::FaultApplied {
                    kind: "latency-spike",
                });
            }
            FaultKind::LossBurst { loss, until } => {
                let token = self.issue_fault_token(until);
                self.loss_bursts.push((token, loss));
                self.trace
                    .emit(now, || TraceEvent::FaultApplied { kind: "loss-burst" });
            }
            FaultKind::Blackhole { from, to, until } => {
                let token = self.issue_fault_token(until);
                self.blackholes.push((token, (from, to)));
                self.trace
                    .emit(now, || TraceEvent::FaultApplied { kind: "blackhole" });
            }
            FaultKind::RegionSever { a, b, heal_at } => {
                let token = self.issue_fault_token(heal_at);
                self.region_severs.push((token, (a, b)));
                self.trace.emit(now, || TraceEvent::FaultApplied {
                    kind: "region-sever",
                });
            }
        }
    }

    /// Allocates a token for a timed fault effect and schedules its
    /// expiry.
    fn issue_fault_token(&mut self, until: SimTime) -> u64 {
        let token = self.next_fault_token;
        self.next_fault_token += 1;
        self.sched
            .schedule(until.max(self.sched.now()), Event::FaultStop { token });
        token
    }

    fn fault_stop(&mut self, token: u64) {
        let now = self.sched.now();
        if let Some(pos) = self.partitions.iter().position(|(t, _)| *t == token) {
            self.partitions.remove(pos);
            self.trace.emit(now, || TraceEvent::PartitionHealed);
        } else if let Some(pos) = self.latency_spikes.iter().position(|(t, _)| *t == token) {
            self.latency_spikes.remove(pos);
            self.trace.emit(now, || TraceEvent::FaultCleared {
                kind: "latency-spike",
            });
        } else if let Some(pos) = self.loss_bursts.iter().position(|(t, _)| *t == token) {
            self.loss_bursts.remove(pos);
            self.trace
                .emit(now, || TraceEvent::FaultCleared { kind: "loss-burst" });
        } else if let Some(pos) = self.blackholes.iter().position(|(t, _)| *t == token) {
            self.blackholes.remove(pos);
            self.trace
                .emit(now, || TraceEvent::FaultCleared { kind: "blackhole" });
        } else if let Some(pos) = self.region_severs.iter().position(|(t, _)| *t == token) {
            self.region_severs.remove(pos);
            self.trace.emit(now, || TraceEvent::FaultCleared {
                kind: "region-sever",
            });
        }
    }

    /// Crashes a node: its agents stop processing, queued and in-flight
    /// traffic to it is dropped as it arrives, and its timers die. A
    /// no-op if the node is already down.
    fn crash_node(&mut self, node: NodeId, lose_soft_state: bool) {
        if self.down.contains_key(&node) {
            return;
        }
        self.down.insert(
            node,
            DownNode {
                lose_soft_state,
                parked: Vec::new(),
            },
        );
        self.trace
            .emit(self.sched.now(), || TraceEvent::NodeCrashed {
                node,
                lost_soft_state: lose_soft_state,
            });
    }

    /// Restarts a crashed node: residents get `on_restart` (told whether
    /// soft state was lost), parked creations and arrivals resume, and
    /// pre-crash timers stay dead. A no-op if the node is up.
    fn restart_node(&mut self, node: NodeId) {
        let Some(down) = self.down.remove(&node) else {
            return;
        };
        self.trace
            .emit(self.sched.now(), || TraceEvent::NodeRestarted { node });
        let floor = TimerId::new(self.next_timer_id);
        let mut residents: Vec<AgentId> = self
            .agents
            .iter()
            .filter(|(_, slot)| slot.node == node && slot.state == AgentState::Active)
            .map(|(&id, _)| id)
            .collect();
        residents.sort_unstable();
        for id in residents {
            self.timer_floor.insert(id, floor);
            self.invoke(id, |a, ctx| a.on_restart(ctx, down.lose_soft_state));
        }
        for event in down.parked {
            self.sched
                .schedule_after(SimDuration::from_millis(1), event);
        }
    }

    /// `true` when injected faults sever the directed link — the
    /// destination node is down, a partition separates the endpoints, or
    /// a blackhole covers the direction.
    fn link_blocked(&self, from: NodeId, to: NodeId) -> bool {
        if self.down.contains_key(&to) {
            return true;
        }
        for (_, membership) in &self.partitions {
            if let (Some(a), Some(b)) = (membership.get(&from), membership.get(&to)) {
                if a != b {
                    return true;
                }
            }
        }
        if !self.region_severs.is_empty() {
            let (ra, rb) = (self.topology.region_of(from), self.topology.region_of(to));
            if self
                .region_severs
                .iter()
                .any(|(_, (a, b))| (ra, rb) == (*a, *b) || (ra, rb) == (*b, *a))
            {
                return true;
            }
        }
        self.blackholes.iter().any(|(_, link)| *link == (from, to))
    }

    /// Combined extra loss probability from active loss bursts.
    fn burst_loss(&self) -> f64 {
        let mut keep = 1.0;
        for (_, loss) in &self.loss_bursts {
            keep *= 1.0 - loss;
        }
        1.0 - keep
    }

    /// Product of active latency-spike factors (1.0 when none).
    fn latency_factor(&self) -> f64 {
        self.latency_spikes.iter().map(|(_, f)| f).product()
    }

    fn is_present(&self, id: AgentId, node: NodeId) -> bool {
        self.agents
            .get(&id)
            .is_some_and(|slot| slot.state == AgentState::Active && slot.node == node)
    }

    /// Sends a delivery-failure notice back to the originator of a failed
    /// message (failure notices themselves are never bounced).
    fn bounce(&mut self, to: AgentId, node: NodeId, incoming: Incoming) {
        self.stats.messages_failed += 1;
        let Incoming::Message { from, payload } = incoming else {
            self.stats.failures_dropped += 1;
            return;
        };
        if let Some(tracer) = &mut self.tracer {
            tracer(MsgTrace {
                now: self.sched.now(),
                from,
                to,
                node,
                payload: &payload,
                delivered: false,
            });
        }
        // Find the sender wherever it currently is; if it is gone or in
        // transit the notice is dropped (it would bounce forever).
        let Some(sender) = self.agents.get(&from) else {
            self.stats.failures_dropped += 1;
            return;
        };
        if sender.state != AgentState::Active {
            self.stats.failures_dropped += 1;
            return;
        }
        let sender_node = sender.node;
        if self.link_blocked(node, sender_node) {
            // The bounce path itself is severed; the notice is lost.
            self.stats.failures_dropped += 1;
            return;
        }
        let spike = if node == sender_node {
            1.0
        } else {
            self.latency_factor()
        };
        let latency = self
            .topology
            .latency(node, sender_node, &mut self.net_rng)
            .mul_f64(spike);
        self.sched.schedule_after(
            latency,
            Event::Deliver {
                to: from,
                node: sender_node,
                incoming: Incoming::Failure { to, node, payload },
            },
        );
    }

    /// Runs one handler with a fresh action buffer, then applies the
    /// requested effects.
    fn invoke<F>(&mut self, id: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
    {
        self.invoke_queued(id, SimDuration::ZERO, f);
    }

    /// Like [`SimPlatform::invoke`], but records how long the triggering
    /// item waited at the agent's service station, for the handler to
    /// read via [`AgentCtx::queued`].
    fn invoke_queued<F>(&mut self, id: AgentId, queued: SimDuration, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
    {
        let Some(slot) = self.agents.get_mut(&id) else {
            return;
        };
        let mut behavior = slot.behavior.take().expect("re-entrant handler invocation");
        let node = slot.node;
        let mut actions = Vec::new();
        {
            let mut ctx = AgentCtx {
                now: self.sched.now(),
                self_id: id,
                node,
                rng: &mut self.rng,
                actions: &mut actions,
                next_agent_id: &mut self.next_agent_id,
                next_timer_id: &mut self.next_timer_id,
                trace: &self.trace,
                queued,
            };
            f(behavior.as_mut(), &mut ctx);
        }
        self.stats.handler_invocations += 1;
        if let Some(slot) = self.agents.get_mut(&id) {
            slot.behavior = Some(behavior);
        }
        self.apply_actions(id, node, actions);
    }

    /// Applies a handler's requested effects in order.
    ///
    /// Structural actions follow a first-wins rule, identical on both
    /// runtimes: once the agent has dispatched, a later `dispose` in the
    /// same handler is ignored (the behaviour already departed); once it
    /// has disposed, every later action is ignored (the agent no longer
    /// exists). `on_dispose` runs exactly once, and only its *sends*
    /// (farewells) take effect — structural requests from a destructor
    /// would otherwise recurse.
    fn apply_actions(&mut self, id: AgentId, origin: NodeId, actions: Vec<Action>) {
        let mut dispatched = false;
        for action in actions {
            match action {
                Action::Send { to, node, payload } => {
                    self.transmit(id, origin, to, node, payload);
                }
                Action::Dispatch { to } => {
                    self.start_migration(id, origin, to);
                    dispatched = true;
                }
                Action::SetTimer { timer, delay } => {
                    self.sched
                        .schedule_after(delay, Event::TimerFired { agent: id, timer });
                }
                Action::Create {
                    id: new_id,
                    node,
                    behavior,
                } => {
                    if self.topology.contains(node) {
                        let hop = if node == origin {
                            SimDuration::ZERO
                        } else {
                            self.topology.latency(origin, node, &mut self.net_rng)
                        };
                        self.insert_creating(new_id, node, behavior, hop);
                    } else {
                        self.stats.ignored_actions += 1;
                    }
                }
                Action::Dispose => {
                    if dispatched {
                        // The behaviour already left for another node.
                        self.stats.ignored_actions += 1;
                        continue;
                    }
                    let Some(mut slot) = self.agents.remove(&id) else {
                        continue;
                    };
                    if let Some(mut behavior) = slot.behavior.take() {
                        let mut farewell = Vec::new();
                        {
                            let mut ctx = AgentCtx {
                                now: self.sched.now(),
                                self_id: id,
                                node: origin,
                                rng: &mut self.rng,
                                actions: &mut farewell,
                                next_agent_id: &mut self.next_agent_id,
                                next_timer_id: &mut self.next_timer_id,
                                trace: &self.trace,
                                queued: SimDuration::ZERO,
                            };
                            behavior.on_dispose(&mut ctx);
                        }
                        self.stats.handler_invocations += 1;
                        for action in farewell {
                            if let Action::Send { to, node, payload } = action {
                                self.transmit(id, origin, to, node, payload);
                            } else {
                                self.stats.ignored_actions += 1;
                            }
                        }
                    }
                    self.stats.agents_disposed += 1;
                    // The agent is gone; ignore whatever the handler
                    // requested after disposing.
                    break;
                }
            }
        }
    }

    fn transmit(
        &mut self,
        from: AgentId,
        origin: NodeId,
        to: AgentId,
        node: NodeId,
        payload: Payload,
    ) {
        if !self.topology.contains(node) {
            self.stats.ignored_actions += 1;
            return;
        }
        self.stats.messages_sent += 1;
        let remote = origin != node;
        if remote {
            self.stats.messages_remote += 1;
        }
        if self.link_blocked(origin, node) {
            // Crashed destination, partition, or blackhole: the message
            // vanishes without a bounce — exactly what makes timeouts
            // and failover fire.
            self.stats.messages_blocked += 1;
            return;
        }
        if remote {
            let burst = self.burst_loss();
            if burst > 0.0 && self.net_rng.chance(burst) {
                self.stats.messages_lost += 1;
                return;
            }
        }
        let spike = if remote { self.latency_factor() } else { 1.0 };
        match self.topology.transmit(origin, node, &mut self.net_rng) {
            Delivery::Deliver(latency) => {
                self.sched.schedule_after(
                    latency.mul_f64(spike),
                    Event::Deliver {
                        to,
                        node,
                        incoming: Incoming::Message { from, payload },
                    },
                );
            }
            Delivery::Duplicate(first, second) => {
                self.stats.messages_duplicated += 1;
                for latency in [first, second] {
                    self.sched.schedule_after(
                        latency.mul_f64(spike),
                        Event::Deliver {
                            to,
                            node,
                            incoming: Incoming::Message {
                                from,
                                payload: payload.clone(),
                            },
                        },
                    );
                }
            }
            Delivery::Lost => {
                self.stats.messages_lost += 1;
            }
        }
    }

    fn start_migration(&mut self, id: AgentId, origin: NodeId, to: NodeId) {
        if !self.topology.contains(to) {
            self.stats.ignored_actions += 1;
            return;
        }
        let Some(slot) = self.agents.get(&id) else {
            return;
        };
        if slot.state != AgentState::Active {
            self.stats.ignored_actions += 1;
            return;
        }
        let state_size = slot.behavior.as_ref().map_or(512, |b| b.state_size());
        let network = if to == origin {
            SimDuration::ZERO
        } else {
            self.topology
                .latency(origin, to, &mut self.net_rng)
                .mul_f64(self.latency_factor())
        };
        let total =
            self.config.migration_overhead + network + self.config.transfer_time(state_size);
        if let Some(slot) = self.agents.get_mut(&id) {
            slot.state = AgentState::InTransit { to };
        }
        self.stats.migrations += 1;
        self.sched
            .schedule_after(total, Event::Arrive { agent: id });
    }

    fn insert_creating(
        &mut self,
        id: AgentId,
        node: NodeId,
        behavior: Box<dyn Agent>,
        extra_delay: SimDuration,
    ) {
        self.agents.insert(
            id,
            AgentSlot {
                behavior: Some(behavior),
                node,
                state: AgentState::Creating,
                station: ServiceStation::new(),
            },
        );
        self.stats.agents_created += 1;
        self.sched.schedule_after(
            self.config.creation_overhead + extra_delay,
            Event::Created { agent: id },
        );
    }
}

impl fmt::Debug for SimPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimPlatform")
            .field("now", &self.now())
            .field("agents", &self.agents.len())
            .field("stats", &self.stats)
            .finish()
    }
}
