//! The agent programming model: lifecycle callbacks and the execution
//! context.
//!
//! The [`Agent`] trait mirrors the event-driven callbacks of the Aglets
//! platform the paper implemented on (`onCreation`, `onArrival`,
//! `handleMessage`, `onDisposing`). Handlers receive an [`AgentCtx`] through
//! which all effects — sending messages, migrating, setting timers,
//! creating or disposing agents — are *requested*; the runtime applies them
//! after the handler returns, which is also what gives every effect its
//! proper cost on the virtual clock.

use std::fmt;

use agentrack_sim::{NodeId, SimDuration, SimRng, SimTime, TraceSink};

use crate::id::{AgentId, TimerId};
use crate::payload::Payload;

/// Behaviour of a platform agent.
///
/// All callbacks default to "do nothing" so behaviours implement only what
/// they react to.
///
/// Behaviours must be [`Send`]: the live runtime moves them between node
/// threads when agents migrate. (The deterministic runtime is
/// single-threaded but shares the same trait so one behaviour runs on
/// both.)
///
/// # Examples
///
/// ```
/// use agentrack_platform::{Agent, AgentCtx, AgentId, Payload};
///
/// /// Replies to every message with its own payload (an echo service).
/// struct Echo;
///
/// impl Agent for Echo {
///     fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
///         let node = ctx.node();
///         ctx.send_local_hint(from, node, payload.clone());
///     }
/// }
/// ```
pub trait Agent: Send {
    /// The agent has been created and is now active at its birth node.
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        let _ = ctx;
    }

    /// The agent finished migrating and is active at its new node.
    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        let _ = ctx;
    }

    /// A message from another agent arrived.
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let _ = (ctx, from, payload);
    }

    /// A message this agent sent could not be delivered: the addressee was
    /// not (or no longer) at the addressed node.
    fn on_delivery_failed(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        let _ = (ctx, to, node, payload);
    }

    /// A timer set with [`AgentCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
        let _ = (ctx, timer);
    }

    /// The agent's node came back up after a crash. `lost_soft_state`
    /// says whether in-memory state was wiped by the fault plan;
    /// behaviours holding soft state (tracker records, mailboxes) should
    /// discard it and re-register when it is `true`, and in either case
    /// re-arm any periodic timers — the crash killed them.
    fn on_restart(&mut self, ctx: &mut AgentCtx<'_>, lost_soft_state: bool) {
        let _ = (ctx, lost_soft_state);
    }

    /// The agent is being disposed; last chance to send farewells.
    fn on_dispose(&mut self, ctx: &mut AgentCtx<'_>) {
        let _ = ctx;
    }

    /// Serialized state size in bytes, charged against bandwidth when the
    /// agent migrates.
    fn state_size(&self) -> usize {
        512
    }
}

/// An effect requested by a handler, applied by the runtime afterwards.
pub(crate) enum Action {
    Send {
        to: AgentId,
        node: NodeId,
        payload: Payload,
    },
    Dispatch {
        to: NodeId,
    },
    SetTimer {
        timer: TimerId,
        delay: SimDuration,
    },
    Create {
        id: AgentId,
        node: NodeId,
        behavior: Box<dyn Agent>,
    },
    Dispose,
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Send { to, node, payload } => f
                .debug_struct("Send")
                .field("to", to)
                .field("node", node)
                .field("bytes", &payload.len())
                .finish(),
            Action::Dispatch { to } => f.debug_struct("Dispatch").field("to", to).finish(),
            Action::SetTimer { timer, delay } => f
                .debug_struct("SetTimer")
                .field("timer", timer)
                .field("delay", delay)
                .finish(),
            Action::Create { id, node, .. } => f
                .debug_struct("Create")
                .field("id", id)
                .field("node", node)
                .finish_non_exhaustive(),
            Action::Dispose => f.write_str("Dispose"),
        }
    }
}

/// Execution context handed to every [`Agent`] callback.
///
/// Provides identity, the virtual clock, deterministic randomness, and the
/// effect-requesting methods.
pub struct AgentCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) self_id: AgentId,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) next_agent_id: &'a mut u64,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) trace: &'a TraceSink,
    pub(crate) queued: SimDuration,
}

impl AgentCtx<'_> {
    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This agent's id.
    #[must_use]
    pub fn self_id(&self) -> AgentId {
        self.self_id
    }

    /// The node this agent currently executes on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Deterministic per-run randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The platform's structured-event trace sink. Disabled (and
    /// zero-cost to emit into) unless the platform installed one.
    #[must_use]
    pub fn trace(&self) -> &TraceSink {
        self.trace
    }

    /// How long the item that triggered this callback waited in the
    /// agent's service queue before handling began. Zero for callbacks
    /// that are not queued deliveries (timers, lifecycle events) and on
    /// runtimes that do not model queueing.
    #[must_use]
    pub fn queued(&self) -> SimDuration {
        self.queued
    }

    /// Sends `payload` to agent `to`, believed to reside at `node`.
    ///
    /// Addressing requires a node: knowing where an agent is *is the
    /// problem the location mechanism solves*. If the addressee is not at
    /// that node when the message arrives, the sender's
    /// [`Agent::on_delivery_failed`] fires.
    pub fn send(&mut self, to: AgentId, node: NodeId, payload: Payload) {
        self.actions.push(Action::Send { to, node, payload });
    }

    /// Alias of [`AgentCtx::send`] that reads better when replying to a
    /// sender using a freshly obtained location hint.
    pub fn send_local_hint(&mut self, to: AgentId, node: NodeId, payload: Payload) {
        self.send(to, node, payload);
    }

    /// Migrates this agent to another node. In-flight messages addressed to
    /// the old node will fail; [`Agent::on_arrival`] fires at the
    /// destination once the state transfer completes.
    pub fn dispatch(&mut self, to: NodeId) {
        self.actions.push(Action::Dispatch { to });
    }

    /// Sets a one-shot timer; [`Agent::on_timer`] fires after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerId {
        let timer = TimerId::new(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { timer, delay });
        timer
    }

    /// Creates a new agent at `node`; its [`Agent::on_create`] fires there
    /// after the platform's creation overhead (plus a network hop if the
    /// node is remote).
    pub fn create_agent(&mut self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        let id = AgentId::new(*self.next_agent_id);
        *self.next_agent_id += 1;
        self.actions.push(Action::Create { id, node, behavior });
        id
    }

    /// Disposes this agent after the current handler returns.
    pub fn dispose(&mut self) {
        self.actions.push(Action::Dispose);
    }
}

impl fmt::Debug for AgentCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AgentCtx")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}
