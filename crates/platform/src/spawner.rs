//! The [`Spawner`] abstraction: what a subsystem needs in order to deploy
//! a cast of agents onto *either* runtime.
//!
//! The location schemes bootstrap themselves through this trait, so the
//! same scheme runs under the deterministic simulator (for experiments)
//! and under the live threaded runtime (for real).

use agentrack_sim::NodeId;

use crate::agent::Agent;
use crate::id::AgentId;
use crate::live::LivePlatform;
use crate::runtime::SimPlatform;

/// A runtime that can host agents.
pub trait Spawner {
    /// Number of nodes agents can be placed on.
    fn node_count(&self) -> u32;

    /// The id the next spawned agent will receive. Ids are sequential, so
    /// bootstrap code can name a whole cast before spawning it.
    fn next_agent_id(&self) -> u64;

    /// Creates an agent at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn spawn_agent(&mut self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId;
}

impl Spawner for SimPlatform {
    fn node_count(&self) -> u32 {
        self.topology().node_count()
    }

    fn next_agent_id(&self) -> u64 {
        SimPlatform::next_agent_id(self)
    }

    fn spawn_agent(&mut self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        self.spawn(behavior, node)
    }
}

impl Spawner for LivePlatform {
    fn node_count(&self) -> u32 {
        LivePlatform::node_count(self)
    }

    fn next_agent_id(&self) -> u64 {
        LivePlatform::peek_next_agent_id(self)
    }

    fn spawn_agent(&mut self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        LivePlatform::spawn(self, behavior, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlatformConfig;
    use agentrack_sim::{DurationDist, SimDuration, Topology};

    struct Noop;
    impl Agent for Noop {}

    #[test]
    fn sim_platform_spawner_contract() {
        let topo = Topology::lan(3, DurationDist::Constant(SimDuration::from_micros(100)));
        let mut p = SimPlatform::new(topo, PlatformConfig::default());
        assert_eq!(Spawner::node_count(&p), 3);
        let expected = Spawner::next_agent_id(&p);
        let id = p.spawn_agent(Box::new(Noop), NodeId::new(1));
        assert_eq!(id.raw(), expected);
    }

    #[test]
    fn live_platform_spawner_contract() {
        let mut p = LivePlatform::new(2);
        assert_eq!(Spawner::node_count(&p), 2);
        let expected = Spawner::next_agent_id(&p);
        let id = p.spawn_agent(Box::new(Noop), NodeId::new(0));
        assert_eq!(id.raw(), expected);
        p.shutdown();
    }
}
