//! Message payloads: typed values serialised to bytes on the wire.
//!
//! Agents exchange [`Payload`]s — opaque byte strings. Protocols define
//! `serde` types and use [`Payload::encode`] / [`Payload::decode`] at the
//! boundaries, exactly as a real platform would marshal messages between
//! address spaces. The byte length also feeds the migration and
//! transmission cost models.

use std::fmt;

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// An immutable message payload.
///
/// # Examples
///
/// ```
/// use agentrack_platform::Payload;
/// use serde::{Deserialize, Serialize};
///
/// #[derive(Serialize, Deserialize, PartialEq, Debug)]
/// struct Ping { seq: u32 }
///
/// let p = Payload::encode(&Ping { seq: 7 });
/// assert_eq!(p.decode::<Ping>().unwrap(), Ping { seq: 7 });
/// assert!(p.len() > 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Payload(Bytes);

impl Payload {
    /// Serialises a value into a payload.
    ///
    /// # Panics
    ///
    /// Panics if the value cannot be serialised to JSON (only possible for
    /// types with non-string map keys or similar pathologies — protocol
    /// types in this workspace never are).
    #[must_use]
    pub fn encode<T: Serialize>(value: &T) -> Self {
        Payload(Bytes::from(
            serde_json::to_vec(value).expect("protocol types serialise infallibly"),
        ))
    }

    /// Wraps raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: Bytes) -> Self {
        Payload(bytes)
    }

    /// Deserialises the payload into a typed value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the bytes do not encode a `T`; protocol
    /// handlers use this to recognise "not one of mine" messages.
    pub fn decode<T: DeserializeOwned>(&self) -> Result<T, DecodeError> {
        serde_json::from_slice(&self.0).map_err(|e| DecodeError(e.to_string()))
    }

    /// Payload size in bytes (used by cost models).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for a zero-length payload.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw bytes.
    #[must_use]
    pub fn bytes(&self) -> &Bytes {
        &self.0
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.len() <= 120 => write!(f, "Payload({s})"),
            Ok(s) => write!(f, "Payload({}… {} bytes)", &s[..80], self.0.len()),
            Err(_) => write!(f, "Payload({} bytes)", self.0.len()),
        }
    }
}

/// Error returned when a payload does not decode as the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload does not decode: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Msg {
        kind: String,
        value: u64,
    }

    #[test]
    fn round_trip() {
        let m = Msg {
            kind: "test".into(),
            value: 12,
        };
        let p = Payload::encode(&m);
        assert_eq!(p.decode::<Msg>().unwrap(), m);
        assert!(!p.is_empty());
        assert_eq!(p.len(), p.bytes().len());
    }

    #[test]
    fn wrong_type_is_an_error_not_a_panic() {
        #[derive(Serialize, Deserialize, Debug)]
        struct Other {
            name: String,
        }
        let p = Payload::encode(&Msg {
            kind: "x".into(),
            value: 1,
        });
        assert!(p.decode::<Other>().is_err());
        let err = p.decode::<Other>().unwrap_err();
        assert!(err.to_string().contains("does not decode"));
    }

    #[test]
    fn debug_is_readable() {
        let p = Payload::encode(&Msg {
            kind: "dbg".into(),
            value: 3,
        });
        let s = format!("{p:?}");
        assert!(s.contains("dbg"));
    }

    #[test]
    fn from_raw_bytes() {
        let p = Payload::from_bytes(Bytes::from_static(b"{\"kind\":\"k\",\"value\":1}"));
        assert_eq!(p.decode::<Msg>().unwrap().value, 1);
    }
}
