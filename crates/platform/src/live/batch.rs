//! Outbound message coalescing: many `Deliver`s, one channel operation.
//!
//! Every cross-node message used to be its own channel send — a full
//! synchronised queue operation (plus, on the `mpsc`-backed vendored
//! channel, an allocation) per message. At millions of messages per
//! second the channel machinery, not the handlers, was the live
//! runtime's wire cost. An [`OutBatch`] gives each sending thread (node
//! loops and external [`LiveHandle`](super::LiveHandle)s) a private
//! per-destination buffer: `Deliver`s accumulate and ship as one
//! [`NodeMsg::DeliverBatch`](super::NodeMsg) when either
//!
//! * the buffer reaches the size cap ([`LiveConfig::batch_max`]), or
//! * the sender goes idle (a node loop finishing its drain burst, a
//!   handle calling [`flush`](OutBatch::flush) or being dropped),
//!
//! so a lone message still leaves immediately after the burst that
//! produced it — batching trades *no* latency floor, only per-message
//! channel overhead. A cap of 1 short-circuits the buffer entirely and
//! reproduces the old one-send-per-message behaviour for ablation runs.
//!
//! Only `Deliver` traffic batches. `Welcome` (migrations) carries a boxed
//! behaviour and is latency-critical for the `InTransit` window;
//! `Failure` and `TimerHop` are rare. Keeping them as singleton messages
//! also preserves their ordering relative to the batches that precede
//! them, because a sender always flushes its buffer for a destination
//! before sending that destination a non-batchable message (see
//! [`OutBatch::flush_node`]).

use agentrack_sim::NodeId;

use crate::id::AgentId;
use crate::payload::Payload;

use super::Shared;

/// One queued message: the wire form of `Action::Send` / `post`.
#[derive(Debug)]
pub(crate) struct DeliverItem {
    pub to: AgentId,
    pub from: AgentId,
    pub payload: Payload,
    /// Nanoseconds since platform start when the sender queued this
    /// message; `0` when telemetry is off (no clock was read). Feeds the
    /// end-to-end delivery histogram and the flight recorder's queue
    /// phase.
    pub enqueued_ns: u64,
}

/// A per-sender, per-destination buffer of outgoing `Deliver`s.
pub(crate) struct OutBatch {
    per_node: Vec<Vec<DeliverItem>>,
    cap: usize,
}

impl OutBatch {
    pub(crate) fn new(node_count: usize, cap: usize) -> Self {
        OutBatch {
            per_node: (0..node_count).map(|_| Vec::new()).collect(),
            cap: cap.max(1),
        }
    }

    /// Queues one message for `dest`, shipping the buffer if it reaches
    /// the cap. With `cap == 1` this degenerates to an immediate send.
    pub(crate) fn push(&mut self, shared: &Shared, dest: NodeId, item: DeliverItem) {
        if self.cap == 1 {
            shared.ship(dest, vec![item]);
            return;
        }
        let buf = &mut self.per_node[dest.index()];
        buf.push(item);
        if buf.len() >= self.cap {
            let batch = std::mem::take(buf);
            shared.ship(dest, batch);
        }
    }

    /// Ships whatever is queued for `dest` (called before sending that
    /// destination a non-batchable message, to preserve ordering).
    pub(crate) fn flush_node(&mut self, shared: &Shared, dest: NodeId) {
        let buf = &mut self.per_node[dest.index()];
        if !buf.is_empty() {
            let batch = std::mem::take(buf);
            shared.ship(dest, batch);
        }
    }

    /// Ships everything queued — the flush-on-idle half of the policy.
    pub(crate) fn flush(&mut self, shared: &Shared) {
        for i in 0..self.per_node.len() {
            self.flush_node(shared, NodeId::new(i as u32));
        }
    }
}

impl std::fmt::Debug for OutBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutBatch")
            .field("cap", &self.cap)
            .field("queued", &self.per_node.iter().map(Vec::len).sum::<usize>())
            .finish()
    }
}
