//! The sharded whereabouts registry: the live runtime's answer to "where
//! is agent X *right now*".
//!
//! The original registry was one `RwLock<HashMap<AgentId, Whereabouts>>`.
//! Every lookup, spawn, migration and disposal — from every node thread
//! and every external driver — serialised on that lock's cache line,
//! which capped the whole runtime at single-lock throughput long before
//! any real work saturated. [`ShardedRegistry`] splits the map into a
//! power-of-two number of independently locked shards selected by
//! [`AgentId::shard_of`], so uncontended traffic scales with the shard
//! count and a migration only ever touches the two shards it names
//! (source whereabouts and destination whereabouts live under the same
//! agent id, so in fact exactly one).
//!
//! Each shard also carries a **generation counter**, bumped after every
//! mutation of that shard, in the same spirit as the generation stamp on
//! `hashtree`'s compiled directory: a cheap, lock-free way for cached
//! derivatives (the per-handle [`RouteCache`](super::route_cache::RouteCache))
//! to prove a cached route is still current. Agents that haven't moved —
//! more precisely, whose *shard* hasn't seen a write — revalidate with
//! one relaxed atomic load and zero lock traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use agentrack_sim::NodeId;

use crate::id::AgentId;

/// Where the registry believes an agent is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Whereabouts {
    Creating(NodeId),
    Active(NodeId),
    InTransit(NodeId),
}

impl Whereabouts {
    /// The node this belief points at, whatever the lifecycle phase.
    pub(crate) fn node(self) -> NodeId {
        match self {
            Whereabouts::Creating(n) | Whereabouts::Active(n) | Whereabouts::InTransit(n) => n,
        }
    }
}

/// A power-of-two-sharded `AgentId -> Whereabouts` map with per-shard
/// generation stamps.
///
/// The generation counters live in their own dense array rather than
/// inside the shard structs: revalidating a cached route touches only a
/// `shard_count * 8`-byte region that stays resident in L2 even at tens
/// of thousands of shards, instead of pulling in one sparsely-used cache
/// line per shard.
pub(crate) struct ShardedRegistry {
    maps: Box<[RwLock<HashMap<AgentId, Whereabouts>>]>,
    /// One generation per shard, bumped *while the write lock is held*,
    /// after every mutation. Readers snapshot it before taking the read
    /// lock; a cached value tagged with generation `g` is proven current
    /// by `gen() == g`. The scheme is conservative: a bump can invalidate
    /// entries that a concurrent reader cached fresh, never the reverse.
    gens: Box<[AtomicU64]>,
    mask: u64,
}

impl ShardedRegistry {
    /// Creates a registry with `shard_count` shards (rounded up to a
    /// power of two, minimum 1).
    pub(crate) fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1).next_power_of_two();
        let maps = (0..n)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let gens = (0..n)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedRegistry {
            maps,
            gens,
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.maps.len()
    }

    /// The current generation of the shard holding `id` — the token a
    /// route cache compares against to revalidate without locking.
    #[inline]
    pub(crate) fn shard_gen(&self, id: AgentId) -> u64 {
        self.gens[id.shard_of(self.mask)].load(Ordering::Acquire)
    }

    /// Current belief about `id`.
    pub(crate) fn get(&self, id: AgentId) -> Option<Whereabouts> {
        self.maps[id.shard_of(self.mask)].read().get(&id).copied()
    }

    /// Current belief about `id`, plus the shard generation observed
    /// *before* the read — so a `(value, gen)` pair handed to a cache can
    /// only be stale-tagged, never fresh-tagged.
    pub(crate) fn get_with_gen(&self, id: AgentId) -> (Option<Whereabouts>, u64) {
        let shard = id.shard_of(self.mask);
        let gen = self.gens[shard].load(Ordering::Acquire);
        let w = self.maps[shard].read().get(&id).copied();
        (w, gen)
    }

    /// Records a new belief about `id` and bumps the shard generation.
    pub(crate) fn insert(&self, id: AgentId, w: Whereabouts) {
        let shard = id.shard_of(self.mask);
        let mut map = self.maps[shard].write();
        map.insert(id, w);
        self.gens[shard].fetch_add(1, Ordering::Release);
    }

    /// Forgets `id` (disposal, or loss with its node) and bumps the
    /// shard generation.
    pub(crate) fn remove(&self, id: AgentId) {
        let shard = id.shard_of(self.mask);
        let mut map = self.maps[shard].write();
        map.remove(&id);
        self.gens[shard].fetch_add(1, Ordering::Release);
    }

    /// Σ per-shard generations: the registry's total mutation count
    /// (every insert/remove bumps exactly one shard), so successive
    /// reads measure churn — spawns, migration steps and disposals —
    /// without touching a lock.
    pub(crate) fn total_generation(&self) -> u64 {
        self.gens.iter().map(|g| g.load(Ordering::Relaxed)).sum()
    }

    /// Total number of registered agents (sums per-shard sizes; callers
    /// use it for gauges, not synchronisation).
    pub(crate) fn len(&self) -> usize {
        self.maps.iter().map(|m| m.read().len()).sum()
    }
}

impl std::fmt::Debug for ShardedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRegistry")
            .field("shards", &self.maps.len())
            .field("agents", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up_and_len_sums() {
        let r = ShardedRegistry::new(5);
        assert_eq!(r.shard_count(), 8);
        for raw in 0..100 {
            r.insert(AgentId::new(raw), Whereabouts::Active(NodeId::new(0)));
        }
        assert_eq!(r.len(), 100);
        r.remove(AgentId::new(7));
        assert_eq!(r.len(), 99);
        assert_eq!(r.get(AgentId::new(7)), None);
        assert_eq!(
            r.get(AgentId::new(8)),
            Some(Whereabouts::Active(NodeId::new(0)))
        );
    }

    #[test]
    fn generation_bumps_only_on_the_touched_shard() {
        let r = ShardedRegistry::new(64);
        let a = AgentId::new(3);
        // Find an id on a different shard than `a`.
        let b = (0..1000)
            .map(AgentId::new)
            .find(|id| id.shard_of(63) != a.shard_of(63))
            .expect("some id lands elsewhere");
        let (ga, gb) = (r.shard_gen(a), r.shard_gen(b));
        r.insert(a, Whereabouts::Creating(NodeId::new(1)));
        assert_ne!(r.shard_gen(a), ga, "write must bump its own shard");
        assert_eq!(r.shard_gen(b), gb, "write must not bump other shards");
    }

    #[test]
    fn total_generation_counts_every_mutation() {
        let r = ShardedRegistry::new(8);
        assert_eq!(r.total_generation(), 0);
        r.insert(AgentId::new(1), Whereabouts::Active(NodeId::new(0)));
        r.insert(AgentId::new(2), Whereabouts::Active(NodeId::new(1)));
        r.remove(AgentId::new(1));
        assert_eq!(r.total_generation(), 3, "each insert/remove bumps once");
    }

    #[test]
    fn get_with_gen_pairs_value_and_token() {
        let r = ShardedRegistry::new(16);
        let id = AgentId::new(42);
        r.insert(id, Whereabouts::Active(NodeId::new(2)));
        let (w, gen) = r.get_with_gen(id);
        assert_eq!(w, Some(Whereabouts::Active(NodeId::new(2))));
        assert_eq!(gen, r.shard_gen(id), "no writes in between: token holds");
        r.insert(id, Whereabouts::InTransit(NodeId::new(3)));
        assert_ne!(gen, r.shard_gen(id), "a move invalidates the token");
    }
}
