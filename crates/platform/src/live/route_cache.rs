//! A 2-way set-associative `(agent, node)` route cache with generation
//! revalidation.
//!
//! Agent ids are plain `u64`s, so "interning" a hot route costs nothing
//! more than writing it into a fixed slot: the cache is a power-of-two
//! array of packed 16-byte `(id, generation, node)` slots, grouped into
//! two-way sets indexed by the same Fibonacci mix that picks registry
//! shards. No allocation and no eviction bookkeeping beyond the set's
//! second way — which is what lets a popularity-skewed workload keep its
//! hot routes resident while uniform one-off lookups churn through the
//! other way instead of evicting them (a plain direct-mapped cache loses
//! several percent of hits to exactly that pollution).
//!
//! A hit is honoured only if the cached generation token still equals
//! the owning registry shard's current generation
//! ([`ShardedRegistry::shard_gen`]): one atomic load from a dense,
//! L2-resident array, zero locks. Agents that haven't moved (and whose
//! shard neighbours haven't either) therefore resolve without ever
//! touching a lock; any write to the shard conservatively sends the next
//! lookup back to the sharded map, which re-caches under the new
//! generation. This is the same stamp-revalidate idiom as `hashtree`'s
//! compiled directory, applied to the live runtime's routing table.
//!
//! The token is the low 32 bits of the shard generation. A false hit
//! needs the shard to take an exact multiple of 2^32 writes between two
//! visits to the same slot, and even then the result is indistinguishable
//! from the staleness every locate inherently has (an agent may migrate
//! the instant after a perfectly-validated read): the hint points at a
//! node the agent left, the message bounces, and the sender hears about
//! it via `on_delivery_failed`. Nothing is silently dropped.
//!
//! Each cache belongs to exactly one thread (a node loop or a
//! [`LiveHandle`](super::LiveHandle)), so it needs no interior mutability.

use agentrack_sim::NodeId;

use crate::id::AgentId;

use super::registry::{ShardedRegistry, Whereabouts};

/// Packed to 16 bytes so a cache line holds two full sets.
#[derive(Clone, Copy)]
struct Slot {
    /// `u64::MAX` marks an empty slot (real agent ids never reach it:
    /// it is the external-sender sentinel, which is never registered).
    id: u64,
    /// Truncated shard-generation token (see module docs).
    gen: u32,
    node: NodeId,
}

const EMPTY: Slot = Slot {
    id: u64::MAX,
    gen: 0,
    node: NodeId::new(0),
};

/// A fixed-size, single-threaded cache of believed agent locations.
pub struct RouteCache {
    slots: Box<[Slot]>,
    /// Selects the *set*; a set is the slot pair `[2i, 2i + 1]`.
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl RouteCache {
    /// Creates a cache with `2^bits` slots (`2^(bits-1)` two-way sets);
    /// `bits == 0` disables caching entirely (every lookup misses).
    #[must_use]
    pub fn new(bits: u8) -> Self {
        let n = if bits == 0 {
            0
        } else {
            1usize << bits.clamp(1, 30)
        };
        RouteCache {
            slots: vec![EMPTY; n].into_boxed_slice(),
            set_mask: (n / 2).saturating_sub(1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Resolves `id` to a node: cache hit if either way of the set
    /// matches and its generation token is still current, otherwise the
    /// sharded-map path, re-caching stable (`Active`) routes. Returns
    /// `None` for unknown (never-registered or disposed) agents.
    #[inline]
    pub(crate) fn resolve(&mut self, id: AgentId, registry: &ShardedRegistry) -> Option<NodeId> {
        if !self.slots.is_empty() {
            let s = 2 * id.shard_of(self.set_mask);
            let gen = registry.shard_gen(id) as u32;
            let raw = id.raw();
            for slot in &self.slots[s..s + 2] {
                if slot.id == raw && slot.gen == gen {
                    self.hits += 1;
                    return Some(slot.node);
                }
            }
        }
        self.misses += 1;
        let (w, gen) = registry.get_with_gen(id);
        let w = w?;
        if let Whereabouts::Active(node) = w {
            // Creating/InTransit beliefs are moments from changing; caching
            // them would only pin a guaranteed-stale generation.
            if !self.slots.is_empty() {
                let s = 2 * id.shard_of(self.set_mask);
                let fresh = Slot {
                    id: id.raw(),
                    gen: gen as u32,
                    node,
                };
                self.slots[self.victim(s, id.raw(), registry)] = fresh;
            }
        }
        Some(w.node())
    }

    /// Picks which way of set `[s, s + 1]` to overwrite: a way already
    /// holding `raw`, an empty way, a way whose token went stale — and
    /// only then the second way, so one-off lookups churn through way 1
    /// while a still-valid hot route keeps way 0.
    fn victim(&self, s: usize, raw: u64, registry: &ShardedRegistry) -> usize {
        for (i, slot) in self.slots[s..s + 2].iter().enumerate() {
            if slot.id == raw || slot.id == u64::MAX {
                return s + i;
            }
        }
        for (i, slot) in self.slots[s..s + 2].iter().enumerate() {
            if slot.gen != registry.shard_gen(AgentId::new(slot.id)) as u32 {
                return s + i;
            }
        }
        s + 1
    }

    /// Lookups answered from a slot without touching a lock.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that took the sharded-map path.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache")
            .field("slots", &self.slots.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_stay_packed() {
        assert_eq!(std::mem::size_of::<Slot>(), 16, "two sets per cache line");
    }

    #[test]
    fn second_lookup_of_an_unmoved_agent_is_a_hit() {
        let registry = ShardedRegistry::new(64);
        let id = AgentId::new(7);
        registry.insert(id, Whereabouts::Active(NodeId::new(3)));
        let mut cache = RouteCache::new(10);
        assert_eq!(cache.resolve(id, &registry), Some(NodeId::new(3)));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(cache.resolve(id, &registry), Some(NodeId::new(3)));
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 1),
            "steady state: no lock path"
        );
    }

    #[test]
    fn migration_invalidates_via_the_generation_token() {
        let registry = ShardedRegistry::new(64);
        let id = AgentId::new(9);
        registry.insert(id, Whereabouts::Active(NodeId::new(1)));
        let mut cache = RouteCache::new(10);
        cache.resolve(id, &registry);
        registry.insert(id, Whereabouts::Active(NodeId::new(2)));
        assert_eq!(
            cache.resolve(id, &registry),
            Some(NodeId::new(2)),
            "stale slot must lose to the bumped generation"
        );
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn transient_phases_are_answered_but_not_cached() {
        let registry = ShardedRegistry::new(64);
        let id = AgentId::new(11);
        registry.insert(id, Whereabouts::InTransit(NodeId::new(4)));
        let mut cache = RouteCache::new(10);
        assert_eq!(cache.resolve(id, &registry), Some(NodeId::new(4)));
        assert_eq!(cache.resolve(id, &registry), Some(NodeId::new(4)));
        assert_eq!(cache.hits(), 0, "in-transit beliefs never come from a slot");
    }

    #[test]
    fn zero_bits_disables_the_cache() {
        let registry = ShardedRegistry::new(4);
        let id = AgentId::new(1);
        registry.insert(id, Whereabouts::Active(NodeId::new(0)));
        let mut cache = RouteCache::new(0);
        cache.resolve(id, &registry);
        cache.resolve(id, &registry);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn unknown_agents_resolve_to_none() {
        let registry = ShardedRegistry::new(4);
        let mut cache = RouteCache::new(4);
        assert_eq!(cache.resolve(AgentId::new(404), &registry), None);
    }

    #[test]
    fn a_colliding_one_off_does_not_evict_a_live_hot_route() {
        let registry = ShardedRegistry::new(1);
        // With one set, every id collides into the same pair of ways.
        let hot = AgentId::new(1);
        registry.insert(hot, Whereabouts::Active(NodeId::new(1)));
        for raw in 2..10 {
            registry.insert(AgentId::new(raw), Whereabouts::Active(NodeId::new(2)));
        }
        let mut cache = RouteCache::new(1);
        cache.resolve(hot, &registry);
        for raw in 2..10 {
            cache.resolve(AgentId::new(raw), &registry);
        }
        // The cold stream churned through the second way; the hot route's
        // token is still current, so it kept the first way and still hits.
        assert_eq!(cache.resolve(hot, &registry), Some(NodeId::new(1)));
        assert_eq!(cache.hits(), 1, "hot route kept its way");
    }
}
