//! The live runtime: the same [`Agent`] behaviours on real threads.
//!
//! Where [`SimPlatform`](crate::SimPlatform) executes agents on a virtual
//! clock for deterministic experiments, [`LivePlatform`] runs one OS
//! thread per node, connected by channels: messages really travel between
//! threads, migrations really move the boxed behaviour to another thread,
//! and timers fire on the wall clock. The paper's implementation ran on
//! Aglets over a real LAN; this runtime is the analogous "for real"
//! deployment mode, sized for millions of registered agents (see the
//! `live_bench` binary in `agentrack-bench` for the headline
//! locates/sec + moves/sec numbers and `DESIGN.md` §13 for the design).
//!
//! Semantics match the simulated runtime:
//!
//! * messages are addressed to `(agent, node)`; if the agent is not there,
//!   the sender's `on_delivery_failed` fires;
//! * timers follow their agent across migrations;
//! * disposal runs `on_dispose` and drops the behaviour;
//! * the books always balance: by the time [`LivePlatform::shutdown`]
//!   returns, every message counted sent has been counted delivered or
//!   failed — shutdown joins the node threads and then bounces whatever
//!   was still queued behind their `Shutdown` markers.
//!
//! Costs differ: latencies are whatever the machine delivers (no modelled
//! network). Runs are therefore *timing*-nondeterministic — message
//! interleavings vary run to run, so use the simulated runtime for
//! experiments that must reproduce bit-for-bit — but every run obeys the
//! delivery/bounce/migration semantics above at every tuning setting.
//!
//! ## Scaling machinery and its knobs ([`LiveConfig`])
//!
//! Three mechanisms keep the hot paths off global synchronisation; all
//! are tunable through [`LiveConfig`] and none changes semantics:
//!
//! * **Sharded registry** (`shards`, default auto = 1024): the
//!   `AgentId -> Whereabouts` map is split into power-of-two shards
//!   picked by [`AgentId::shard_of`], each under its own lock with a
//!   generation stamp ([`registry::ShardedRegistry`]). `shards = 1`
//!   reproduces the old single-`RwLock` registry.
//! * **Batched channels** (`batch_max`, default 64; `drain_budget`,
//!   default 256): senders coalesce per-destination `Deliver` bursts
//!   into one `DeliverBatch` channel op, flushed at the size cap or as
//!   soon as the sender goes idle — a lone message never waits
//!   ([`batch::OutBatch`]). Node threads drain up to `drain_budget`
//!   queued messages per wake-up before flushing their own output.
//!   `batch_max = 1` reproduces one-channel-op-per-message.
//! * **Route caching** (`route_cache_bits`, default 20): each
//!   [`LiveHandle`] revalidates cached `(agent, node)` routes against
//!   the owning shard's generation with a single atomic load, so
//!   steady-state lookups of agents that haven't moved take zero locks
//!   ([`route_cache::RouteCache`]). `route_cache_bits = 0` disables it.
//!
//! A node thread whose behaviour panics is contained, not leaked: the
//! panic is caught at the node loop, the node is marked dead, its queued
//! and future deliveries bounce back to their senders'
//! `on_delivery_failed`, and its residents disappear from the registry
//! (their `on_dispose` does *not* run — the node died with them).
//! Pending timers whose agents already migrated elsewhere are not lost
//! with the dead node's heap: they hop, deadline intact, to wherever
//! their agent now is.

mod batch;
mod registry;
mod route_cache;
mod telemetry;

use std::collections::{BinaryHeap, HashMap};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, SendError, Sender};

use agentrack_sim::{NodeId, SimDuration, SimRng, SimTime, TraceSink};

use crate::agent::{Action, Agent, AgentCtx};
use crate::config::LiveConfig;
use crate::id::{AgentId, TimerId};
use crate::payload::Payload;

use batch::{DeliverItem, OutBatch};
use registry::{ShardedRegistry, Whereabouts};
pub use route_cache::RouteCache;
use telemetry::Telemetry;
pub use telemetry::{NodeHealth, OpKind, SlowOp, TelemetrySnapshot};

/// The `from` id used for messages injected from outside the agent world
/// (no failure notice can be routed back to it).
const EXTERNAL: AgentId = AgentId::new(u64::MAX);

/// Why a behaviour is being handed to a node thread.
enum WelcomeKind {
    Creation,
    Arrival,
}

enum NodeMsg {
    Deliver(DeliverItem),
    /// A coalesced burst of deliveries for this node (see [`batch`]).
    DeliverBatch(Vec<DeliverItem>),
    /// A delivery failure notice for `notify`.
    Failure {
        notify: AgentId,
        to: AgentId,
        node: NodeId,
        payload: Payload,
    },
    /// A behaviour arriving at this node (creation or migration).
    Welcome {
        id: AgentId,
        behavior: Box<dyn Agent>,
        kind: WelcomeKind,
        /// When the behaviour was shipped (ns since platform start);
        /// `0` when telemetry is off. Feeds the migration-latency
        /// histogram for arrivals.
        sent_ns: u64,
    },
    /// A timer following its agent to this node: either it fired where
    /// the agent no longer lives, or its node died while the agent was
    /// already elsewhere. `at` preserves the original deadline so a
    /// forwarded unexpired timer does not fire early.
    TimerHop {
        agent: AgentId,
        timer: TimerId,
        at: Instant,
    },
    Shutdown,
}

/// Global activity counters. Delivered/failed live in *per-node* cells
/// instead ([`telemetry::NodeCells`]): they are the counters the
/// conservation invariant is about, so the platform totals are defined
/// as the sum over nodes rather than kept in a second register that
/// could drift (it also spreads the two hottest counters across node
/// cache lines).
#[derive(Default)]
struct LiveCounters {
    messages_sent: AtomicU64,
    migrations: AtomicU64,
    agents_created: AtomicU64,
    agents_activated: AtomicU64,
    agents_disposed: AtomicU64,
    nodes_dead: AtomicU64,
}

/// Snapshot of live-runtime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Messages submitted by agents.
    pub messages_sent: u64,
    /// Messages whose handler ran.
    pub messages_delivered: u64,
    /// Messages that bounced.
    pub messages_failed: u64,
    /// Migrations performed.
    pub migrations: u64,
    /// Agents created.
    pub agents_created: u64,
    /// Agents whose `on_create` has run (creation welcomes processed).
    pub agents_activated: u64,
    /// Agents disposed.
    pub agents_disposed: u64,
    /// Node threads killed by a panicking behaviour.
    pub nodes_dead: u64,
    /// Route-cache lookups answered without locking, summed over every
    /// [`LiveHandle`] that has flushed or been dropped.
    pub route_cache_hits: u64,
    /// Route-cache lookups that took the sharded-map path, likewise.
    pub route_cache_misses: u64,
    /// Structured-trace records lost to ring overflow (see
    /// [`TraceSink::dropped`]); a shutdown with a non-zero count warns
    /// on stderr.
    pub trace_dropped: u64,
}

struct Shared {
    senders: Vec<Sender<NodeMsg>>,
    registry: ShardedRegistry,
    /// `dead[n]` is set when node `n`'s thread died to a behaviour panic;
    /// deliveries addressed to it bounce immediately at the sender.
    dead: Box<[AtomicBool]>,
    next_agent_id: AtomicU64,
    counters: LiveCounters,
    telemetry: Telemetry,
    start: Instant,
    trace: TraceSink,
    config: LiveConfig,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns())
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The current time if telemetry wants stamps, else the 0 sentinel —
    /// the hot paths' "maybe read the clock" in one branch.
    fn stamp_ns(&self) -> u64 {
        if self.telemetry.enabled {
            self.now_ns()
        } else {
            0
        }
    }

    fn node_dead(&self, node: NodeId) -> bool {
        self.dead[node.index()].load(Ordering::Acquire)
    }

    /// Ships a burst of deliveries to `dest` as one channel operation —
    /// or bounces the lot if the destination cannot take it.
    fn ship(&self, dest: NodeId, mut items: Vec<DeliverItem>) {
        if self.telemetry.enabled {
            self.telemetry
                .batch_occupancy
                .record_value(items.len() as u64);
        }
        let msg = if items.len() == 1 {
            NodeMsg::Deliver(items.pop().expect("len checked"))
        } else {
            NodeMsg::DeliverBatch(items)
        };
        self.send_to_node(dest, msg);
    }

    fn send_to_node(&self, node: NodeId, msg: NodeMsg) {
        if self.node_dead(node) {
            self.discard(node, msg);
            return;
        }
        // The receiver can only be gone once the platform itself has been
        // torn down (node threads park their receivers in their join
        // handles until the final shutdown drain, so mere thread exit
        // never closes a channel). Take the message back out of the
        // error and account for it instead of losing it.
        if let Err(SendError(msg)) = self.senders[node.index()].send(msg) {
            self.discard(node, msg);
        } else if self.telemetry.enabled {
            self.telemetry.nodes[node.index()]
                .chan_in
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accounts for a message that can never be processed at `node` (the
    /// node is dead, or the platform has shut down): deliveries bounce to
    /// their senders so `sent == delivered + failed` keeps holding, a
    /// behaviour in flight is unregistered so lookups say "gone" instead
    /// of pointing at a thread that will never answer, and the uncounted
    /// rest (failure notices, timer hops, shutdown markers) is droppable.
    fn discard(&self, node: NodeId, msg: NodeMsg) {
        match msg {
            NodeMsg::Deliver(item) => self.fail_delivery(node, item),
            NodeMsg::DeliverBatch(items) => {
                for item in items {
                    self.fail_delivery(node, item);
                }
            }
            NodeMsg::Welcome { id, .. } => self.registry.remove(id),
            NodeMsg::Failure { .. } | NodeMsg::TimerHop { .. } | NodeMsg::Shutdown => {}
        }
    }

    /// Counts a failed delivery and, for agent senders, routes the
    /// failure notice back to wherever the sender now is.
    fn fail_delivery(&self, at: NodeId, item: DeliverItem) {
        self.bounce(item.from, item.to, at, item.payload);
    }

    /// Routes a delivery failure back to the sender, wherever it now is.
    /// The failure is charged to `node` — the node at which delivery was
    /// attempted (or would have been) — so per-node failure counts sum
    /// to the platform total with each bounce counted exactly once.
    fn bounce(&self, from: AgentId, to: AgentId, node: NodeId, payload: Payload) {
        self.telemetry.nodes[node.index()]
            .failed
            .fetch_add(1, Ordering::Relaxed);
        if from == EXTERNAL {
            return;
        }
        if let Some(Whereabouts::Active(sender_node)) = self.registry.get(from) {
            if self.node_dead(sender_node) {
                return; // the would-be notifee died too: drop the notice
            }
            self.send_to_node(
                sender_node,
                NodeMsg::Failure {
                    notify: from,
                    to,
                    node,
                    payload,
                },
            );
        }
    }
}

/// A multi-threaded agent platform: one thread per node.
///
/// # Examples
///
/// ```
/// use agentrack_platform::{Agent, AgentCtx, LivePlatform, NodeId, Payload};
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
///
/// struct Greeter(Arc<Mutex<Vec<String>>>);
/// impl Agent for Greeter {
///     fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: agentrack_platform::AgentId, payload: &Payload) {
///         self.0.lock().unwrap().push(payload.decode().unwrap());
///     }
/// }
///
/// let platform = LivePlatform::new(2);
/// let log = Arc::new(Mutex::new(Vec::new()));
/// let greeter = platform.spawn(Box::new(Greeter(log.clone())), NodeId::new(1));
/// platform.post(greeter, Payload::encode(&"hello across threads"));
/// platform.run_for(Duration::from_millis(100));
/// platform.shutdown();
/// assert_eq!(log.lock().unwrap().as_slice(), ["hello across threads"]);
/// ```
pub struct LivePlatform {
    shared: Arc<Shared>,
    /// Each node thread returns its channel receiver when it exits, so
    /// the channel stays open (sends keep succeeding, nothing is dropped
    /// on the floor) until [`halt`](LivePlatform::halt) has joined the
    /// thread and drained the backlog into the failure accounting.
    handles: Vec<JoinHandle<Receiver<NodeMsg>>>,
    /// Stop signal + join handle of the telemetry aggregator thread
    /// (present only when telemetry is on).
    aggregator: Option<(Sender<()>, JoinHandle<()>)>,
    node_count: u32,
}

impl LivePlatform {
    /// Starts `node_count` node threads with default tuning.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn new(node_count: u32) -> Self {
        Self::with_config(node_count, LiveConfig::default(), TraceSink::disabled())
    }

    /// Starts `node_count` node threads with a structured-event trace
    /// sink visible to every handler through [`AgentCtx::trace`]. The
    /// sink is thread-safe; events from different nodes interleave in
    /// wall-clock arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn with_trace(node_count: u32, trace: TraceSink) -> Self {
        Self::with_config(node_count, LiveConfig::default(), trace)
    }

    /// Starts `node_count` node threads with explicit [`LiveConfig`]
    /// tuning (sharding, batching, route caching) and a trace sink.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    #[must_use]
    pub fn with_config(node_count: u32, config: LiveConfig, trace: TraceSink) -> Self {
        assert!(node_count > 0, "live platform needs at least one node");
        let mut senders = Vec::with_capacity(node_count as usize);
        let mut receivers: Vec<Receiver<NodeMsg>> = Vec::with_capacity(node_count as usize);
        for _ in 0..node_count {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            registry: ShardedRegistry::new(config.effective_shards()),
            dead: (0..node_count)
                .map(|_| AtomicBool::new(false))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next_agent_id: AtomicU64::new(0),
            counters: LiveCounters::default(),
            telemetry: Telemetry::new(node_count as usize, &config),
            start: Instant::now(),
            trace,
            config,
        });
        let aggregator = if config.telemetry {
            let (stop_tx, stop_rx) = unbounded::<()>();
            let agg_shared = Arc::clone(&shared);
            let interval = Duration::from_millis(config.telemetry_interval_ms.max(1));
            let handle = std::thread::Builder::new()
                .name("agentrack-telemetry".into())
                .spawn(move || loop {
                    match stop_rx.recv_deadline(Instant::now() + interval) {
                        Err(RecvTimeoutError::Timeout) => {
                            let snap = telemetry::snapshot(&agg_shared);
                            *agg_shared.telemetry.latest.lock() = Some(snap);
                        }
                        _ => return, // stop signal, or the platform is gone
                    }
                })
                .expect("spawn telemetry aggregator");
            Some((stop_tx, handle))
        } else {
            None
        };
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                let node = NodeId::new(i as u32);
                std::thread::Builder::new()
                    .name(format!("agentrack-{node}"))
                    .spawn(move || node_loop(node, rx, shared))
                    .expect("spawn node thread")
            })
            .collect();
        LivePlatform {
            shared,
            handles,
            aggregator,
            node_count,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// The tuning this platform runs with.
    #[must_use]
    pub fn config(&self) -> LiveConfig {
        self.shared.config
    }

    /// The id the next externally spawned agent will receive.
    #[must_use]
    pub fn peek_next_agent_id(&self) -> u64 {
        self.shared.next_agent_id.load(Ordering::Relaxed)
    }

    /// Creates an agent at `node`; its `on_create` runs on that node's
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn spawn(&self, behavior: Box<dyn Agent>, node: NodeId) -> AgentId {
        assert!(node.raw() < self.node_count, "spawn at unknown node");
        let id = AgentId::new(self.shared.next_agent_id.fetch_add(1, Ordering::Relaxed));
        self.shared.registry.insert(id, Whereabouts::Creating(node));
        self.shared
            .counters
            .agents_created
            .fetch_add(1, Ordering::Relaxed);
        self.shared.send_to_node(
            node,
            NodeMsg::Welcome {
                id,
                behavior,
                kind: WelcomeKind::Creation,
                sent_ns: 0,
            },
        );
        id
    }

    /// Injects a message from outside the agent world (no failure notice
    /// comes back). Returns `false` if the target is unknown.
    ///
    /// Each call is one channel operation; external drivers that inject
    /// at rate should use a [`LiveHandle`], which batches and caches.
    pub fn post(&self, to: AgentId, payload: Payload) -> bool {
        let Some(w) = self.shared.registry.get(to) else {
            return false;
        };
        self.shared
            .counters
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        self.shared.ship(
            w.node(),
            vec![DeliverItem {
                to,
                from: EXTERNAL,
                payload,
                enqueued_ns: self.shared.stamp_ns(),
            }],
        );
        true
    }

    /// A sender/locator handle for one external driver thread, with its
    /// own route cache and outgoing batch buffer. Cheap to create; make
    /// one per thread.
    #[must_use]
    pub fn handle(&self) -> LiveHandle {
        LiveHandle {
            cache: RouteCache::new(self.shared.config.route_cache_bits),
            out: OutBatch::new(self.node_count as usize, self.shared.config.batch_max),
            telemetry_on: self.shared.telemetry.enabled,
            locate_tick: 0,
            published_hits: 0,
            published_misses: 0,
            shared: Arc::clone(&self.shared),
        }
    }

    /// The node an agent currently occupies, if it exists.
    #[must_use]
    pub fn agent_node(&self, id: AgentId) -> Option<NodeId> {
        self.shared.registry.get(id).map(Whereabouts::node)
    }

    /// Number of live agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.shared.registry.len()
    }

    /// Lets the world run for a wall-clock duration.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Activity counters so far. Delivered/failed are summed from the
    /// per-node cells — the same cells a [`TelemetrySnapshot`] reports —
    /// so the two views agree at quiesce by construction.
    #[must_use]
    pub fn stats(&self) -> LiveStats {
        let c = &self.shared.counters;
        let t = &self.shared.telemetry;
        LiveStats {
            messages_sent: c.messages_sent.load(Ordering::Relaxed),
            messages_delivered: t
                .nodes
                .iter()
                .map(|n| n.delivered.load(Ordering::Relaxed))
                .sum(),
            messages_failed: t
                .nodes
                .iter()
                .map(|n| n.failed.load(Ordering::Relaxed))
                .sum(),
            migrations: c.migrations.load(Ordering::Relaxed),
            agents_created: c.agents_created.load(Ordering::Relaxed),
            agents_activated: c.agents_activated.load(Ordering::Relaxed),
            agents_disposed: c.agents_disposed.load(Ordering::Relaxed),
            nodes_dead: c.nodes_dead.load(Ordering::Relaxed),
            route_cache_hits: t.route_hits.load(Ordering::Relaxed),
            route_cache_misses: t.route_misses.load(Ordering::Relaxed),
            trace_dropped: self.shared.trace.dropped(),
        }
    }

    /// Stops all node threads and returns the final statistics.
    ///
    /// The returned stats always reconcile: `messages_sent ==
    /// messages_delivered + messages_failed`. Messages still queued when
    /// a node reached its `Shutdown` marker (or that raced a dying node)
    /// are bounced — counted failed — during the final drain.
    pub fn shutdown(mut self) -> LiveStats {
        self.halt();
        self.stats()
    }

    /// Like [`shutdown`](LivePlatform::shutdown), but also returns the
    /// final [`TelemetrySnapshot`] — taken *after* the node threads have
    /// joined and the backlog has been drained, so it is exact: its
    /// totals equal the returned stats, and its per-node rows sum to
    /// those totals. `None` if telemetry was off.
    pub fn shutdown_telemetry(mut self) -> (LiveStats, Option<TelemetrySnapshot>) {
        self.halt();
        let snap = self
            .shared
            .config
            .telemetry
            .then(|| telemetry::snapshot(&self.shared));
        (self.stats(), snap)
    }

    /// A fresh [`TelemetrySnapshot`] built now, on the calling thread.
    /// `None` when telemetry is off. Counters in the snapshot are
    /// per-node-consistent (totals are sums of the rows returned) and
    /// monotonic between calls.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.shared
            .config
            .telemetry
            .then(|| telemetry::snapshot(&self.shared))
    }

    /// The aggregator thread's most recently published snapshot, if it
    /// has published one yet. Cheaper than building a fresh one when a
    /// `telemetry_interval_ms`-stale view is acceptable.
    #[must_use]
    pub fn latest_telemetry(&self) -> Option<TelemetrySnapshot> {
        self.shared.telemetry.latest.lock().clone()
    }

    /// Sends every node its shutdown marker, joins the threads, then
    /// drains what their channels still hold so the accounting closes.
    fn halt(&mut self) {
        if self.handles.is_empty() {
            return; // already halted (shutdown() followed by Drop)
        }
        // Stop the aggregator first so no snapshot races the teardown's
        // dead-flag flips below; the final exact snapshot is published
        // once the books are closed.
        if let Some((stop, handle)) = self.aggregator.take() {
            let _ = stop.send(());
            let _ = handle.join();
        }
        for (i, sender) in self.shared.senders.iter().enumerate() {
            // Count the marker as enqueued: whoever takes it out (the
            // node loop, or the final drain below) counts it back out,
            // and the per-node channel books close exactly.
            if sender.send(NodeMsg::Shutdown).is_ok() && self.shared.telemetry.enabled {
                self.shared.telemetry.nodes[i]
                    .chan_in
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let receivers: Vec<_> = self.handles.drain(..).map(JoinHandle::join).collect();
        // All threads are gone: nothing will ever be processed again.
        // Mark every node dead so late senders (a still-live LiveHandle,
        // say) bounce at the send site rather than filling dead queues.
        for dead in self.shared.dead.iter() {
            dead.store(true, Ordering::Release);
        }
        // Bounce the leftovers: deliveries queued behind a Shutdown (or
        // that raced a dying node's drain) were counted sent, so they
        // must be counted failed for the books to balance.
        for (i, rx) in receivers.into_iter().enumerate() {
            let Ok(rx) = rx else {
                continue; // the node loop itself crashed: nothing to drain
            };
            let node = NodeId::new(i as u32);
            while let Ok(msg) = rx.try_recv() {
                if self.shared.telemetry.enabled {
                    self.shared.telemetry.nodes[i]
                        .chan_out
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.shared.discard(node, msg);
            }
        }
        let dropped = self.shared.trace.dropped();
        if dropped > 0 {
            eprintln!(
                "warning: live trace ring dropped {dropped} records to overflow \
                 (grow the TraceSink capacity to keep them)"
            );
        }
        if self.shared.telemetry.enabled {
            let snap = telemetry::snapshot(&self.shared);
            *self.shared.telemetry.latest.lock() = Some(snap);
        }
    }
}

impl std::fmt::Debug for LivePlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePlatform")
            .field("nodes", &self.node_count)
            .field("agents", &self.agent_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for LivePlatform {
    fn drop(&mut self) {
        self.halt();
    }
}

/// An external driver's sending/locating handle: a route cache plus an
/// outgoing batch buffer over the platform's shared state.
///
/// Make one per driver thread (it is `Send` but deliberately not
/// `Clone`/`Sync`: the cache and buffer are single-owner by design).
/// Dropping the handle flushes anything still buffered.
///
/// # Examples
///
/// ```
/// use agentrack_platform::{Agent, LivePlatform, NodeId, Payload};
///
/// struct Sink;
/// impl Agent for Sink {}
///
/// let platform = LivePlatform::new(2);
/// let id = platform.spawn(Box::new(Sink), NodeId::new(1));
/// let mut handle = platform.handle();
/// assert_eq!(handle.locate(id), Some(NodeId::new(1)));
/// assert!(handle.post(id, Payload::encode(&1u32)));
/// handle.flush();
/// platform.shutdown();
/// ```
pub struct LiveHandle {
    cache: RouteCache,
    out: OutBatch,
    /// Cached `config.telemetry` so the hot paths branch on a local.
    telemetry_on: bool,
    /// Locate call counter driving the 1-in-`LOCATE_SAMPLE_EVERY`
    /// latency sampling (the locate fast path is itself only tens of
    /// nanoseconds — stamping every call would dominate it).
    locate_tick: u64,
    /// Cache hit/miss counts already folded into the platform totals by
    /// earlier [`flush`](LiveHandle::flush) calls.
    published_hits: u64,
    published_misses: u64,
    shared: Arc<Shared>,
}

impl LiveHandle {
    /// Where the registry believes `id` is — from the route cache when
    /// the generation token proves the slot current, otherwise through
    /// the sharded map. `None` if the agent is unknown or disposed.
    pub fn locate(&mut self, id: AgentId) -> Option<NodeId> {
        if self.telemetry_on {
            self.locate_tick = self.locate_tick.wrapping_add(1);
            if self
                .locate_tick
                .is_multiple_of(telemetry::LOCATE_SAMPLE_EVERY)
            {
                let t0 = Instant::now();
                let found = self.cache.resolve(id, &self.shared.registry);
                self.shared
                    .telemetry
                    .locate_ns
                    .record_value(t0.elapsed().as_nanos() as u64);
                return found;
            }
        }
        self.cache.resolve(id, &self.shared.registry)
    }

    /// Queues a message to `id` from outside the agent world (no failure
    /// notice comes back; a stale route costs a bounce, counted in
    /// [`LiveStats::messages_failed`]). Ships when the per-destination
    /// batch cap is reached or on [`flush`](LiveHandle::flush)/drop.
    /// Returns `false` if the target is unknown.
    pub fn post(&mut self, to: AgentId, payload: Payload) -> bool {
        let Some(node) = self.cache.resolve(to, &self.shared.registry) else {
            return false;
        };
        self.shared
            .counters
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        self.out.push(
            &self.shared,
            node,
            DeliverItem {
                to,
                from: EXTERNAL,
                payload,
                enqueued_ns: self.shared.stamp_ns(),
            },
        );
        true
    }

    /// Ships every buffered message now, and folds this handle's
    /// route-cache hit/miss counts into the platform totals
    /// ([`LiveStats::route_cache_hits`]/`route_cache_misses`) so they
    /// outlive the handle.
    pub fn flush(&mut self) {
        self.out.flush(&self.shared);
        let (hits, misses) = (self.cache.hits(), self.cache.misses());
        let t = &self.shared.telemetry;
        t.route_hits
            .fetch_add(hits - self.published_hits, Ordering::Relaxed);
        t.route_misses
            .fetch_add(misses - self.published_misses, Ordering::Relaxed);
        self.published_hits = hits;
        self.published_misses = misses;
    }

    /// Route-cache lookups answered without locking.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Route-cache lookups that took the sharded-map path.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for LiveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveHandle")
            .field("cache", &self.cache)
            .field("out", &self.out)
            .finish()
    }
}

/// A pending wall-clock timer, ordered soonest-first in a max-heap.
struct PendingTimer {
    at: Instant,
    agent: AgentId,
    timer: TimerId,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at) // reversed: earliest first
    }
}

/// Everything a node thread owns.
struct NodeState {
    node: NodeId,
    residents: HashMap<AgentId, Box<dyn Agent>>,
    timers: BinaryHeap<PendingTimer>,
    rng: SimRng,
    out: OutBatch,
    next_agent_id: u64,
    next_timer_id: u64,
}

/// What a processed message asks the node loop to do next.
enum Flow {
    Continue,
    Shutdown,
    /// A behaviour panicked: contain it (mark the node dead, bounce the
    /// backlog) and exit the thread.
    Dead,
}

/// Runs one node until shutdown or death. Returns the channel receiver
/// (instead of dropping it) so the platform can drain and account for
/// whatever was still queued when the thread stopped processing.
fn node_loop(node: NodeId, rx: Receiver<NodeMsg>, shared: Arc<Shared>) -> Receiver<NodeMsg> {
    let mut state = NodeState {
        node,
        residents: HashMap::new(),
        timers: BinaryHeap::new(),
        rng: SimRng::seed_from(0x11fe ^ u64::from(node.raw())),
        out: OutBatch::new(shared.senders.len(), shared.config.batch_max),
        // Node-local id allocation from a per-node range (the shared counter
        // covers external spawns, which stay far below these offsets).
        next_agent_id: (u64::from(node.raw()) + 1) << 40,
        next_timer_id: (u64::from(node.raw()) + 1) << 40,
    };
    let tele = shared.telemetry.enabled;

    loop {
        // Every wake-up re-stamps the heartbeat; an instrumented idle
        // loop's bounded wait below guarantees a fresh stamp at least
        // every half stall threshold, so a stale heartbeat can only mean
        // a handler that will not return.
        if tele {
            let cells = &shared.telemetry.nodes[node.index()];
            cells.heartbeat_ns.store(shared.now_ns(), Ordering::Relaxed);
            cells.wakeups.fetch_add(1, Ordering::Relaxed);
        }
        // Fire due timers, then wait for the next message or deadline.
        let now = Instant::now();
        while state.timers.peek().is_some_and(|t| t.at <= now) {
            let t = state.timers.pop().expect("peeked");
            if state.residents.contains_key(&t.agent) {
                let (due_ns, started_ns) = if tele {
                    let due =
                        t.at.checked_duration_since(shared.start)
                            .map_or(0, |d| d.as_nanos() as u64);
                    (due, shared.now_ns())
                } else {
                    (0, 0)
                };
                if invoke(&shared, &mut state, t.agent, |a, ctx| {
                    a.on_timer(ctx, t.timer)
                })
                .is_err()
                {
                    return die(&shared, state, rx);
                }
                if tele {
                    shared
                        .telemetry
                        .timer_lag_ns
                        .record_value(started_ns.saturating_sub(due_ns));
                    shared.telemetry.flight.record(SlowOp {
                        kind: OpKind::Timer,
                        node: node.raw(),
                        agent: t.agent.raw(),
                        enqueued_ns: due_ns,
                        started_ns,
                        ended_ns: shared.now_ns(),
                    });
                }
            } else {
                // The agent moved (or is mid-flight): forward the timer.
                match shared.registry.get(t.agent) {
                    Some(Whereabouts::Active(n)) if n != node => shared.send_to_node(
                        n,
                        NodeMsg::TimerHop {
                            agent: t.agent,
                            timer: t.timer,
                            at: t.at,
                        },
                    ),
                    Some(Whereabouts::InTransit(_) | Whereabouts::Creating(_)) => {
                        state.timers.push(PendingTimer {
                            at: Instant::now() + Duration::from_millis(1),
                            agent: t.agent,
                            timer: t.timer,
                        });
                    }
                    _ => {} // disposed, or stale local state: drop
                }
            }
        }

        // About to go idle (block on the channel): ship everything the
        // timer handlers above queued, or it would wait for the next
        // inbound message to flush it.
        state.out.flush(&shared);

        // Instrumented loops never block unboundedly: capping the wait
        // at half the stall threshold keeps the heartbeat fresh while
        // idle, so "stalled" can only mean stuck, not quiet.
        let hb_deadline = if tele {
            Some(Instant::now() + shared.telemetry.heartbeat_period())
        } else {
            None
        };
        let deadline = match (state.timers.peek().map(|t| t.at), hb_deadline) {
            (Some(t), Some(h)) => Some(t.min(h)),
            (Some(t), None) => Some(t),
            (None, h) => h,
        };
        let first = match deadline {
            Some(d) => match rx.recv_deadline(d) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return rx,
            },
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => return rx,
            },
        };

        // Drain a bounded burst: the first (blocking) receive plus up to
        // `drain_budget - 1` already-queued messages, coalescing channel
        // wake-ups. The budget bounds how long timers and our own output
        // batches can sit while a flood keeps the queue non-empty.
        let mut msg = first;
        let mut drained = 1usize;
        loop {
            if tele {
                shared.telemetry.nodes[node.index()]
                    .chan_out
                    .fetch_add(1, Ordering::Relaxed);
            }
            match process(&shared, &mut state, msg) {
                Flow::Continue => {}
                Flow::Shutdown => {
                    // Output queued by handlers that already completed is
                    // real, counted traffic: ship it before exiting. What
                    // is still *inbound* behind the Shutdown stays in the
                    // channel for the platform's final drain.
                    state.out.flush(&shared);
                    return rx;
                }
                Flow::Dead => {
                    return die(&shared, state, rx);
                }
            }
            if drained >= shared.config.drain_budget {
                if tele {
                    shared.telemetry.nodes[node.index()]
                        .drain_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            match rx.try_recv() {
                Ok(next) => {
                    msg = next;
                    drained += 1;
                }
                Err(_) => break,
            }
        }
        // Flush-on-idle: the burst is over (or the budget spent), so ship
        // everything our handlers queued. A single message therefore
        // still leaves in the same wake-up that produced it.
        state.out.flush(&shared);
    }
}

/// Handles one inbound message. Returns what the loop should do next.
fn process(shared: &Arc<Shared>, state: &mut NodeState, msg: NodeMsg) -> Flow {
    match msg {
        NodeMsg::Shutdown => Flow::Shutdown,
        NodeMsg::Welcome {
            id,
            behavior,
            kind,
            sent_ns,
        } => {
            state.residents.insert(id, behavior);
            shared.registry.insert(id, Whereabouts::Active(state.node));
            if matches!(kind, WelcomeKind::Creation) {
                shared
                    .counters
                    .agents_activated
                    .fetch_add(1, Ordering::Relaxed);
            }
            let stamped = sent_ns != 0 && shared.telemetry.enabled;
            let started_ns = if stamped { shared.now_ns() } else { 0 };
            match invoke(shared, state, id, |a, ctx| match kind {
                WelcomeKind::Creation => a.on_create(ctx),
                WelcomeKind::Arrival => a.on_arrival(ctx),
            }) {
                Ok(()) => {
                    if stamped {
                        let ended_ns = shared.now_ns();
                        shared
                            .telemetry
                            .move_ns
                            .record_value(ended_ns.saturating_sub(sent_ns));
                        shared.telemetry.flight.record(SlowOp {
                            kind: OpKind::Move,
                            node: state.node.raw(),
                            agent: id.raw(),
                            enqueued_ns: sent_ns,
                            started_ns,
                            ended_ns,
                        });
                    }
                    Flow::Continue
                }
                Err(()) => Flow::Dead,
            }
        }
        NodeMsg::Deliver(item) => deliver(shared, state, item),
        NodeMsg::DeliverBatch(items) => {
            let mut items = items.into_iter();
            for item in items.by_ref() {
                if let Flow::Dead = deliver(shared, state, item) {
                    // The rest of the batch can never be handled here:
                    // fail it back to the senders before dying.
                    for rest in items {
                        shared.fail_delivery(state.node, rest);
                    }
                    return Flow::Dead;
                }
            }
            Flow::Continue
        }
        NodeMsg::Failure {
            notify,
            to,
            node: failed_node,
            payload,
        } => {
            if state.residents.contains_key(&notify)
                && invoke(shared, state, notify, |a, ctx| {
                    a.on_delivery_failed(ctx, to, failed_node, &payload)
                })
                .is_err()
            {
                return Flow::Dead;
            }
            Flow::Continue
        }
        NodeMsg::TimerHop { agent, timer, at } => {
            state.timers.push(PendingTimer { at, agent, timer });
            Flow::Continue
        }
    }
}

/// Delivers one message to a resident, or bounces it.
fn deliver(shared: &Arc<Shared>, state: &mut NodeState, item: DeliverItem) -> Flow {
    let DeliverItem {
        to,
        from,
        payload,
        enqueued_ns,
    } = item;
    if state.residents.contains_key(&to) {
        shared.telemetry.nodes[state.node.index()]
            .delivered
            .fetch_add(1, Ordering::Relaxed);
        let stamped = enqueued_ns != 0 && shared.telemetry.enabled;
        let started_ns = if stamped { shared.now_ns() } else { 0 };
        match invoke(shared, state, to, |a, ctx| {
            a.on_message(ctx, from, &payload)
        }) {
            Ok(()) => {
                if stamped {
                    let ended_ns = shared.now_ns();
                    shared
                        .telemetry
                        .deliver_ns
                        .record_value(ended_ns.saturating_sub(enqueued_ns));
                    shared.telemetry.flight.record(SlowOp {
                        kind: OpKind::Deliver,
                        node: state.node.raw(),
                        agent: to.raw(),
                        enqueued_ns,
                        started_ns,
                        ended_ns,
                    });
                }
                Flow::Continue
            }
            Err(()) => Flow::Dead,
        }
    } else {
        shared.bounce(from, to, state.node, payload);
        Flow::Continue
    }
}

/// Contains a behaviour panic: marks the node dead, unregisters its
/// residents, ships the output of *completed* handlers, hops migrated
/// agents' pending timers to their current nodes, and fails the queued
/// backlog back to the senders, then lets the thread exit.
///
/// Draining is best-effort two-pass: senders observe the dead flag before
/// enqueueing, so after the flag is set and the queue runs dry twice with
/// a pause in between, a still-racing send has usually crossed the flag
/// check and bounces at the sender instead. The rare send that slips in
/// after the second pass is not lost — the receiver is handed back to the
/// platform, which drains and accounts for it at shutdown.
fn die(shared: &Arc<Shared>, mut state: NodeState, rx: Receiver<NodeMsg>) -> Receiver<NodeMsg> {
    shared.dead[state.node.index()].store(true, Ordering::Release);
    shared.counters.nodes_dead.fetch_add(1, Ordering::Relaxed);
    // Output already queued by handlers that completed normally is real:
    // ship it before anything else so no completed send is lost.
    state.out.flush(shared);
    // The node's residents died with it (no on_dispose: there is no
    // thread left to run it on). Unregister them so lookups answer
    // "gone" and future sends bounce at the sender.
    for id in state.residents.keys() {
        shared.registry.remove(*id);
    }
    // Pending timers whose agents already migrated (or are in flight)
    // elsewhere belong to agents that are still alive: hop them, with
    // their original deadline, to wherever the agent now is. Timers of
    // the residents just unregistered resolve to `None` and drop.
    for t in std::mem::take(&mut state.timers) {
        if let Some(w) = shared.registry.get(t.agent) {
            let dest = w.node();
            if dest != state.node && !shared.node_dead(dest) {
                shared.send_to_node(
                    dest,
                    NodeMsg::TimerHop {
                        agent: t.agent,
                        timer: t.timer,
                        at: t.at,
                    },
                );
            }
        }
    }
    for round in 0..2 {
        while let Ok(msg) = rx.try_recv() {
            if shared.telemetry.enabled {
                shared.telemetry.nodes[state.node.index()]
                    .chan_out
                    .fetch_add(1, Ordering::Relaxed);
            }
            shared.discard(state.node, msg);
        }
        if round == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    rx
}

/// Runs one handler and applies its requested actions.
///
/// Returns `Err(())` if the behaviour panicked; the panicking agent has
/// already been taken out of `residents` and its behaviour dropped — the
/// caller decides the node's fate.
fn invoke<F>(shared: &Arc<Shared>, state: &mut NodeState, id: AgentId, f: F) -> Result<(), ()>
where
    F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
{
    let Some(mut behavior) = state.residents.remove(&id) else {
        return Ok(());
    };
    let mut actions = Vec::new();
    {
        let mut ctx = AgentCtx {
            now: shared.now(),
            self_id: id,
            node: state.node,
            rng: &mut state.rng,
            actions: &mut actions,
            next_agent_id: &mut state.next_agent_id,
            next_timer_id: &mut state.next_timer_id,
            trace: &shared.trace,
            queued: SimDuration::ZERO,
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            f(behavior.as_mut(), &mut ctx);
        }));
        if caught.is_err() {
            // The handler died mid-flight: its requested actions are
            // abandoned wholesale (it never finished deciding them) and
            // its registry entry goes away with it.
            shared.registry.remove(id);
            return Err(());
        }
    }
    // First-wins structural rule (matches the simulated runtime): after a
    // dispatch the behaviour is gone from this thread, so a later dispose
    // is ignored; after a dispose every later action is ignored.
    let mut keep = Some(behavior);
    let mut departed = false;
    for action in actions {
        match action {
            Action::Send {
                to,
                node: dest,
                payload,
            } => {
                if dest.raw() >= shared.senders.len() as u32 {
                    continue;
                }
                shared
                    .counters
                    .messages_sent
                    .fetch_add(1, Ordering::Relaxed);
                state.out.push(
                    shared,
                    dest,
                    DeliverItem {
                        to,
                        from: id,
                        payload,
                        enqueued_ns: shared.stamp_ns(),
                    },
                );
            }
            Action::Dispatch { to } => {
                if to.raw() >= shared.senders.len() as u32 || keep.is_none() || departed {
                    continue;
                }
                if to == state.node {
                    continue; // staying put: nothing to transfer
                }
                let behavior = keep.take().expect("checked");
                departed = true;
                shared.registry.insert(id, Whereabouts::InTransit(to));
                shared.counters.migrations.fetch_add(1, Ordering::Relaxed);
                // Messages we queued for `to` earlier in this handler must
                // not be overtaken by the Welcome (the batch would arrive
                // after the agent already started running there — harmless
                // — but a reply addressed *back here* must not beat it).
                state.out.flush_node(shared, to);
                shared.send_to_node(
                    to,
                    NodeMsg::Welcome {
                        id,
                        behavior,
                        kind: WelcomeKind::Arrival,
                        sent_ns: shared.stamp_ns(),
                    },
                );
            }
            Action::SetTimer { timer, delay } => {
                state.timers.push(PendingTimer {
                    at: Instant::now() + Duration::from_nanos(delay.as_nanos()),
                    agent: id,
                    timer,
                });
            }
            Action::Create {
                id: new_id,
                node: dest,
                behavior,
            } => {
                if dest.raw() >= shared.senders.len() as u32 {
                    continue;
                }
                shared.registry.insert(new_id, Whereabouts::Creating(dest));
                shared
                    .counters
                    .agents_created
                    .fetch_add(1, Ordering::Relaxed);
                state.out.flush_node(shared, dest);
                shared.send_to_node(
                    dest,
                    NodeMsg::Welcome {
                        id: new_id,
                        behavior,
                        kind: WelcomeKind::Creation,
                        sent_ns: 0,
                    },
                );
            }
            Action::Dispose => {
                if departed {
                    continue; // the behaviour already left for another node
                }
                if let Some(mut behavior) = keep.take() {
                    let mut dispose_actions = Vec::new();
                    let mut ctx = AgentCtx {
                        now: shared.now(),
                        self_id: id,
                        node: state.node,
                        rng: &mut state.rng,
                        actions: &mut dispose_actions,
                        next_agent_id: &mut state.next_agent_id,
                        next_timer_id: &mut state.next_timer_id,
                        trace: &shared.trace,
                        queued: SimDuration::ZERO,
                    };
                    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        behavior.on_dispose(&mut ctx);
                    }));
                    if caught.is_err() {
                        shared.registry.remove(id);
                        return Err(());
                    }
                    // Farewell sends only; other actions are meaningless now.
                    for action in dispose_actions {
                        if let Action::Send {
                            to,
                            node: dest,
                            payload,
                        } = action
                        {
                            if dest.raw() < shared.senders.len() as u32 {
                                shared
                                    .counters
                                    .messages_sent
                                    .fetch_add(1, Ordering::Relaxed);
                                state.out.push(
                                    shared,
                                    dest,
                                    DeliverItem {
                                        to,
                                        from: id,
                                        payload,
                                        enqueued_ns: shared.stamp_ns(),
                                    },
                                );
                            }
                        }
                    }
                    shared.registry.remove(id);
                    shared
                        .counters
                        .agents_disposed
                        .fetch_add(1, Ordering::Relaxed);
                    // The agent is gone; ignore later actions.
                    return Ok(());
                }
            }
        }
    }
    if let Some(behavior) = keep {
        state.residents.insert(id, behavior);
    }
    Ok(())
}
