//! Live-runtime telemetry: lock-free per-node instrumentation, periodic
//! health snapshots, and a slow-op flight recorder.
//!
//! The live runtime's hot paths run at tens of millions of operations per
//! second on commodity hardware, so observability has to be paid for in
//! single relaxed atomic operations or not at all. This module follows
//! three rules:
//!
//! * **Conservation by construction.** The delivered/failed message
//!   counters live in *per-node* cells ([`NodeCells`]) and the platform
//!   totals are *defined* as the sum of those cells — there is no second
//!   set of global counters that could drift. A [`TelemetrySnapshot`]
//!   reads each cell exactly once and derives its totals from the values
//!   it read, so `delivered_total == Σ nodes[i].delivered` holds in every
//!   snapshot, including ones taken while nodes are dying to contained
//!   panics or while shutdown is bouncing the queued backlog.
//! * **Near-zero cost when off.** With `LiveConfig::telemetry == false`
//!   the only residue is the per-node delivered/failed cells (which
//!   *replace* the old global counters — less contention, not more) and
//!   one predictable branch per instrumented site. Latency stamping,
//!   queue-depth accounting, histograms and the flight recorder are all
//!   gated behind that branch.
//! * **Bounded cost when on.** Latency samples go into striped
//!   [`AtomicLogHistogram`]s (one relaxed `fetch_add` per sample, no
//!   locks); the nanosecond-scale locate path is sampled 1-in-256 so two
//!   `Instant::now()` calls are amortised to well under a nanosecond per
//!   op; the flight recorder takes a lock only for ops slower than the
//!   current K-slowest floor, which a single relaxed load rejects.
//!
//! A background aggregator thread (spawned by
//! [`LivePlatform::with_config`](super::LivePlatform::with_config) when
//! telemetry is on) publishes a fresh snapshot every
//! `telemetry_interval_ms` to [`Telemetry::latest`], and node loops
//! stamp a heartbeat every wake-up — waking at least every
//! `stall_after_ms / 2` even when idle — so a heartbeat older than
//! `stall_after_ms` means the node loop is genuinely stuck inside a
//! handler, not merely quiet.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use agentrack_sim::{AtomicLogHistogram, LogHistogram};

use crate::config::LiveConfig;

use super::Shared;

/// Stripes per shared histogram: enough to keep a few node threads plus
/// external driver threads off each other's cache lines.
const HISTOGRAM_STRIPES: usize = 8;

/// Locate latency is sampled once per this many calls (power of two):
/// the locate fast path is itself only tens of nanoseconds, so stamping
/// every call would more than double its cost, and even at millions of
/// locates per second 1-in-256 still fills the histogram thousands of
/// times per second.
pub(crate) const LOCATE_SAMPLE_EVERY: u64 = 256;

/// Per-node monotonic counters. The delivered/failed cells are the
/// *primary* accounting (always on — `LiveStats` sums them); the rest
/// are telemetry-gated.
#[derive(Default)]
pub(crate) struct NodeCells {
    /// Messages whose handler ran on this node (authoritative).
    pub(crate) delivered: AtomicU64,
    /// Failed deliveries attributed to this node: bounces of messages
    /// addressed to it, plus its share of the shutdown drain
    /// (authoritative).
    pub(crate) failed: AtomicU64,
    /// Channel messages successfully enqueued to this node.
    pub(crate) chan_in: AtomicU64,
    /// Channel messages this node (or the platform's final drain on its
    /// behalf) has taken out of the queue.
    pub(crate) chan_out: AtomicU64,
    /// Node-loop wake-ups (message bursts or timer deadlines).
    pub(crate) wakeups: AtomicU64,
    /// Wake-ups that consumed the entire `drain_budget` — sustained
    /// saturation shows up here first.
    pub(crate) drain_exhausted: AtomicU64,
    /// Nanoseconds since platform start at the node loop's last wake-up.
    pub(crate) heartbeat_ns: AtomicU64,
}

/// What kind of operation a [`SlowOp`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A message delivery (`enqueued` = send stamped, `started` =
    /// handler entry, `ended` = handler return).
    Deliver,
    /// A migration (`enqueued` = `Dispatch` shipped the behaviour,
    /// `started` = `on_arrival` entry, `ended` = `on_arrival` return).
    Move,
    /// A timer firing (`enqueued` = the deadline, so the queue phase is
    /// the lateness; `started`/`ended` bracket `on_timer`).
    Timer,
}

/// One operation captured by the flight recorder, with the timestamps
/// (nanoseconds since platform start) that split it into an
/// enqueue→start *queue* phase and a start→end *handle* phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowOp {
    /// What the operation was.
    pub kind: OpKind,
    /// Node whose thread executed it.
    pub node: u32,
    /// Raw id of the agent it ran against.
    pub agent: u64,
    /// When the work was enqueued (or, for timers, due).
    pub enqueued_ns: u64,
    /// When the handler started running.
    pub started_ns: u64,
    /// When the handler returned.
    pub ended_ns: u64,
}

impl SlowOp {
    /// Time spent waiting between enqueue and handler start.
    #[must_use]
    pub fn queue_ns(&self) -> u64 {
        self.started_ns.saturating_sub(self.enqueued_ns)
    }

    /// Time spent inside the handler.
    #[must_use]
    pub fn handle_ns(&self) -> u64 {
        self.ended_ns.saturating_sub(self.started_ns)
    }

    /// End-to-end duration — the flight recorder's ranking key.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.ended_ns.saturating_sub(self.enqueued_ns)
    }
}

/// Min-heap entry ordered by total duration, so the heap root is always
/// the *least* slow of the K kept ops — the one the next candidate must
/// beat.
struct FlightEntry(SlowOp);

impl PartialEq for FlightEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_ns() == other.0.total_ns()
    }
}
impl Eq for FlightEntry {}
impl PartialOrd for FlightEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FlightEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_ns().cmp(&self.0.total_ns()) // reversed: min-heap
    }
}

/// A bounded record of the K slowest operations seen so far.
///
/// The common case — an op faster than everything already kept — is
/// rejected by one relaxed load of the duration floor, no lock. Only
/// genuinely slow ops (or the first K) pay for the mutex, and those are
/// by definition rare and already expensive.
pub(crate) struct FlightRecorder {
    cap: usize,
    /// Total duration of the fastest kept op once the ring is full;
    /// 0 until then (so the first K ops all take the slow path).
    floor: AtomicU64,
    heap: Mutex<BinaryHeap<FlightEntry>>,
}

impl FlightRecorder {
    pub(crate) fn new(cap: usize) -> Self {
        FlightRecorder {
            cap,
            floor: AtomicU64::new(0),
            heap: Mutex::new(BinaryHeap::with_capacity(cap.saturating_add(1))),
        }
    }

    /// Offers an op; keeps it only if it ranks among the K slowest.
    pub(crate) fn record(&self, op: SlowOp) {
        if self.cap == 0 {
            return;
        }
        let total = op.total_ns();
        if total <= self.floor.load(Ordering::Relaxed) {
            return; // fast path: not slow enough to displace anything
        }
        let mut heap = self.heap.lock();
        heap.push(FlightEntry(op));
        if heap.len() > self.cap {
            heap.pop();
        }
        if heap.len() == self.cap {
            if let Some(min) = heap.peek() {
                self.floor.store(min.0.total_ns(), Ordering::Relaxed);
            }
        }
    }

    /// The kept ops, slowest first.
    pub(crate) fn slowest(&self) -> Vec<SlowOp> {
        let heap = self.heap.lock();
        let mut ops: Vec<SlowOp> = heap.iter().map(|e| e.0).collect();
        ops.sort_by_key(|o| std::cmp::Reverse(o.total_ns()));
        ops
    }
}

/// All telemetry state, owned by [`Shared`](super::Shared).
pub(crate) struct Telemetry {
    /// The master gate: when false, only the per-node delivered/failed
    /// cells are maintained (they are the runtime's accounting, not an
    /// optional extra).
    pub(crate) enabled: bool,
    pub(crate) nodes: Box<[NodeCells]>,
    /// Sampled locate latency (1 in [`LOCATE_SAMPLE_EVERY`] calls).
    pub(crate) locate_ns: AtomicLogHistogram,
    /// End-to-end delivery latency: send stamped → handler returned.
    pub(crate) deliver_ns: AtomicLogHistogram,
    /// Migration latency: `Dispatch` shipped → `on_arrival` returned.
    pub(crate) move_ns: AtomicLogHistogram,
    /// Timer lateness: deadline → handler entry.
    pub(crate) timer_lag_ns: AtomicLogHistogram,
    /// `Deliver` items per shipped batch (dimensionless).
    pub(crate) batch_occupancy: AtomicLogHistogram,
    /// Route-cache totals folded in from retiring/flushing handles.
    pub(crate) route_hits: AtomicU64,
    pub(crate) route_misses: AtomicU64,
    pub(crate) flight: FlightRecorder,
    stall_after_ns: u64,
    /// The aggregator thread's most recent published snapshot.
    pub(crate) latest: Mutex<Option<TelemetrySnapshot>>,
}

impl Telemetry {
    pub(crate) fn new(node_count: usize, config: &LiveConfig) -> Self {
        // Histograms are striped only when they will actually be
        // written; a disabled platform keeps them at one ~400-byte
        // stripe each.
        let stripes = if config.telemetry {
            HISTOGRAM_STRIPES
        } else {
            1
        };
        Telemetry {
            enabled: config.telemetry,
            nodes: (0..node_count).map(|_| NodeCells::default()).collect(),
            locate_ns: AtomicLogHistogram::new(stripes),
            deliver_ns: AtomicLogHistogram::new(stripes),
            move_ns: AtomicLogHistogram::new(stripes),
            timer_lag_ns: AtomicLogHistogram::new(stripes),
            batch_occupancy: AtomicLogHistogram::new(stripes),
            route_hits: AtomicU64::new(0),
            route_misses: AtomicU64::new(0),
            flight: FlightRecorder::new(if config.telemetry {
                config.flight_recorder
            } else {
                0
            }),
            stall_after_ns: config.stall_after_ms.saturating_mul(1_000_000),
            latest: Mutex::new(None),
        }
    }

    /// Half the stall threshold: the longest an idle node loop may block
    /// before waking to refresh its heartbeat, so idle never reads as
    /// stalled.
    pub(crate) fn heartbeat_period(&self) -> std::time::Duration {
        std::time::Duration::from_nanos((self.stall_after_ns / 2).max(1_000_000))
    }
}

/// One node's health at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHealth {
    /// The node's index.
    pub node: u32,
    /// Messages whose handler ran here.
    pub delivered: u64,
    /// Failed deliveries attributed to this node.
    pub failed: u64,
    /// Channel messages enqueued to this node so far.
    pub enqueued: u64,
    /// Channel messages drained from its queue so far.
    pub processed: u64,
    /// Channel messages believed still queued (`enqueued - processed`;
    /// saturating, because the two cells are read at slightly different
    /// instants while the node is running).
    pub queue_depth: u64,
    /// Node-loop wake-ups.
    pub wakeups: u64,
    /// Wake-ups that consumed the entire drain budget.
    pub drain_exhausted: u64,
    /// Age of the node loop's heartbeat at snapshot time (nanoseconds).
    pub heartbeat_age_ns: u64,
    /// Heartbeat older than the stall threshold on a live node: the loop
    /// is stuck inside a handler (idle loops wake to re-stamp).
    pub stalled: bool,
    /// The node's thread died to a contained behaviour panic.
    pub dead: bool,
}

/// A delta-consistent view of the whole platform's telemetry.
///
/// Totals are *derived from the per-node values in this snapshot*, so
/// `delivered_total == nodes.iter().map(|n| n.delivered).sum()` holds by
/// construction in every snapshot, concurrent activity or not; and all
/// counters are monotonic between snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Nanoseconds since platform start when the snapshot was taken.
    pub at_ns: u64,
    /// Per-node health, indexed by node.
    pub nodes: Vec<NodeHealth>,
    /// Σ `nodes[i].delivered` — equals `LiveStats::messages_delivered`
    /// at quiesce.
    pub delivered_total: u64,
    /// Σ `nodes[i].failed` — equals `LiveStats::messages_failed` at
    /// quiesce.
    pub failed_total: u64,
    /// Number of nodes currently flagged stalled.
    pub stalled_nodes: u32,
    /// Sampled locate latency (1 in [`LOCATE_SAMPLE_EVERY`] locate
    /// calls is stamped).
    pub locate_ns: LogHistogram,
    /// End-to-end delivery latency.
    pub deliver_ns: LogHistogram,
    /// Migration (dispatch → arrival) latency.
    pub move_ns: LogHistogram,
    /// Timer lateness past the deadline.
    pub timer_lag_ns: LogHistogram,
    /// `Deliver` items per shipped batch.
    pub batch_occupancy: LogHistogram,
    /// Route-cache hits folded in from handles that flushed or retired.
    pub route_cache_hits: u64,
    /// Route-cache misses likewise.
    pub route_cache_misses: u64,
    /// Σ per-shard registry generations: total registry churn (every
    /// spawn, migration step and disposal bumps exactly one shard).
    pub registry_generation: u64,
    /// Trace-ring records dropped to overflow so far.
    pub trace_dropped: u64,
    /// The K slowest operations so far, slowest first.
    pub slow_ops: Vec<SlowOp>,
}

/// Builds a snapshot from the shared state. Safe to call at any time
/// from any thread; see [`TelemetrySnapshot`] for its consistency
/// guarantees.
pub(crate) fn snapshot(shared: &Shared) -> TelemetrySnapshot {
    let tele = &shared.telemetry;
    let at_ns = shared.now_ns();
    let mut delivered_total = 0u64;
    let mut failed_total = 0u64;
    let mut stalled_nodes = 0u32;
    let nodes: Vec<NodeHealth> = tele
        .nodes
        .iter()
        .enumerate()
        .map(|(i, cells)| {
            let delivered = cells.delivered.load(Ordering::Relaxed);
            let failed = cells.failed.load(Ordering::Relaxed);
            let enqueued = cells.chan_in.load(Ordering::Relaxed);
            let processed = cells.chan_out.load(Ordering::Relaxed);
            let heartbeat = cells.heartbeat_ns.load(Ordering::Relaxed);
            let dead = shared.dead[i].load(Ordering::Acquire);
            let heartbeat_age_ns = at_ns.saturating_sub(heartbeat);
            // Stall detection only means something while instrumented
            // node loops are stamping heartbeats.
            let stalled = tele.enabled
                && !dead
                && tele.stall_after_ns > 0
                && heartbeat_age_ns > tele.stall_after_ns;
            delivered_total += delivered;
            failed_total += failed;
            stalled_nodes += u32::from(stalled);
            NodeHealth {
                node: i as u32,
                delivered,
                failed,
                enqueued,
                processed,
                queue_depth: enqueued.saturating_sub(processed),
                wakeups: cells.wakeups.load(Ordering::Relaxed),
                drain_exhausted: cells.drain_exhausted.load(Ordering::Relaxed),
                heartbeat_age_ns,
                stalled,
                dead,
            }
        })
        .collect();
    TelemetrySnapshot {
        at_ns,
        nodes,
        delivered_total,
        failed_total,
        stalled_nodes,
        locate_ns: tele.locate_ns.snapshot(),
        deliver_ns: tele.deliver_ns.snapshot(),
        move_ns: tele.move_ns.snapshot(),
        timer_lag_ns: tele.timer_lag_ns.snapshot(),
        batch_occupancy: tele.batch_occupancy.snapshot(),
        route_cache_hits: tele.route_hits.load(Ordering::Relaxed),
        route_cache_misses: tele.route_misses.load(Ordering::Relaxed),
        registry_generation: shared.registry.total_generation(),
        trace_dropped: shared.trace.dropped(),
        slow_ops: tele.flight.slowest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(total: u64) -> SlowOp {
        SlowOp {
            kind: OpKind::Deliver,
            node: 0,
            agent: total, // tag so assertions can tell ops apart
            enqueued_ns: 0,
            started_ns: total / 2,
            ended_ns: total,
        }
    }

    #[test]
    fn flight_recorder_keeps_exactly_the_k_slowest() {
        let fr = FlightRecorder::new(3);
        for total in [5u64, 900, 20, 40, 1000, 1, 800, 30] {
            fr.record(op(total));
        }
        let kept: Vec<u64> = fr.slowest().iter().map(SlowOp::total_ns).collect();
        assert_eq!(kept, vec![1000, 900, 800], "slowest first, bounded at K");
    }

    #[test]
    fn flight_recorder_floor_rejects_fast_ops_without_blocking() {
        let fr = FlightRecorder::new(2);
        fr.record(op(100));
        fr.record(op(200));
        assert_eq!(fr.floor.load(Ordering::Relaxed), 100);
        fr.record(op(50)); // below the floor: rejected on the fast path
        assert_eq!(
            fr.slowest()
                .iter()
                .map(SlowOp::total_ns)
                .collect::<Vec<_>>(),
            vec![200, 100]
        );
        fr.record(op(150)); // beats the floor: displaces 100
        assert_eq!(
            fr.slowest()
                .iter()
                .map(SlowOp::total_ns)
                .collect::<Vec<_>>(),
            vec![200, 150]
        );
        assert_eq!(fr.floor.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn zero_capacity_recorder_keeps_nothing() {
        let fr = FlightRecorder::new(0);
        fr.record(op(1_000_000));
        assert!(fr.slowest().is_empty());
    }

    #[test]
    fn slow_op_phases_partition_the_total() {
        let o = SlowOp {
            kind: OpKind::Timer,
            node: 3,
            agent: 9,
            enqueued_ns: 100,
            started_ns: 250,
            ended_ns: 400,
        };
        assert_eq!(o.queue_ns(), 150);
        assert_eq!(o.handle_ns(), 150);
        assert_eq!(o.total_ns(), o.queue_ns() + o.handle_ns());
    }
}
