//! Platform identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an agent hosted by the platform.
///
/// Ids are assigned sequentially by the runtime and are opaque to the
/// platform; the location mechanism derives its hash keys from them (the
/// paper's point that the mechanism "is not based on any particular
/// agent-naming scheme").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct AgentId(pub u64);

impl AgentId {
    /// Creates an agent id from its numeric value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        AgentId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// Picks a shard for this id out of `mask + 1` shards (`mask` must be
    /// a power of two minus one).
    ///
    /// Runtimes allocate ids *sequentially*, so taking the low bits
    /// directly — or hashing through `std::hash::Hash`, whose `u64`
    /// implementation is identity-like under `SipHash` only after paying
    /// for the full keyed permutation — is either pathological or slow.
    /// Instead this performs one Fibonacci multiplication (the golden
    /// ratio's 64-bit fixed-point, `0x9E37_79B9_7F4A_7C15`) and keeps the
    /// *high* half of the product, which is where sequential inputs end
    /// up equidistributed. One `mul` + one shift + one `and`: cheap
    /// enough for every message hop.
    #[must_use]
    pub const fn shard_of(self, mask: u64) -> usize {
        debug_assert!(
            mask == u64::MAX || (mask + 1).is_power_of_two(),
            "mask must be 2^k - 1"
        );
        let h = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) & mask) as usize
    }
}

impl From<u64> for AgentId {
    fn from(raw: u64) -> Self {
        AgentId(raw)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// Identifier of a timer set via
/// [`AgentCtx::set_timer`](crate::AgentCtx::set_timer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TimerId(pub u64);

impl TimerId {
    /// Creates a timer id from its numeric value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_id_round_trip() {
        let id = AgentId::new(9);
        assert_eq!(id.raw(), 9);
        assert_eq!(AgentId::from(9u64), id);
        assert_eq!(id.to_string(), "agent9");
        assert_eq!(format!("{id:?}"), "agent9");
    }

    #[test]
    fn timer_id_round_trip() {
        let id = TimerId::new(3);
        assert_eq!(id.raw(), 3);
        assert_eq!(id.to_string(), "timer3");
    }

    #[test]
    fn shard_of_is_stable() {
        // A pure function of the id: repeated calls agree, and the
        // snapshot below pins the mixing constant — changing it silently
        // would reshuffle every shard in a persisted deployment.
        for raw in [0u64, 1, 2, 1 << 40, u64::MAX - 1] {
            let id = AgentId::new(raw);
            assert_eq!(id.shard_of(1023), id.shard_of(1023));
        }
        assert_eq!(AgentId::new(0).shard_of(1023), 0);
        assert_eq!(AgentId::new(1).shard_of(1023), 441);
        assert_eq!(AgentId::new(2).shard_of(1023), 882);
    }

    #[test]
    fn shard_of_is_uniform_over_sequential_ids() {
        // Sequential ids are the runtime's actual allocation pattern.
        // Without mixing, `id % shards` would stripe them; with SipHash
        // they would be uniform but slow. Fibonacci multiplication must
        // keep every shard within 20% of the ideal share across 1M ids,
        // for both a small and a large shard count.
        for shards in [8usize, 64, 1024] {
            let mask = (shards - 1) as u64;
            let mut counts = vec![0u64; shards];
            for raw in 0..1_000_000u64 {
                counts[AgentId::new(raw).shard_of(mask)] += 1;
            }
            let ideal = 1_000_000.0 / shards as f64;
            for (shard, &n) in counts.iter().enumerate() {
                assert!(
                    (n as f64) > ideal * 0.8 && (n as f64) < ideal * 1.2,
                    "shard {shard}/{shards}: {n} ids vs ideal {ideal:.0}"
                );
            }
        }
    }

    #[test]
    fn shard_of_low_ids_do_not_collapse() {
        // The first few hundred ids (the platform agents that exist in
        // every deployment) must already spread: no single shard may
        // capture more than a quarter of the first 256 ids at 64 shards.
        let mut counts = [0u32; 64];
        for raw in 0..256u64 {
            counts[AgentId::new(raw).shard_of(63)] += 1;
        }
        assert!(
            counts.iter().all(|&n| n <= 64),
            "low ids collapsed: {counts:?}"
        );
    }
}
