//! Platform identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an agent hosted by the platform.
///
/// Ids are assigned sequentially by the runtime and are opaque to the
/// platform; the location mechanism derives its hash keys from them (the
/// paper's point that the mechanism "is not based on any particular
/// agent-naming scheme").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct AgentId(pub u64);

impl AgentId {
    /// Creates an agent id from its numeric value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        AgentId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl From<u64> for AgentId {
    fn from(raw: u64) -> Self {
        AgentId(raw)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// Identifier of a timer set via
/// [`AgentCtx::set_timer`](crate::AgentCtx::set_timer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TimerId(pub u64);

impl TimerId {
    /// Creates a timer id from its numeric value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The numeric value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_id_round_trip() {
        let id = AgentId::new(9);
        assert_eq!(id.raw(), 9);
        assert_eq!(AgentId::from(9u64), id);
        assert_eq!(id.to_string(), "agent9");
        assert_eq!(format!("{id:?}"), "agent9");
    }

    #[test]
    fn timer_id_round_trip() {
        let id = TimerId::new(3);
        assert_eq!(id.raw(), 3);
        assert_eq!(id.to_string(), "timer3");
    }
}
