//! End-to-end tests of the platform runtime: lifecycle, messaging costs,
//! migration, delivery failure, queueing, and determinism.

use std::sync::{Arc, Mutex};

use agentrack_platform::{
    Agent, AgentCtx, AgentId, DurationDist, NodeId, Payload, PlatformConfig, SimDuration,
    SimPlatform, SimTime, TimerId, Topology,
};

const LATENCY: SimDuration = SimDuration::from_micros(300);
const SERVICE: SimDuration = SimDuration::from_micros(100);

fn platform(nodes: u32) -> SimPlatform {
    let topo = Topology::lan(nodes, DurationDist::Constant(LATENCY));
    let config = PlatformConfig::default()
        .with_seed(7)
        .with_handler_service_time(DurationDist::Constant(SERVICE));
    SimPlatform::new(topo, config)
}

type Log = Arc<Mutex<Vec<String>>>;

/// Replies "pong" to every "ping"; records everything it sees.
struct Responder {
    log: Log,
    home_of_sender: NodeId,
}

impl Agent for Responder {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let text: String = payload.decode().unwrap();
        self.log
            .lock()
            .unwrap()
            .push(format!("responder got {text}"));
        ctx.send(from, self.home_of_sender, Payload::encode(&"pong"));
    }
}

/// Fires one ping after a timer and records the round-trip completion time.
struct Requester {
    log: Log,
    target: AgentId,
    target_node: NodeId,
    sent_at: Arc<Mutex<Option<SimTime>>>,
    done_at: Arc<Mutex<Option<SimTime>>>,
}

impl Agent for Requester {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(50));
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        *self.sent_at.lock().unwrap() = Some(ctx.now());
        ctx.send(self.target, self.target_node, Payload::encode(&"ping"));
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        let text: String = payload.decode().unwrap();
        self.log
            .lock()
            .unwrap()
            .push(format!("requester got {text}"));
        *self.done_at.lock().unwrap() = Some(ctx.now());
    }
}

#[test]
fn ping_pong_round_trip_costs_two_hops_and_two_services() {
    let mut p = platform(2);
    let log: Log = Arc::default();
    let responder = p.spawn(
        Box::new(Responder {
            log: log.clone(),
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1),
    );
    let sent_at = Arc::new(Mutex::new(None));
    let done_at = Arc::new(Mutex::new(None));
    p.spawn(
        Box::new(Requester {
            log: log.clone(),
            target: responder,
            target_node: NodeId::new(1),
            sent_at: sent_at.clone(),
            done_at: done_at.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();

    assert_eq!(
        log.lock().unwrap().as_slice(),
        ["responder got ping", "requester got pong"]
    );
    let rtt = done_at.lock().unwrap().unwrap() - sent_at.lock().unwrap().unwrap();
    assert_eq!(rtt, (LATENCY + SERVICE) * 2);
    let stats = p.stats();
    assert_eq!(stats.messages_sent, 2);
    assert_eq!(stats.messages_delivered, 2);
    assert_eq!(stats.messages_failed, 0);
}

/// A hopper that migrates through every node, recording arrivals.
struct Hopper {
    log: Log,
    route: Vec<NodeId>,
}

impl Agent for Hopper {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        let next = self.route.remove(0);
        ctx.dispatch(next);
    }

    fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
        self.log
            .lock()
            .unwrap()
            .push(format!("arrived at {}", ctx.node()));
        if !self.route.is_empty() {
            let next = self.route.remove(0);
            ctx.dispatch(next);
        }
    }
}

#[test]
fn migration_visits_every_node_in_route() {
    let mut p = platform(4);
    let log: Log = Arc::default();
    let hopper = p.spawn(
        Box::new(Hopper {
            log: log.clone(),
            route: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert_eq!(
        log.lock().unwrap().as_slice(),
        ["arrived at node1", "arrived at node2", "arrived at node3"]
    );
    assert_eq!(p.agent_node(hopper), Some(NodeId::new(3)));
    assert!(p.is_active(hopper));
    assert_eq!(p.stats().migrations, 3);
}

/// Sends a message to a node where the target is not, and records the
/// bounce.
struct WrongAddresser {
    target: AgentId,
    failures: Arc<Mutex<Vec<(AgentId, NodeId)>>>,
}

impl Agent for WrongAddresser {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.send(self.target, NodeId::new(2), Payload::encode(&"hello?"));
    }

    fn on_delivery_failed(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        to: AgentId,
        node: NodeId,
        payload: &Payload,
    ) {
        assert_eq!(payload.decode::<String>().unwrap(), "hello?");
        self.failures.lock().unwrap().push((to, node));
    }
}

#[test]
fn wrong_node_bounces_back_to_sender() {
    let mut p = platform(3);
    let log: Log = Arc::default();
    let resident = p.spawn(
        Box::new(Responder {
            log,
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1), // actually at node1, addressed at node2
    );
    let failures = Arc::new(Mutex::new(Vec::new()));
    p.spawn(
        Box::new(WrongAddresser {
            target: resident,
            failures: failures.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert_eq!(
        failures.lock().unwrap().as_slice(),
        [(resident, NodeId::new(2))]
    );
    let stats = p.stats();
    assert_eq!(stats.messages_failed, 1);
    // Failure notices are not counted as deliveries.
    assert_eq!(stats.messages_delivered, 0);
}

#[test]
fn message_to_nonexistent_agent_bounces() {
    let mut p = platform(3);
    let failures = Arc::new(Mutex::new(Vec::new()));
    p.spawn(
        Box::new(WrongAddresser {
            target: AgentId::new(999),
            failures: failures.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert_eq!(failures.lock().unwrap().len(), 1);
}

/// Floods a target with `n` back-to-back messages, recording reply times.
struct Flooder {
    target: AgentId,
    target_node: NodeId,
    n: usize,
    replies: Arc<Mutex<Vec<SimTime>>>,
}

impl Agent for Flooder {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        for _ in 0..self.n {
            ctx.send(self.target, self.target_node, Payload::encode(&"ping"));
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
        self.replies.lock().unwrap().push(ctx.now());
    }
}

#[test]
fn burst_to_one_agent_queues_fifo() {
    let mut p = platform(2);
    let log: Log = Arc::default();
    let responder = p.spawn(
        Box::new(Responder {
            log,
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1),
    );
    let replies = Arc::new(Mutex::new(Vec::new()));
    p.spawn(
        Box::new(Flooder {
            target: responder,
            target_node: NodeId::new(1),
            n: 10,
            replies: replies.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();

    let replies = replies.lock().unwrap();
    assert_eq!(replies.len(), 10);
    // Replies are spaced by the responder's service time: the k-th reply
    // completes one service later than the (k-1)-th. (The flooder's own
    // inbound station adds no spacing beyond that because its service rate
    // equals the responder's.)
    let spacing = replies[9] - replies[8];
    assert_eq!(spacing, SERVICE);
    // Total span of the burst ≈ 9 service times.
    assert_eq!(replies[9] - replies[0], SERVICE * 9);
}

/// Disposes itself on message; used to test dispose + post-dispose sends.
struct Mayfly {
    disposed: Arc<Mutex<bool>>,
}

impl Agent for Mayfly {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
        ctx.dispose();
    }

    fn on_dispose(&mut self, _ctx: &mut AgentCtx<'_>) {
        *self.disposed.lock().unwrap() = true;
    }
}

struct TwoShots {
    target: AgentId,
    target_node: NodeId,
    gap: SimDuration,
    failures: Arc<Mutex<u64>>,
    shots_left: u32,
}

impl Agent for TwoShots {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.send(self.target, self.target_node, Payload::encode(&1u32));
        ctx.set_timer(self.gap);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
        if self.shots_left > 0 {
            self.shots_left -= 1;
            ctx.send(self.target, self.target_node, Payload::encode(&2u32));
        }
    }

    fn on_delivery_failed(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        _to: AgentId,
        _node: NodeId,
        _payload: &Payload,
    ) {
        *self.failures.lock().unwrap() += 1;
    }
}

#[test]
fn disposed_agents_bounce_messages() {
    let mut p = platform(2);
    let disposed = Arc::new(Mutex::new(false));
    let mayfly = p.spawn(
        Box::new(Mayfly {
            disposed: disposed.clone(),
        }),
        NodeId::new(1),
    );
    let failures = Arc::new(Mutex::new(0u64));
    p.spawn(
        Box::new(TwoShots {
            target: mayfly,
            target_node: NodeId::new(1),
            gap: SimDuration::from_millis(100),
            failures: failures.clone(),
            shots_left: 1,
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert!(*disposed.lock().unwrap());
    assert_eq!(*failures.lock().unwrap(), 1);
    assert_eq!(p.stats().agents_disposed, 1);
    assert!(!p.is_active(mayfly));
    assert_eq!(p.agent_node(mayfly), None);
}

/// Migrates away on creation and stays in transit long enough for a probe
/// message to bounce.
struct SlowMover;

impl Agent for SlowMover {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.dispatch(NodeId::new(1));
    }

    fn state_size(&self) -> usize {
        10_000_000 // 1 second of transfer at the default bandwidth
    }
}

#[test]
fn in_transit_agents_bounce_messages() {
    let mut p = platform(3);
    let mover = p.spawn(Box::new(SlowMover), NodeId::new(0));
    let failures = Arc::new(Mutex::new(0u64));
    p.spawn(
        Box::new(TwoShots {
            target: mover,
            target_node: NodeId::new(0), // old node; mover left immediately
            gap: SimDuration::from_millis(200),
            failures: failures.clone(),
            shots_left: 1,
        }),
        NodeId::new(2),
    );
    p.run_until_idle();
    // Both the immediate shot and the delayed one bounce: the mover is in
    // transit for a full simulated second.
    assert_eq!(*failures.lock().unwrap(), 2);
    assert_eq!(p.agent_node(mover), Some(NodeId::new(1)));
}

/// Spawns a child remotely and waits for it to report in.
struct Parent {
    child_reported: Arc<Mutex<bool>>,
}

struct Child {
    parent: AgentId,
    parent_node: NodeId,
}

impl Agent for Parent {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        let here = ctx.node();
        let me = ctx.self_id();
        ctx.create_agent(
            Box::new(Child {
                parent: me,
                parent_node: here,
            }),
            NodeId::new(1),
        );
    }

    fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
        *self.child_reported.lock().unwrap() = true;
    }
}

impl Agent for Child {
    fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
        assert_eq!(ctx.node(), NodeId::new(1));
        ctx.send(self.parent, self.parent_node, Payload::encode(&"born"));
    }
}

#[test]
fn remote_agent_creation_runs_on_create_at_the_target_node() {
    let mut p = platform(2);
    let reported = Arc::new(Mutex::new(false));
    p.spawn(
        Box::new(Parent {
            child_reported: reported.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert!(*reported.lock().unwrap());
    assert_eq!(p.stats().agents_created, 2);
    assert_eq!(p.agent_count(), 2);
}

#[test]
fn loss_injection_drops_messages_without_bounce() {
    let topo = Topology::lan(2, DurationDist::Constant(LATENCY)).with_loss(1.0);
    let mut p = SimPlatform::new(
        topo,
        PlatformConfig::default().with_handler_service_time(DurationDist::Constant(SERVICE)),
    );
    let log: Log = Arc::default();
    let responder = p.spawn(
        Box::new(Responder {
            log: log.clone(),
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1),
    );
    let failures = Arc::new(Mutex::new(0u64));
    p.spawn(
        Box::new(TwoShots {
            target: responder,
            target_node: NodeId::new(1),
            gap: SimDuration::from_millis(1),
            failures: failures.clone(),
            shots_left: 0,
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert_eq!(p.stats().messages_lost, 1);
    assert!(log.lock().unwrap().is_empty());
    // Loss is silent: no failure notice (that is what makes it a fault).
    assert_eq!(*failures.lock().unwrap(), 0);
}

#[test]
fn duplication_injection_invokes_handler_twice() {
    let topo = Topology::lan(2, DurationDist::Constant(LATENCY)).with_duplication(1.0);
    let mut p = SimPlatform::new(
        topo,
        PlatformConfig::default().with_handler_service_time(DurationDist::Constant(SERVICE)),
    );
    let log: Log = Arc::default();
    let responder = p.spawn(
        Box::new(Responder {
            log: log.clone(),
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1),
    );
    let replies = Arc::new(Mutex::new(Vec::new()));
    p.spawn(
        Box::new(Flooder {
            target: responder,
            target_node: NodeId::new(1),
            n: 1,
            replies: replies.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert_eq!(
        log.lock()
            .unwrap()
            .iter()
            .filter(|l| *l == "responder got ping")
            .count(),
        2
    );
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let run = || {
        let mut p = platform(4);
        let log: Log = Arc::default();
        let responder = p.spawn(
            Box::new(Responder {
                log,
                home_of_sender: NodeId::new(0),
            }),
            NodeId::new(1),
        );
        let replies = Arc::new(Mutex::new(Vec::new()));
        p.spawn(
            Box::new(Flooder {
                target: responder,
                target_node: NodeId::new(1),
                n: 25,
                replies: replies.clone(),
            }),
            NodeId::new(0),
        );
        p.run_until_idle();
        let r = replies.lock().unwrap().clone();
        (p.stats(), p.now(), r)
    };
    assert_eq!(run(), run());
}

#[test]
fn run_until_stops_at_the_deadline() {
    let mut p = platform(2);
    let log: Log = Arc::default();
    let responder = p.spawn(
        Box::new(Responder {
            log,
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1),
    );
    let sent_at = Arc::new(Mutex::new(None));
    let done_at = Arc::new(Mutex::new(None));
    p.spawn(
        Box::new(Requester {
            log: Arc::default(),
            target: responder,
            target_node: NodeId::new(1),
            sent_at,
            done_at: done_at.clone(),
        }),
        NodeId::new(0),
    );
    // The requester fires its ping at t=50ms; stop before that.
    p.run_until(SimTime::ZERO + SimDuration::from_millis(10));
    assert!(done_at.lock().unwrap().is_none());
    assert!(p.now() <= SimTime::ZERO + SimDuration::from_millis(10));
    // Resume to completion.
    p.run_for(SimDuration::from_secs(1));
    assert!(done_at.lock().unwrap().is_some());
}

/// The message tracer sees every delivered and bounced message.
#[test]
fn tracer_observes_deliveries_and_bounces() {
    use std::sync::{Arc, Mutex};

    let mut p = platform(3);
    let seen: Arc<Mutex<Vec<(bool, String)>>> = Arc::default();
    let sink = seen.clone();
    p.set_tracer(Box::new(move |ev| {
        sink.lock()
            .unwrap()
            .push((ev.delivered, format!("{}->{}", ev.from, ev.to)));
    }));

    let log: Log = Arc::default();
    let responder = p.spawn(
        Box::new(Responder {
            log,
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(1),
    );
    let replies = Arc::new(Mutex::new(Vec::new()));
    let flooder = p.spawn(
        Box::new(Flooder {
            target: responder,
            target_node: NodeId::new(1),
            n: 2,
            replies,
        }),
        NodeId::new(0),
    );
    let failures = Arc::new(Mutex::new(Vec::new()));
    p.spawn(
        Box::new(WrongAddresser {
            target: AgentId::new(999),
            failures,
        }),
        NodeId::new(2),
    );
    p.run_until_idle();

    let seen = seen.lock().unwrap();
    let delivered = seen.iter().filter(|(ok, _)| *ok).count();
    let bounced = seen.iter().filter(|(ok, _)| !*ok).count();
    assert_eq!(delivered, 4, "2 pings + 2 pongs: {seen:?}");
    assert_eq!(bounced, 1, "the wrong-address probe: {seen:?}");
    assert!(seen
        .iter()
        .any(|(_, route)| route == &format!("{flooder}->{responder}")));
}

/// Dispatch-then-dispose in one handler: the dispatch wins, identically on
/// both runtimes (the behaviour already departed when the dispose ran).
#[test]
fn dispatch_then_dispose_lets_the_migration_win() {
    struct Confused;
    impl Agent for Confused {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.dispatch(NodeId::new(1));
            ctx.dispose(); // too late: the behaviour is already leaving
        }
    }
    let mut p = platform(2);
    let agent = p.spawn(Box::new(Confused), NodeId::new(0));
    p.run_until_idle();
    assert!(p.is_active(agent), "the migration won");
    assert_eq!(p.agent_node(agent), Some(NodeId::new(1)));
    assert_eq!(p.stats().agents_disposed, 0);
    assert_eq!(p.stats().ignored_actions, 1);
}

/// `on_dispose` is a destructor: its sends go out, but structural requests
/// (including a recursive dispose) are ignored rather than recursed into.
#[test]
fn on_dispose_cannot_recurse() {
    struct Stubborn {
        farewell_to: AgentId,
    }
    impl Agent for Stubborn {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.dispose();
        }
        fn on_dispose(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.send(self.farewell_to, NodeId::new(0), Payload::encode(&"bye"));
            ctx.dispose(); // must not recurse
            ctx.set_timer(SimDuration::from_millis(1)); // must be ignored
        }
    }
    let mut p = platform(2);
    let log: Log = std::sync::Arc::default();
    let mourner = p.spawn(
        Box::new(Responder {
            log: log.clone(),
            home_of_sender: NodeId::new(0),
        }),
        NodeId::new(0),
    );
    let stubborn = p.spawn(
        Box::new(Stubborn {
            farewell_to: mourner,
        }),
        NodeId::new(1),
    );
    p.run_until_idle();
    assert!(!p.is_active(stubborn));
    assert_eq!(p.stats().agents_disposed, 1);
    assert_eq!(log.lock().unwrap().len(), 1, "the farewell was sent");
}

/// A message racing its addressee's creation is deferred, not bounced.
#[test]
fn create_then_send_in_one_handler_delivers() {
    struct Creator {
        heard_back: std::sync::Arc<Mutex<bool>>,
    }
    impl Agent for Creator {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            let me = ctx.self_id();
            let here = ctx.node();
            let child = ctx.create_agent(Box::new(EchoBack { to: me, node: here }), NodeId::new(1));
            // Sent immediately: arrives before the child's on_create runs.
            ctx.send(child, NodeId::new(1), Payload::encode(&"early"));
        }
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _p: &Payload) {
            *self.heard_back.lock().unwrap() = true;
        }
    }
    struct EchoBack {
        to: AgentId,
        node: NodeId,
    }
    impl Agent for EchoBack {
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            ctx.send(self.to, self.node, payload.clone());
        }
    }

    let mut p = platform(2);
    let heard_back = std::sync::Arc::new(Mutex::new(false));
    p.spawn(
        Box::new(Creator {
            heard_back: heard_back.clone(),
        }),
        NodeId::new(0),
    );
    p.run_until_idle();
    assert!(
        *heard_back.lock().unwrap(),
        "the early message must be deferred to the child, not bounced"
    );
    assert_eq!(p.stats().messages_failed, 0);
}
