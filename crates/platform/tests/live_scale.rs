//! Tests of the live runtime's scale machinery: sharded registry +
//! route cache behaviour through the public API, panic containment, and
//! the migration-vs-delivery race. Timing assertions are deliberately
//! loose — wall clocks are not simulation clocks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

use agentrack_platform::{
    Agent, AgentCtx, AgentId, LiveConfig, LivePlatform, NodeId, Payload, TimerId, TraceSink,
};
use agentrack_sim::{SimDuration, SimRng};

/// Keeps intentional behaviour panics out of the test output while
/// leaving every other panic (i.e. real test failures) loud.
fn quiet_node_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_node_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("agentrack-"));
            if !on_node_thread {
                default(info);
            }
        }));
    });
}

/// Waits (bounded) until `cond` is true.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..500 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Migrates to the node named by any `u32` payload; ignores the rest.
struct Hopper;
impl Agent for Hopper {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        if let Ok(dest) = payload.decode::<u32>() {
            ctx.dispatch(NodeId::new(dest));
        }
    }
}

#[test]
fn a_panicking_behaviour_kills_its_node_not_the_platform() {
    quiet_node_panics();

    struct Bomber;
    impl Agent for Bomber {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            panic!("intentional test panic: behaviour bug");
        }
    }
    struct Witness {
        bomber: AgentId,
        bomber_node: NodeId,
        failures: Arc<AtomicU64>,
        echoes: Arc<AtomicU64>,
    }
    impl Agent for Witness {
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            if payload.decode::<String>().as_deref() == Ok("probe the dead node") {
                ctx.send(self.bomber, self.bomber_node, Payload::encode(&"anyone?"));
            } else {
                self.echoes.fetch_add(1, Ordering::Relaxed);
            }
        }
        fn on_delivery_failed(
            &mut self,
            _ctx: &mut AgentCtx<'_>,
            _to: AgentId,
            _node: NodeId,
            _payload: &Payload,
        ) {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    let platform = LivePlatform::new(2);
    let bomber = platform.spawn(Box::new(Bomber), NodeId::new(1));
    let failures = Arc::new(AtomicU64::new(0));
    let echoes = Arc::new(AtomicU64::new(0));
    let witness = platform.spawn(
        Box::new(Witness {
            bomber,
            bomber_node: NodeId::new(1),
            failures: failures.clone(),
            echoes: echoes.clone(),
        }),
        NodeId::new(0),
    );
    assert!(eventually(|| platform.stats().agents_activated == 2));

    // Detonate. The node must die and take the bomber's registration.
    assert!(platform.post(bomber, Payload::encode(&"boom")));
    assert!(eventually(|| platform.stats().nodes_dead == 1));
    assert!(eventually(|| platform.agent_node(bomber).is_none()));

    // A pending delivery to the dead node fails back to the sender's
    // on_delivery_failed instead of vanishing into a dead queue.
    assert!(platform.post(witness, Payload::encode(&"probe the dead node")));
    assert!(eventually(|| failures.load(Ordering::Relaxed) == 1));

    // The surviving node keeps serving.
    assert!(platform.post(witness, Payload::encode(&"still alive?")));
    assert!(eventually(|| echoes.load(Ordering::Relaxed) >= 1));

    // And shutdown joins every thread — no leak, no hang.
    let stats = platform.shutdown();
    assert_eq!(stats.nodes_dead, 1);
    assert!(stats.messages_failed >= 1);
}

#[test]
fn a_panicking_timer_handler_is_contained_too() {
    quiet_node_panics();

    struct TimeBomb;
    impl Agent for TimeBomb {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10));
        }
        fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, _timer: TimerId) {
            panic!("intentional test panic: timer bug");
        }
    }

    let platform = LivePlatform::new(2);
    let bomb = platform.spawn(Box::new(TimeBomb), NodeId::new(1));
    assert!(eventually(|| platform.stats().nodes_dead == 1));
    assert!(eventually(|| platform.agent_node(bomb).is_none()));
    platform.shutdown();
}

/// Satellite: migration-vs-deliver race. Several threads hammer `move`
/// and `deliver` against the same agent; every message must either be
/// delivered at the destination or fail observably — the runtime's
/// counters have to reconcile exactly (sent = delivered + failed), and
/// the agent must still be registered and responsive afterwards.
#[test]
fn racing_moves_and_delivers_never_silently_drop_a_message() {
    let nodes = 4u32;
    for seed in [0x5eed1u64, 0x5eed2, 0x5eed3] {
        let platform = LivePlatform::with_config(
            nodes,
            // Small shard count and batches exercise the coalescing and
            // cross-shard paths harder than the defaults would.
            LiveConfig::default().with_shards(4).with_batch_max(8),
            TraceSink::disabled(),
        );
        let hopper = platform.spawn(Box::new(Hopper), NodeId::new(0));
        let delivered = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));

        // An agent-world sender: each timer tick fires a burst at the
        // hopper using a *guessed* (usually wrong) node, so some sends
        // bounce into on_delivery_failed while the hopper keeps moving.
        struct Stresser {
            target: AgentId,
            nodes: u32,
            round: u32,
            delivered: Arc<AtomicU64>,
            failed: Arc<AtomicU64>,
        }
        impl Agent for Stresser {
            fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1));
            }
            fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
                for i in 0..10u32 {
                    let guess = NodeId::new((self.round + i) % self.nodes);
                    ctx.send(self.target, guess, Payload::encode(&"are you there?"));
                }
                self.round += 1;
                if self.round < 40 {
                    ctx.set_timer(SimDuration::from_millis(1));
                }
            }
            fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _p: &Payload) {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            }
            fn on_delivery_failed(
                &mut self,
                _ctx: &mut AgentCtx<'_>,
                _to: AgentId,
                _node: NodeId,
                _payload: &Payload,
            ) {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        platform.spawn(
            Box::new(Stresser {
                target: hopper,
                nodes,
                round: 0,
                delivered: delivered.clone(),
                failed: failed.clone(),
            }),
            NodeId::new(3),
        );

        // Meanwhile the test thread keeps the hopper migrating and lobs
        // its own externally injected deliveries through a batched handle.
        let mut handle = platform.handle();
        let mut rng = SimRng::seed_from(seed);
        for i in 0..400u32 {
            let dest = rng.index(nodes as usize) as u32;
            assert!(handle.post(hopper, Payload::encode(&dest)));
            if i % 16 == 0 {
                handle.flush();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        handle.flush();

        // Quiesce: stats stop changing and the books balance exactly.
        assert!(
            eventually(|| {
                let s = platform.stats();
                s.messages_sent == s.messages_delivered + s.messages_failed
            }),
            "seed {seed:#x}: messages lost: {:?}",
            platform.stats()
        );
        let mid = platform.stats();
        assert!(mid.migrations > 0, "seed {seed:#x}: the hopper never moved");
        assert!(
            mid.messages_sent >= 400,
            "seed {seed:#x}: sends went missing before the wire"
        );

        // The hopper survived the storm: still registered, still willing
        // to hop when told.
        let before = platform.stats().migrations;
        let here = platform
            .agent_node(hopper)
            .expect("hopper still registered");
        let away = NodeId::new((here.raw() + 1) % nodes);
        assert!(platform.post(hopper, Payload::encode(&away.raw())));
        assert!(eventually(|| platform.stats().migrations > before));

        let stats = platform.shutdown();
        assert_eq!(
            stats.messages_sent,
            stats.messages_delivered + stats.messages_failed,
            "seed {seed:#x}: final books must balance: {stats:?}"
        );
        assert_eq!(stats.nodes_dead, 0);
    }
}

/// Shutdown accounting is exact even when it races in-flight traffic:
/// whatever is still queued behind a node's `Shutdown` marker — or
/// sitting in a sender's batch buffer — must end up counted delivered
/// or failed, never silently dropped. No quiescing before `shutdown()`
/// here, deliberately.
#[test]
fn books_balance_even_when_shutdown_races_inflight_traffic() {
    for round in 0..8u32 {
        let platform = LivePlatform::with_config(
            4,
            LiveConfig::default().with_shards(4).with_batch_max(4),
            TraceSink::disabled(),
        );
        let hopper = platform.spawn(Box::new(Hopper), NodeId::new(0));
        let mut handle = platform.handle();
        let mut rng = SimRng::seed_from(0xace0 + u64::from(round));
        for _ in 0..200u32 {
            let dest = rng.index(4) as u32;
            assert!(handle.post(hopper, Payload::encode(&dest)));
        }
        handle.flush();
        // Shut down mid-storm: migrations and deliveries are in flight.
        let stats = platform.shutdown();
        assert_eq!(
            stats.messages_sent,
            stats.messages_delivered + stats.messages_failed,
            "round {round}: shutdown lost messages: {stats:?}"
        );
    }
}

/// A pending timer belonging to an agent that migrated away survives its
/// origin node dying: `die()` hops it to the agent's current node.
#[test]
fn a_migrated_agents_timer_survives_its_old_node_dying() {
    quiet_node_panics();

    struct Bomber;
    impl Agent for Bomber {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            panic!("intentional test panic: behaviour bug");
        }
    }
    /// Sets a long timer at birth, then immediately migrates away —
    /// leaving the pending timer on the node it was born on.
    struct TimerHopper {
        home: NodeId,
        fired: Arc<AtomicU64>,
    }
    impl Agent for TimerHopper {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(150));
            ctx.dispatch(self.home);
        }
        fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, _timer: TimerId) {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
    }

    let platform = LivePlatform::new(2);
    let fired = Arc::new(AtomicU64::new(0));
    let hopper = platform.spawn(
        Box::new(TimerHopper {
            home: NodeId::new(0),
            fired: fired.clone(),
        }),
        NodeId::new(1),
    );
    let bomber = platform.spawn(Box::new(Bomber), NodeId::new(1));
    assert!(eventually(
        || platform.agent_node(hopper) == Some(NodeId::new(0))
    ));

    // Kill node 1 while it still holds the hopper's unexpired timer.
    assert!(platform.post(bomber, Payload::encode(&"boom")));
    assert!(eventually(|| platform.stats().nodes_dead == 1));

    // The timer must still reach the agent at its new home.
    assert!(eventually(|| fired.load(Ordering::Relaxed) == 1));
    platform.shutdown();
}

/// The route cache answers steady-state locates without the lock path:
/// repeat lookups of unmoved agents are cache hits, and a migration
/// flips the generation so the next lookup re-reads the truth.
#[test]
fn handle_locates_are_cached_until_a_migration_invalidates() {
    let platform = LivePlatform::new(2);
    let a = platform.spawn(Box::new(Hopper), NodeId::new(0));
    let b = platform.spawn(Box::new(Hopper), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 2));

    let mut handle = platform.handle();
    assert_eq!(handle.locate(a), Some(NodeId::new(0)));
    assert_eq!(handle.locate(b), Some(NodeId::new(1)));
    let misses_after_first = handle.cache_misses();
    for _ in 0..100 {
        assert_eq!(handle.locate(a), Some(NodeId::new(0)));
        assert_eq!(handle.locate(b), Some(NodeId::new(1)));
    }
    assert_eq!(
        handle.cache_misses(),
        misses_after_first,
        "no agent moved: every repeat locate must be a lock-free hit"
    );
    assert_eq!(handle.cache_hits(), 200);

    // Move `a`; the bumped shard generation must force a re-read.
    assert!(platform.post(a, Payload::encode(&1u32)));
    assert!(eventually(|| platform.agent_node(a) == Some(NodeId::new(1))));
    assert!(eventually(|| handle.locate(a) == Some(NodeId::new(1))));
    platform.shutdown();
}

/// Sanity at (modest) scale with the full machinery on: tens of
/// thousands of agents register, activate, stay individually locatable
/// through both lookup paths, and a batched fan-out reaches them all.
#[test]
fn fifty_thousand_agents_register_and_answer() {
    struct Counter(Arc<AtomicU64>);
    impl Agent for Counter {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _p: &Payload) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let nodes = 4u32;
    let count = 50_000u64;
    let platform = LivePlatform::new(nodes);
    let hits = Arc::new(AtomicU64::new(0));
    let ids: Vec<AgentId> = (0..count)
        .map(|i| {
            platform.spawn(
                Box::new(Counter(hits.clone())),
                NodeId::new((i % u64::from(nodes)) as u32),
            )
        })
        .collect();
    assert!(eventually(|| platform.stats().agents_activated == count));
    assert_eq!(platform.agent_count(), count as usize);

    let mut handle = platform.handle();
    for (i, &id) in ids.iter().enumerate() {
        let expect = NodeId::new((i as u32) % nodes);
        assert_eq!(handle.locate(id), Some(expect));
        assert_eq!(platform.agent_node(id), Some(expect));
        assert!(handle.post(id, Payload::encode(&0u8)));
    }
    handle.flush();
    assert!(eventually(|| hits.load(Ordering::Relaxed) == count));
    let stats = platform.shutdown();
    assert_eq!(stats.messages_delivered, count);
    assert_eq!(stats.messages_failed, 0);
}

/// The log that existing live tests use, kept here for a cross-check
/// that `post` through the platform (unbatched path) and through a
/// handle (batched path) deliver identically.
#[test]
fn platform_post_and_handle_post_agree() {
    struct Echo(Arc<Mutex<Vec<String>>>);
    impl Agent for Echo {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            self.0.lock().unwrap().push(payload.decode().unwrap());
        }
    }

    let platform = LivePlatform::new(2);
    let log = Arc::new(Mutex::new(Vec::new()));
    let echo = platform.spawn(Box::new(Echo(log.clone())), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 1));

    assert!(platform.post(echo, Payload::encode(&"direct")));
    let mut handle = platform.handle();
    assert!(handle.post(echo, Payload::encode(&"batched")));
    handle.flush();
    assert!(eventually(|| log.lock().unwrap().len() == 2));
    let got = log.lock().unwrap().clone();
    assert!(got.contains(&"direct".to_string()));
    assert!(got.contains(&"batched".to_string()));
    assert!(!platform.post(AgentId::new(999_999_999), Payload::encode(&"void")));
    platform.shutdown();
}
