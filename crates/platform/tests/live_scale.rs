//! Tests of the live runtime's scale machinery: sharded registry +
//! route cache behaviour through the public API, panic containment, and
//! the migration-vs-delivery race. Timing assertions are deliberately
//! loose — wall clocks are not simulation clocks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

use agentrack_platform::{
    Agent, AgentCtx, AgentId, LiveConfig, LivePlatform, NodeId, Payload, TimerId, TraceSink,
};
use agentrack_sim::{SimDuration, SimRng};

/// Keeps intentional behaviour panics out of the test output while
/// leaving every other panic (i.e. real test failures) loud.
fn quiet_node_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_node_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("agentrack-"));
            if !on_node_thread {
                default(info);
            }
        }));
    });
}

/// Waits (bounded) until `cond` is true.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..500 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Migrates to the node named by any `u32` payload; ignores the rest.
struct Hopper;
impl Agent for Hopper {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        if let Ok(dest) = payload.decode::<u32>() {
            ctx.dispatch(NodeId::new(dest));
        }
    }
}

#[test]
fn a_panicking_behaviour_kills_its_node_not_the_platform() {
    quiet_node_panics();

    struct Bomber;
    impl Agent for Bomber {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            panic!("intentional test panic: behaviour bug");
        }
    }
    struct Witness {
        bomber: AgentId,
        bomber_node: NodeId,
        failures: Arc<AtomicU64>,
        echoes: Arc<AtomicU64>,
    }
    impl Agent for Witness {
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            if payload.decode::<String>().as_deref() == Ok("probe the dead node") {
                ctx.send(self.bomber, self.bomber_node, Payload::encode(&"anyone?"));
            } else {
                self.echoes.fetch_add(1, Ordering::Relaxed);
            }
        }
        fn on_delivery_failed(
            &mut self,
            _ctx: &mut AgentCtx<'_>,
            _to: AgentId,
            _node: NodeId,
            _payload: &Payload,
        ) {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    let platform = LivePlatform::new(2);
    let bomber = platform.spawn(Box::new(Bomber), NodeId::new(1));
    let failures = Arc::new(AtomicU64::new(0));
    let echoes = Arc::new(AtomicU64::new(0));
    let witness = platform.spawn(
        Box::new(Witness {
            bomber,
            bomber_node: NodeId::new(1),
            failures: failures.clone(),
            echoes: echoes.clone(),
        }),
        NodeId::new(0),
    );
    assert!(eventually(|| platform.stats().agents_activated == 2));

    // Detonate. The node must die and take the bomber's registration.
    assert!(platform.post(bomber, Payload::encode(&"boom")));
    assert!(eventually(|| platform.stats().nodes_dead == 1));
    assert!(eventually(|| platform.agent_node(bomber).is_none()));

    // A pending delivery to the dead node fails back to the sender's
    // on_delivery_failed instead of vanishing into a dead queue.
    assert!(platform.post(witness, Payload::encode(&"probe the dead node")));
    assert!(eventually(|| failures.load(Ordering::Relaxed) == 1));

    // The surviving node keeps serving.
    assert!(platform.post(witness, Payload::encode(&"still alive?")));
    assert!(eventually(|| echoes.load(Ordering::Relaxed) >= 1));

    // And shutdown joins every thread — no leak, no hang.
    let stats = platform.shutdown();
    assert_eq!(stats.nodes_dead, 1);
    assert!(stats.messages_failed >= 1);
}

#[test]
fn a_panicking_timer_handler_is_contained_too() {
    quiet_node_panics();

    struct TimeBomb;
    impl Agent for TimeBomb {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10));
        }
        fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, _timer: TimerId) {
            panic!("intentional test panic: timer bug");
        }
    }

    let platform = LivePlatform::new(2);
    let bomb = platform.spawn(Box::new(TimeBomb), NodeId::new(1));
    assert!(eventually(|| platform.stats().nodes_dead == 1));
    assert!(eventually(|| platform.agent_node(bomb).is_none()));
    platform.shutdown();
}

/// Satellite: migration-vs-deliver race. Several threads hammer `move`
/// and `deliver` against the same agent; every message must either be
/// delivered at the destination or fail observably — the runtime's
/// counters have to reconcile exactly (sent = delivered + failed), and
/// the agent must still be registered and responsive afterwards.
#[test]
fn racing_moves_and_delivers_never_silently_drop_a_message() {
    let nodes = 4u32;
    for seed in [0x5eed1u64, 0x5eed2, 0x5eed3] {
        let platform = LivePlatform::with_config(
            nodes,
            // Small shard count and batches exercise the coalescing and
            // cross-shard paths harder than the defaults would.
            LiveConfig::default().with_shards(4).with_batch_max(8),
            TraceSink::disabled(),
        );
        let hopper = platform.spawn(Box::new(Hopper), NodeId::new(0));
        let delivered = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));

        // An agent-world sender: each timer tick fires a burst at the
        // hopper using a *guessed* (usually wrong) node, so some sends
        // bounce into on_delivery_failed while the hopper keeps moving.
        struct Stresser {
            target: AgentId,
            nodes: u32,
            round: u32,
            delivered: Arc<AtomicU64>,
            failed: Arc<AtomicU64>,
        }
        impl Agent for Stresser {
            fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1));
            }
            fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
                for i in 0..10u32 {
                    let guess = NodeId::new((self.round + i) % self.nodes);
                    ctx.send(self.target, guess, Payload::encode(&"are you there?"));
                }
                self.round += 1;
                if self.round < 40 {
                    ctx.set_timer(SimDuration::from_millis(1));
                }
            }
            fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _p: &Payload) {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            }
            fn on_delivery_failed(
                &mut self,
                _ctx: &mut AgentCtx<'_>,
                _to: AgentId,
                _node: NodeId,
                _payload: &Payload,
            ) {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        platform.spawn(
            Box::new(Stresser {
                target: hopper,
                nodes,
                round: 0,
                delivered: delivered.clone(),
                failed: failed.clone(),
            }),
            NodeId::new(3),
        );

        // Meanwhile the test thread keeps the hopper migrating and lobs
        // its own externally injected deliveries through a batched handle.
        let mut handle = platform.handle();
        let mut rng = SimRng::seed_from(seed);
        for i in 0..400u32 {
            let dest = rng.index(nodes as usize) as u32;
            assert!(handle.post(hopper, Payload::encode(&dest)));
            if i % 16 == 0 {
                handle.flush();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        handle.flush();

        // Quiesce: stats stop changing and the books balance exactly.
        assert!(
            eventually(|| {
                let s = platform.stats();
                s.messages_sent == s.messages_delivered + s.messages_failed
            }),
            "seed {seed:#x}: messages lost: {:?}",
            platform.stats()
        );
        let mid = platform.stats();
        assert!(mid.migrations > 0, "seed {seed:#x}: the hopper never moved");
        assert!(
            mid.messages_sent >= 400,
            "seed {seed:#x}: sends went missing before the wire"
        );

        // The hopper survived the storm: still registered, still willing
        // to hop when told.
        let before = platform.stats().migrations;
        let here = platform
            .agent_node(hopper)
            .expect("hopper still registered");
        let away = NodeId::new((here.raw() + 1) % nodes);
        assert!(platform.post(hopper, Payload::encode(&away.raw())));
        assert!(eventually(|| platform.stats().migrations > before));

        let stats = platform.shutdown();
        assert_eq!(
            stats.messages_sent,
            stats.messages_delivered + stats.messages_failed,
            "seed {seed:#x}: final books must balance: {stats:?}"
        );
        assert_eq!(stats.nodes_dead, 0);
    }
}

/// Shutdown accounting is exact even when it races in-flight traffic:
/// whatever is still queued behind a node's `Shutdown` marker — or
/// sitting in a sender's batch buffer — must end up counted delivered
/// or failed, never silently dropped. No quiescing before `shutdown()`
/// here, deliberately.
#[test]
fn books_balance_even_when_shutdown_races_inflight_traffic() {
    for round in 0..8u32 {
        let platform = LivePlatform::with_config(
            4,
            LiveConfig::default().with_shards(4).with_batch_max(4),
            TraceSink::disabled(),
        );
        let hopper = platform.spawn(Box::new(Hopper), NodeId::new(0));
        let mut handle = platform.handle();
        let mut rng = SimRng::seed_from(0xace0 + u64::from(round));
        for _ in 0..200u32 {
            let dest = rng.index(4) as u32;
            assert!(handle.post(hopper, Payload::encode(&dest)));
        }
        handle.flush();
        // Shut down mid-storm: migrations and deliveries are in flight.
        let stats = platform.shutdown();
        assert_eq!(
            stats.messages_sent,
            stats.messages_delivered + stats.messages_failed,
            "round {round}: shutdown lost messages: {stats:?}"
        );
    }
}

/// A pending timer belonging to an agent that migrated away survives its
/// origin node dying: `die()` hops it to the agent's current node.
#[test]
fn a_migrated_agents_timer_survives_its_old_node_dying() {
    quiet_node_panics();

    struct Bomber;
    impl Agent for Bomber {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            panic!("intentional test panic: behaviour bug");
        }
    }
    /// Sets a long timer at birth, then immediately migrates away —
    /// leaving the pending timer on the node it was born on.
    struct TimerHopper {
        home: NodeId,
        fired: Arc<AtomicU64>,
    }
    impl Agent for TimerHopper {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(150));
            ctx.dispatch(self.home);
        }
        fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, _timer: TimerId) {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
    }

    let platform = LivePlatform::new(2);
    let fired = Arc::new(AtomicU64::new(0));
    let hopper = platform.spawn(
        Box::new(TimerHopper {
            home: NodeId::new(0),
            fired: fired.clone(),
        }),
        NodeId::new(1),
    );
    let bomber = platform.spawn(Box::new(Bomber), NodeId::new(1));
    assert!(eventually(
        || platform.agent_node(hopper) == Some(NodeId::new(0))
    ));

    // Kill node 1 while it still holds the hopper's unexpired timer.
    assert!(platform.post(bomber, Payload::encode(&"boom")));
    assert!(eventually(|| platform.stats().nodes_dead == 1));

    // The timer must still reach the agent at its new home.
    assert!(eventually(|| fired.load(Ordering::Relaxed) == 1));
    platform.shutdown();
}

/// The route cache answers steady-state locates without the lock path:
/// repeat lookups of unmoved agents are cache hits, and a migration
/// flips the generation so the next lookup re-reads the truth.
#[test]
fn handle_locates_are_cached_until_a_migration_invalidates() {
    let platform = LivePlatform::new(2);
    let a = platform.spawn(Box::new(Hopper), NodeId::new(0));
    let b = platform.spawn(Box::new(Hopper), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 2));

    let mut handle = platform.handle();
    assert_eq!(handle.locate(a), Some(NodeId::new(0)));
    assert_eq!(handle.locate(b), Some(NodeId::new(1)));
    let misses_after_first = handle.cache_misses();
    for _ in 0..100 {
        assert_eq!(handle.locate(a), Some(NodeId::new(0)));
        assert_eq!(handle.locate(b), Some(NodeId::new(1)));
    }
    assert_eq!(
        handle.cache_misses(),
        misses_after_first,
        "no agent moved: every repeat locate must be a lock-free hit"
    );
    assert_eq!(handle.cache_hits(), 200);

    // Move `a`; the bumped shard generation must force a re-read.
    assert!(platform.post(a, Payload::encode(&1u32)));
    assert!(eventually(|| platform.agent_node(a) == Some(NodeId::new(1))));
    assert!(eventually(|| handle.locate(a) == Some(NodeId::new(1))));
    platform.shutdown();
}

/// Sanity at (modest) scale with the full machinery on: tens of
/// thousands of agents register, activate, stay individually locatable
/// through both lookup paths, and a batched fan-out reaches them all.
#[test]
fn fifty_thousand_agents_register_and_answer() {
    struct Counter(Arc<AtomicU64>);
    impl Agent for Counter {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _p: &Payload) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let nodes = 4u32;
    let count = 50_000u64;
    let platform = LivePlatform::new(nodes);
    let hits = Arc::new(AtomicU64::new(0));
    let ids: Vec<AgentId> = (0..count)
        .map(|i| {
            platform.spawn(
                Box::new(Counter(hits.clone())),
                NodeId::new((i % u64::from(nodes)) as u32),
            )
        })
        .collect();
    assert!(eventually(|| platform.stats().agents_activated == count));
    assert_eq!(platform.agent_count(), count as usize);

    let mut handle = platform.handle();
    for (i, &id) in ids.iter().enumerate() {
        let expect = NodeId::new((i as u32) % nodes);
        assert_eq!(handle.locate(id), Some(expect));
        assert_eq!(platform.agent_node(id), Some(expect));
        assert!(handle.post(id, Payload::encode(&0u8)));
    }
    handle.flush();
    assert!(eventually(|| hits.load(Ordering::Relaxed) == count));
    let stats = platform.shutdown();
    assert_eq!(stats.messages_delivered, count);
    assert_eq!(stats.messages_failed, 0);
}

/// The log that existing live tests use, kept here for a cross-check
/// that `post` through the platform (unbatched path) and through a
/// handle (batched path) deliver identically.
#[test]
fn platform_post_and_handle_post_agree() {
    struct Echo(Arc<Mutex<Vec<String>>>);
    impl Agent for Echo {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            self.0.lock().unwrap().push(payload.decode().unwrap());
        }
    }

    let platform = LivePlatform::new(2);
    let log = Arc::new(Mutex::new(Vec::new()));
    let echo = platform.spawn(Box::new(Echo(log.clone())), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 1));

    assert!(platform.post(echo, Payload::encode(&"direct")));
    let mut handle = platform.handle();
    assert!(handle.post(echo, Payload::encode(&"batched")));
    handle.flush();
    assert!(eventually(|| log.lock().unwrap().len() == 2));
    let got = log.lock().unwrap().clone();
    assert!(got.contains(&"direct".to_string()));
    assert!(got.contains(&"batched".to_string()));
    assert!(!platform.post(AgentId::new(999_999_999), Payload::encode(&"void")));
    platform.shutdown();
}

/// Checks a final (post-drain) snapshot against its own stats: per-node
/// rows must sum exactly to the snapshot totals, and those totals must
/// equal the platform counters — every counted operation appears in
/// exactly one node's telemetry.
fn assert_conserved(
    stats: &agentrack_platform::LiveStats,
    snap: &agentrack_platform::TelemetrySnapshot,
    context: &str,
) {
    let delivered: u64 = snap.nodes.iter().map(|n| n.delivered).sum();
    let failed: u64 = snap.nodes.iter().map(|n| n.failed).sum();
    assert_eq!(
        delivered, snap.delivered_total,
        "{context}: node rows must sum to the snapshot total"
    );
    assert_eq!(
        failed, snap.failed_total,
        "{context}: node rows must sum to the snapshot total"
    );
    assert_eq!(
        snap.delivered_total, stats.messages_delivered,
        "{context}: snapshot and stats disagree on delivered"
    );
    assert_eq!(
        snap.failed_total, stats.messages_failed,
        "{context}: snapshot and stats disagree on failed"
    );
    assert_eq!(
        stats.messages_sent,
        stats.messages_delivered + stats.messages_failed,
        "{context}: books must balance"
    );
    for n in &snap.nodes {
        assert_eq!(
            n.queue_depth, 0,
            "{context}: node {} still shows queued work after the final drain",
            n.node
        );
        assert_eq!(
            n.enqueued, n.processed,
            "{context}: node {}'s channel accounting must close",
            n.node
        );
    }
}

/// Tentpole: snapshot conservation when shutdown races in-flight
/// traffic. Same shape as the untelemetered race test above, but every
/// counted operation must also land in exactly one node's telemetry row.
#[test]
fn telemetry_conserves_counts_when_shutdown_races_inflight_traffic() {
    for round in 0..8u32 {
        let platform = LivePlatform::with_config(
            4,
            LiveConfig::default()
                .with_shards(4)
                .with_batch_max(4)
                .with_telemetry(true)
                .with_flight_recorder(8),
            TraceSink::disabled(),
        );
        let hopper = platform.spawn(Box::new(Hopper), NodeId::new(0));
        let mut handle = platform.handle();
        let mut rng = SimRng::seed_from(0x7e1e ^ u64::from(round));
        for _ in 0..200u32 {
            let dest = rng.index(4) as u32;
            assert!(handle.post(hopper, Payload::encode(&dest)));
        }
        handle.flush();
        drop(handle);
        // Shut down mid-storm: migrations and deliveries are in flight.
        let (stats, snap) = platform.shutdown_telemetry();
        let snap = snap.expect("telemetry was on");
        assert_conserved(&stats, &snap, &format!("round {round}"));
    }
}

/// Tentpole: snapshot conservation across panic-contained node death.
/// The dead node's row keeps the deliveries it made and absorbs the
/// failures charged to it; nothing is double-counted or lost.
#[test]
fn telemetry_conserves_counts_across_node_death() {
    quiet_node_panics();

    struct Bomber;
    impl Agent for Bomber {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            panic!("intentional test panic: behaviour bug");
        }
    }
    /// Pokes the dead node with a raw location-dependent send per
    /// message: each one bounces, charged to node 1's telemetry row.
    struct Prodder {
        bomber: AgentId,
    }
    impl Agent for Prodder {
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            ctx.send(self.bomber, NodeId::new(1), Payload::encode(&"anyone?"));
        }
    }

    let platform = LivePlatform::with_config(
        3,
        LiveConfig::default()
            .with_telemetry(true)
            .with_flight_recorder(4),
        TraceSink::disabled(),
    );
    let bomber = platform.spawn(Box::new(Bomber), NodeId::new(1));
    let prodder = platform.spawn(Box::new(Prodder { bomber }), NodeId::new(2));
    assert!(eventually(|| platform.stats().agents_activated == 2));

    // Kill node 1, then keep traffic flowing: deliveries accrue on the
    // survivor, bounces accrue at the dead node.
    assert!(platform.post(bomber, Payload::encode(&"boom")));
    assert!(eventually(|| platform.stats().nodes_dead == 1));
    let mut handle = platform.handle();
    for _ in 0..50 {
        assert!(handle.post(prodder, Payload::encode(&0u8)));
    }
    handle.flush();
    drop(handle);
    assert!(eventually(|| {
        let s = platform.stats();
        s.messages_sent == s.messages_delivered + s.messages_failed
    }));

    // While the platform is still up, only the bombed node reads dead.
    let live_snap = platform.telemetry_snapshot().expect("telemetry on");
    assert!(
        live_snap.nodes[1].dead,
        "the snapshot must flag the dead node"
    );
    assert!(
        !live_snap.nodes[0].dead && !live_snap.nodes[2].dead,
        "survivors must not be flagged while the platform runs"
    );

    let (stats, snap) = platform.shutdown_telemetry();
    let snap = snap.expect("telemetry was on");
    assert_eq!(stats.nodes_dead, 1);
    assert!(snap.nodes[1].dead, "the final snapshot keeps the dead flag");
    assert!(
        stats.messages_failed >= 1,
        "the boom delivery itself bounced nothing? {stats:?}"
    );
    assert_conserved(&stats, &snap, "node-death run");
}

/// A handler that blocks its node loop past the stall threshold is
/// flagged stalled while it is stuck — and an *idle* node never is,
/// because instrumented idle loops wake to re-stamp their heartbeat.
#[test]
fn stall_detection_flags_stuck_not_idle_nodes() {
    struct Sleeper;
    impl Agent for Sleeper {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            std::thread::sleep(Duration::from_millis(700));
        }
    }

    let platform = LivePlatform::with_config(
        2,
        LiveConfig::default()
            .with_telemetry(true)
            .with_stall_after_ms(100)
            .with_telemetry_interval_ms(20),
        TraceSink::disabled(),
    );
    let sleeper = platform.spawn(Box::new(Sleeper), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 1));
    // Let both nodes idle well past the threshold: neither may be
    // flagged, because idle loops keep their heartbeats fresh.
    std::thread::sleep(Duration::from_millis(300));
    let calm = platform.telemetry_snapshot().expect("telemetry on");
    assert_eq!(
        calm.stalled_nodes, 0,
        "idle must never read as stalled: {:?}",
        calm.nodes
    );

    // Wedge node 1 inside a handler and observe it flagged while stuck.
    assert!(platform.post(sleeper, Payload::encode(&0u8)));
    std::thread::sleep(Duration::from_millis(350));
    let wedged = platform.telemetry_snapshot().expect("telemetry on");
    assert!(
        wedged.nodes[1].stalled,
        "node 1 is mid-sleep, heartbeat {}ms old: must be stalled",
        wedged.nodes[1].heartbeat_age_ns / 1_000_000
    );
    assert!(!wedged.nodes[0].stalled, "node 0 is idle, not stuck");

    // Once the handler returns, the flag clears.
    assert!(eventually(|| platform
        .telemetry_snapshot()
        .is_some_and(|s| s.stalled_nodes == 0)));
    // The aggregator has been publishing all along.
    let published = platform.latest_telemetry().expect("aggregator published");
    assert!(published.at_ns > 0);
    platform.shutdown();
}

/// The flight recorder keeps at most K ops, ranked slowest-first, with
/// internally ordered phase timestamps; the known-slow handlers dominate
/// the capture.
#[test]
fn flight_recorder_captures_the_slowest_ops_with_ordered_phases() {
    struct PayloadSleeper;
    impl Agent for PayloadSleeper {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            if let Ok(ms) = payload.decode::<u64>() {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
    }

    let k = 3usize;
    let platform = LivePlatform::with_config(
        2,
        LiveConfig::default()
            .with_telemetry(true)
            .with_flight_recorder(k),
        TraceSink::disabled(),
    );
    let a = platform.spawn(Box::new(PayloadSleeper), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 1));
    let mut handle = platform.handle();
    // Many fast ops, three deliberately slow ones.
    for _ in 0..30 {
        assert!(handle.post(a, Payload::encode(&0u64)));
        handle.flush();
    }
    for ms in [40u64, 60, 50] {
        assert!(handle.post(a, Payload::encode(&ms)));
        handle.flush();
    }
    drop(handle);
    assert!(eventually(|| platform.stats().messages_delivered == 33));

    let (_, snap) = platform.shutdown_telemetry();
    let snap = snap.expect("telemetry was on");
    assert!(snap.slow_ops.len() <= k, "bounded at K");
    assert_eq!(snap.slow_ops.len(), k, "33 candidates: the ring fills");
    for pair in snap.slow_ops.windows(2) {
        assert!(
            pair[0].total_ns() >= pair[1].total_ns(),
            "slowest first: {:?}",
            snap.slow_ops
        );
    }
    for op in &snap.slow_ops {
        assert!(op.enqueued_ns <= op.started_ns && op.started_ns <= op.ended_ns);
        assert!(
            op.total_ns() >= Duration::from_millis(40).as_nanos() as u64,
            "a fast op displaced a deliberately slow one: {:?}",
            snap.slow_ops
        );
        assert!(
            op.handle_ns() >= Duration::from_millis(35).as_nanos() as u64,
            "the sleep happens in the handle phase: {op:?}"
        );
    }
}

/// With telemetry on, the op-latency histograms and queue/batch gauges
/// actually fill — and sampled locate latency appears once the handle
/// has made enough calls.
#[test]
fn latency_histograms_fill_under_instrumented_traffic() {
    struct Worker;
    impl Agent for Worker {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(5));
        }
        fn on_timer(&mut self, _ctx: &mut AgentCtx<'_>, _timer: TimerId) {}
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            if let Ok(dest) = payload.decode::<u32>() {
                ctx.dispatch(NodeId::new(dest));
            }
        }
    }

    let platform = LivePlatform::with_config(
        2,
        LiveConfig::default().with_telemetry(true),
        TraceSink::disabled(),
    );
    let w = platform.spawn(Box::new(Worker), NodeId::new(0));
    assert!(eventually(|| platform.stats().agents_activated == 1));
    let mut handle = platform.handle();
    for _ in 0..2048u32 {
        let _ = handle.locate(w);
    }
    for i in 0..200u32 {
        assert!(handle.post(w, Payload::encode(&(i % 2))));
        if i % 8 == 0 {
            handle.flush();
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    handle.flush();
    drop(handle);
    assert!(eventually(|| {
        let s = platform.stats();
        s.messages_sent == s.messages_delivered + s.messages_failed && s.migrations > 0
    }));

    let (stats, snap) = platform.shutdown_telemetry();
    let snap = snap.expect("telemetry was on");
    assert!(
        !snap.deliver_ns.is_empty(),
        "deliveries were stamped: histogram must fill"
    );
    assert_eq!(
        snap.deliver_ns.len(),
        stats.messages_delivered,
        "every delivered message contributes exactly one latency sample"
    );
    assert!(!snap.move_ns.is_empty(), "migrations were stamped");
    assert_eq!(snap.move_ns.len(), stats.migrations);
    assert!(!snap.timer_lag_ns.is_empty(), "the worker's timer fired");
    assert!(
        !snap.locate_ns.is_empty(),
        "2048 locates at 1-in-256 sampling: some samples must exist"
    );
    assert!(
        snap.locate_ns.len() <= 2048 / 128,
        "sampling must thin the stream"
    );
    assert!(!snap.batch_occupancy.is_empty(), "batches were shipped");
    assert!(
        snap.registry_generation > 0,
        "spawns and migrations churn the registry"
    );
    assert_conserved(&stats, &snap, "histogram run");
}

/// Satellite: per-handle route-cache counters survive the handle — they
/// fold into the platform totals on flush/drop and surface in
/// `LiveStats`.
#[test]
fn route_cache_totals_outlive_their_handles() {
    let platform = LivePlatform::new(2);
    let a = platform.spawn(Box::new(Hopper), NodeId::new(0));
    assert!(eventually(|| platform.stats().agents_activated == 1));

    let mut h1 = platform.handle();
    for _ in 0..100 {
        assert_eq!(h1.locate(a), Some(NodeId::new(0)));
    }
    let (hits1, misses1) = (h1.cache_hits(), h1.cache_misses());
    assert_eq!((hits1, misses1), (99, 1));
    drop(h1); // drop publishes via flush()

    let mut h2 = platform.handle();
    for _ in 0..50 {
        assert_eq!(h2.locate(a), Some(NodeId::new(0)));
    }
    h2.flush(); // explicit flush publishes too, without dropping
    let stats = platform.stats();
    assert_eq!(stats.route_cache_hits, 99 + 49);
    assert_eq!(stats.route_cache_misses, 2);

    // Flushing again publishes only the delta (nothing new happened).
    h2.flush();
    assert_eq!(platform.stats().route_cache_hits, 99 + 49);
    drop(h2);
    let final_stats = platform.shutdown();
    assert_eq!(final_stats.route_cache_hits, 99 + 49);
    assert_eq!(final_stats.route_cache_misses, 2);
}

/// Satellite: trace-ring overflow is no longer silent — the dropped
/// count surfaces in `LiveStats::trace_dropped`.
#[test]
fn trace_ring_overflow_surfaces_in_live_stats() {
    use agentrack_platform::TraceEvent;

    struct Chatterbox;
    impl Agent for Chatterbox {
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, _payload: &Payload) {
            let node = ctx.node();
            let now = ctx.now();
            ctx.trace().emit(now, || TraceEvent::MessageSend {
                kind: "Chatter",
                corr: None,
                from: 1,
                to: 2,
                node,
            });
        }
    }

    // A 4-record ring and 64 emissions: most must overflow.
    let platform = LivePlatform::with_trace(2, TraceSink::bounded(4));
    let chatter = platform.spawn(Box::new(Chatterbox), NodeId::new(1));
    assert!(eventually(|| platform.stats().agents_activated == 1));
    for _ in 0..64 {
        assert!(platform.post(chatter, Payload::encode(&0u8)));
    }
    assert!(eventually(|| platform.stats().messages_delivered == 64));
    assert!(eventually(|| platform.stats().trace_dropped >= 60));
    let stats = platform.shutdown();
    assert_eq!(stats.trace_dropped, 60, "64 events, 4 kept");
}

/// Telemetry off is really off: no snapshots, no stamps — but the
/// always-on per-node accounting still balances the books.
#[test]
fn telemetry_off_means_no_snapshots_but_exact_books() {
    let platform = LivePlatform::new(2);
    assert!(platform.telemetry_snapshot().is_none());
    assert!(platform.latest_telemetry().is_none());
    let a = platform.spawn(Box::new(Hopper), NodeId::new(0));
    let mut handle = platform.handle();
    for _ in 0..20 {
        assert!(handle.post(a, Payload::encode(&1u32)));
    }
    handle.flush();
    drop(handle);
    assert!(eventually(|| {
        let s = platform.stats();
        s.messages_sent == s.messages_delivered + s.messages_failed
    }));
    let (stats, snap) = platform.shutdown_telemetry();
    assert!(
        snap.is_none(),
        "telemetry off: shutdown returns no snapshot"
    );
    assert_eq!(stats.messages_sent, 20);
}
