//! Tests of the live (threaded) runtime: the same behaviours, real
//! threads. Timing assertions are deliberately loose — wall clocks are not
//! simulation clocks.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use agentrack_platform::{Agent, AgentCtx, AgentId, LivePlatform, NodeId, Payload, TimerId};
use agentrack_sim::SimDuration;

type Log = Arc<Mutex<Vec<String>>>;

struct Echo {
    log: Log,
}

impl Agent for Echo {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
        let text: String = payload.decode().unwrap();
        self.log.lock().unwrap().push(format!("echo got {text}"));
        // Reply wherever the sender is believed to be (node 0 for tests).
        ctx.send(
            from,
            NodeId::new(0),
            Payload::encode(&format!("re: {text}")),
        );
    }
}

/// Waits (bounded) until `cond` is true.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..200 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn messages_cross_threads_and_are_answered() {
    struct Asker {
        echo: AgentId,
        answers: Log,
    }
    impl Agent for Asker {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.send(self.echo, NodeId::new(1), Payload::encode(&"ping"));
        }
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            self.answers.lock().unwrap().push(payload.decode().unwrap());
        }
    }

    let platform = LivePlatform::new(2);
    let log: Log = Arc::default();
    let echo = platform.spawn(Box::new(Echo { log: log.clone() }), NodeId::new(1));
    let answers: Log = Arc::default();
    platform.spawn(
        Box::new(Asker {
            echo,
            answers: answers.clone(),
        }),
        NodeId::new(0),
    );

    assert!(eventually(|| answers.lock().unwrap().len() == 1));
    assert_eq!(answers.lock().unwrap()[0], "re: ping");
    let stats = platform.shutdown();
    assert_eq!(stats.messages_delivered, 2);
    assert_eq!(stats.messages_failed, 0);
}

#[test]
fn migration_moves_the_behaviour_between_threads() {
    struct Tourist {
        route: Vec<NodeId>,
        visited: Log,
    }
    impl Agent for Tourist {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            let next = self.route.remove(0);
            ctx.dispatch(next);
        }
        fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
            self.visited.lock().unwrap().push(ctx.node().to_string());
            if !self.route.is_empty() {
                let next = self.route.remove(0);
                ctx.dispatch(next);
            }
        }
    }

    let platform = LivePlatform::new(4);
    let visited: Log = Arc::default();
    let tourist = platform.spawn(
        Box::new(Tourist {
            route: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            visited: visited.clone(),
        }),
        NodeId::new(0),
    );

    assert!(eventually(|| visited.lock().unwrap().len() == 3));
    assert_eq!(
        visited.lock().unwrap().as_slice(),
        ["node1", "node2", "node3"]
    );
    assert_eq!(platform.agent_node(tourist), Some(NodeId::new(3)));
    let stats = platform.shutdown();
    assert_eq!(stats.migrations, 3);
}

#[test]
fn timers_follow_a_migrating_agent() {
    struct MoveThenTick {
        ticked_at: Arc<Mutex<Option<NodeId>>>,
    }
    impl Agent for MoveThenTick {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            // Set a timer, then immediately leave: the timer must chase us.
            ctx.set_timer(SimDuration::from_millis(50));
            ctx.dispatch(NodeId::new(1));
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _timer: TimerId) {
            *self.ticked_at.lock().unwrap() = Some(ctx.node());
        }
    }

    let platform = LivePlatform::new(2);
    let ticked_at = Arc::new(Mutex::new(None));
    platform.spawn(
        Box::new(MoveThenTick {
            ticked_at: ticked_at.clone(),
        }),
        NodeId::new(0),
    );
    assert!(eventually(|| ticked_at.lock().unwrap().is_some()));
    assert_eq!(*ticked_at.lock().unwrap(), Some(NodeId::new(1)));
    platform.shutdown();
}

#[test]
fn wrong_address_bounces_to_the_sender() {
    struct Hopeful {
        failures: Log,
    }
    impl Agent for Hopeful {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.send(
                AgentId::new(424_242),
                NodeId::new(1),
                Payload::encode(&"anyone?"),
            );
        }
        fn on_delivery_failed(
            &mut self,
            _ctx: &mut AgentCtx<'_>,
            to: AgentId,
            node: NodeId,
            _payload: &Payload,
        ) {
            self.failures
                .lock()
                .unwrap()
                .push(format!("{to} not at {node}"));
        }
    }

    let platform = LivePlatform::new(2);
    let failures: Log = Arc::default();
    platform.spawn(
        Box::new(Hopeful {
            failures: failures.clone(),
        }),
        NodeId::new(0),
    );
    assert!(eventually(|| failures.lock().unwrap().len() == 1));
    assert_eq!(failures.lock().unwrap()[0], "agent424242 not at node1");
    platform.shutdown();
}

#[test]
fn dispose_runs_farewells_and_removes_the_agent() {
    struct Mayfly {
        farewell_to: AgentId,
    }
    impl Agent for Mayfly {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.dispose();
        }
        fn on_dispose(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.send(
                self.farewell_to,
                NodeId::new(0),
                Payload::encode(&"goodbye"),
            );
        }
    }
    struct Mourner {
        heard: Log,
    }
    impl Agent for Mourner {
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            self.heard.lock().unwrap().push(payload.decode().unwrap());
        }
    }

    let platform = LivePlatform::new(2);
    let heard: Log = Arc::default();
    let mourner = platform.spawn(
        Box::new(Mourner {
            heard: heard.clone(),
        }),
        NodeId::new(0),
    );
    let mayfly = platform.spawn(
        Box::new(Mayfly {
            farewell_to: mourner,
        }),
        NodeId::new(1),
    );

    assert!(eventually(|| heard.lock().unwrap().len() == 1));
    assert!(eventually(|| platform.agent_node(mayfly).is_none()));
    let stats = platform.shutdown();
    assert_eq!(stats.agents_disposed, 1);
}

#[test]
fn remote_creation_from_a_handler() {
    struct Parent {
        born: Log,
    }
    struct Child {
        report_to: (AgentId, NodeId),
    }
    impl Agent for Parent {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            let me = ctx.self_id();
            let here = ctx.node();
            ctx.create_agent(
                Box::new(Child {
                    report_to: (me, here),
                }),
                NodeId::new(1),
            );
        }
        fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
            self.born.lock().unwrap().push(payload.decode().unwrap());
        }
    }
    impl Agent for Child {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            assert_eq!(ctx.node(), NodeId::new(1));
            ctx.send(
                self.report_to.0,
                self.report_to.1,
                Payload::encode(&"born on node1"),
            );
        }
    }

    let platform = LivePlatform::new(2);
    let born: Log = Arc::default();
    platform.spawn(Box::new(Parent { born: born.clone() }), NodeId::new(0));
    assert!(eventually(|| born.lock().unwrap().len() == 1));
    assert_eq!(platform.agent_count(), 2);
    platform.shutdown();
}

#[test]
fn post_injects_external_messages() {
    let platform = LivePlatform::new(2);
    let log: Log = Arc::default();
    let echo = platform.spawn(Box::new(Echo { log: log.clone() }), NodeId::new(1));
    assert!(eventually(|| platform.agent_node(echo).is_some()));
    assert!(platform.post(echo, Payload::encode(&"external")));
    assert!(eventually(|| log.lock().unwrap().len() == 1));
    assert!(!platform.post(AgentId::new(999_999), Payload::encode(&"void")));
    platform.shutdown();
}
