//! Perf-regression gate: compares freshly generated micro-benchmark
//! results (`BENCH_lookup.json`, written by the `compiled` bench) against
//! the checked-in baseline (`results/bench_baseline.json`) and fails when
//! any benchmark regressed past the tolerance.
//!
//! ```text
//! bench_gate [--baseline FILE] [--current FILE] [--tolerance RATIO]
//! ```
//!
//! A benchmark regresses when `current > baseline * tolerance` **and**
//! `current - baseline` exceeds an absolute floor (`BENCH_GATE_FLOOR_NS`,
//! default 50 ns) — the floor keeps single-digit-nanosecond benches from
//! tripping the gate on scheduler noise. The tolerance ratio defaults to
//! 2.0× (shared CI runners are noisy; the regressions this gate exists to
//! catch — an accidental O(depth) walk reappearing on the compiled path —
//! are order-of-magnitude) and can be overridden per run with
//! `--tolerance` or the `BENCH_GATE_TOLERANCE` environment variable.
//!
//! A baseline id missing from the current results fails the gate: a
//! renamed or deleted bench must update the baseline in the same change.
//!
//! The gate serves two baseline files. The default pair above guards the
//! compiled-lookup micro-benchmarks; the live-runtime smoke gate runs the
//! same binary against the second pair:
//!
//! ```text
//! bench_gate --baseline results/bench_live_baseline.json --current BENCH_live.json
//! ```
//!
//! where `BENCH_live.json` is written by `live_bench` (ids `live/locate`,
//! `live/move`, `live/post`, ns derived from measured throughput). That
//! gate runs with `BENCH_GATE_TOLERANCE=4.0`: whole-runtime throughput on
//! shared runners swings more than a micro-bench, and the failures it
//! exists to catch (a broken route cache, a re-serialised registry) are
//! 5-20x. Refresh that baseline by re-running the smoke command from
//! `results/bench_live_baseline.json` and copying the results array.

use std::path::PathBuf;
use std::process::ExitCode;

use serde::Deserialize;

/// The subset of a results file this gate reads (extra fields such as
/// the human-oriented `speedups` table are ignored).
#[derive(Deserialize)]
struct BenchFile {
    results: Vec<BenchRow>,
}

/// One benchmark measurement.
#[derive(Deserialize)]
struct BenchRow {
    id: String,
    ns_per_iter: f64,
}

/// `(id, ns_per_iter)` rows parsed from a results file's `results` array.
fn parse_results(path: &PathBuf) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let file: BenchFile =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    Ok(file
        .results
        .into_iter()
        .map(|row| (row.id, row.ns_per_iter))
        .collect())
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let mut baseline = PathBuf::from("results/bench_baseline.json");
    let mut current = PathBuf::from("BENCH_lookup.json");
    let mut tolerance = env_f64("BENCH_GATE_TOLERANCE").unwrap_or(2.0);
    let floor_ns = env_f64("BENCH_GATE_FLOOR_NS").unwrap_or(50.0);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline = PathBuf::from(p),
                None => {
                    eprintln!("--baseline requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--current" => match args.next() {
                Some(p) => current = PathBuf::from(p),
                None => {
                    eprintln!("--current requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 1.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a ratio >= 1.0");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [--baseline FILE] [--current FILE] [--tolerance RATIO]\n\
                     env: BENCH_GATE_TOLERANCE (ratio), BENCH_GATE_FLOOR_NS (absolute floor)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let base_rows = match parse_results(&baseline) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cur_rows = match parse_results(&current) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cur: std::collections::BTreeMap<&str, f64> =
        cur_rows.iter().map(|(id, ns)| (id.as_str(), *ns)).collect();

    println!(
        "bench_gate: {} baseline ids vs {} ({}), tolerance {tolerance:.2}x, floor {floor_ns:.0} ns",
        base_rows.len(),
        current.display(),
        cur.len(),
    );
    let mut failures = 0u32;
    for (id, old_ns) in &base_rows {
        match cur.get(id.as_str()) {
            None => {
                failures += 1;
                eprintln!(
                    "REGRESSION {id}: present in baseline ({old_ns:.2} ns) but missing from \
                     current results — renamed/removed benches must update the baseline"
                );
            }
            Some(&new_ns) => {
                let regressed = new_ns > old_ns * tolerance && new_ns - old_ns > floor_ns;
                if regressed {
                    failures += 1;
                    eprintln!(
                        "REGRESSION {id}: {old_ns:.2} ns -> {new_ns:.2} ns \
                         ({:.2}x, tolerance {tolerance:.2}x)",
                        new_ns / old_ns,
                    );
                } else {
                    println!("  ok {id}: {old_ns:.2} ns -> {new_ns:.2} ns");
                }
            }
        }
    }
    for (id, _) in &cur_rows {
        if !base_rows.iter().any(|(b, _)| b == id) {
            println!("  new {id}: not in baseline (update results/bench_baseline.json)");
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: FAILED — {failures} regression(s). If intentional, refresh the \
             baseline: cp {} {}",
            current.display(),
            baseline.display(),
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: OK — no regressions");
    ExitCode::SUCCESS
}
