//! Runs declarative scenario specs: the data-driven counterpart of the
//! `repro` binary.
//!
//! ```text
//! scenario_lab [--quick] [--jobs N] [--out DIR] [--validate-only] [SPEC.json]...
//! ```
//!
//! With no spec arguments, every `specs/*.json` in the repository runs.
//! Each spec prints its rendered table and writes `<name>.csv` plus
//! structured per-trial records as `<name>.trials.json` into the output
//! directory (`results/` by default). `--validate-only` parses and
//! validates the specs without running anything — the CI smoke job's
//! first gate. `--jobs 0` means one worker thread per available core;
//! tables are byte-identical at any job count because every trial owns
//! its simulation.

use std::path::PathBuf;
use std::process::ExitCode;

use agentrack_bench::{run_spec, Fidelity, ScenarioSpec};

fn main() -> ExitCode {
    let mut fidelity = Fidelity::Full;
    let mut jobs: usize = 1;
    let mut out_dir = PathBuf::from("results");
    let mut validate_only = false;
    let mut chosen: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(0) => {
                    jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
                }
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs requires a thread count (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--validate-only" => validate_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: scenario_lab [--quick] [--jobs N] [--out DIR] \
                     [--validate-only] [SPEC.json]..."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
            path => chosen.push(PathBuf::from(path)),
        }
    }
    if chosen.is_empty() {
        chosen = default_specs();
        if chosen.is_empty() {
            eprintln!("no specs given and none found under specs/");
            return ExitCode::FAILURE;
        }
    }

    // Load (and thereby validate) everything up front: a typo in the
    // last spec should not cost the runtime of the first.
    let mut specs = Vec::new();
    for path in &chosen {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match ScenarioSpec::load_str(&source) {
            Ok(spec) => {
                println!("{}: ok ({})", path.display(), spec.name);
                specs.push(spec);
            }
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if validate_only {
        return ExitCode::SUCCESS;
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut dirty = false;
    for spec in &specs {
        let started = std::time::Instant::now();
        let outcome = run_spec(spec, fidelity, jobs);
        print!("{}", outcome.table.render());
        println!("[{} took {:.1?}]", spec.name, started.elapsed());
        let csv = out_dir.join(format!("{}.csv", spec.name));
        if let Err(e) = std::fs::write(&csv, outcome.table.to_csv()) {
            eprintln!("cannot write {}: {e}", csv.display());
            return ExitCode::FAILURE;
        }
        let trials = out_dir.join(format!("{}.trials.json", spec.name));
        if let Err(e) = std::fs::write(&trials, outcome.trials_json()) {
            eprintln!("cannot write {}: {e}", trials.display());
            return ExitCode::FAILURE;
        }
        let violations: usize = outcome
            .trials
            .iter()
            .filter_map(|t| t.invariants.as_ref())
            .map(|i| i.violations.len())
            .sum();
        if violations > 0 {
            eprintln!("{}: {violations} invariant violation(s)", spec.name);
            dirty = true;
        }
    }
    if dirty {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Every `specs/*.json`, sorted, walking up from the working directory
/// so the binary works from the workspace root or a crate directory.
fn default_specs() -> Vec<PathBuf> {
    let mut dir = PathBuf::from("specs");
    if !dir.is_dir() {
        dir = PathBuf::from("../../specs");
    }
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut specs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    specs.sort();
    specs
}
