//! Regenerates the paper's evaluation figures and the extension
//! experiments.
//!
//! ```text
//! repro [--quick] [--csv DIR] [--jobs N] [exp1|exp2|ablation-split|
//!        ablation-propagation|sweep-thresholds|skew|baselines|all]...
//! ```
//!
//! With no experiment arguments, everything runs. `--quick` shrinks
//! populations and spans for a fast smoke pass; the recorded results in
//! `EXPERIMENTS.md` come from full-fidelity runs. `--csv DIR` additionally
//! writes one CSV per experiment into `DIR`. `--jobs N` runs the
//! independent grid cells of each experiment on `N` worker threads
//! (results are identical to sequential — each cell owns its simulation
//! and its seed); `--jobs 0` means one thread per available core.

use std::path::PathBuf;
use std::process::ExitCode;

use agentrack_bench::{attribution, run_experiment, trackers_registry, Fidelity, EXPERIMENTS};

fn main() -> ExitCode {
    let mut fidelity = Fidelity::Full;
    let mut csv_dir: Option<PathBuf> = None;
    let mut jobs: usize = 1;
    let mut chosen: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(0) => {
                    jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
                }
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs requires a thread count (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--csv DIR] [--jobs N] [EXPERIMENT]...\n\
                     experiments: {} | all",
                    EXPERIMENTS.join(" | ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => chosen.extend(EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            name if EXPERIMENTS.contains(&name) => chosen.push(name.to_owned()),
            other => {
                eprintln!(
                    "unknown argument {other:?}; experiments: {}",
                    EXPERIMENTS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if chosen.is_empty() {
        chosen.extend(EXPERIMENTS.iter().map(|s| (*s).to_owned()));
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for name in chosen {
        let started = std::time::Instant::now();
        // The trackers experiment additionally exports the full metrics
        // registry as JSON, and the attribution experiment exports a
        // Perfetto trace plus a folded flamegraph; run each once and keep
        // every rendering.
        let (table, mut extra_files) = if name == "trackers" {
            let (table, json) = trackers_registry(fidelity);
            (table, vec![("trackers.json".to_owned(), json)])
        } else if name == "attribution" {
            let (table, perfetto, folded) = attribution(fidelity, jobs);
            (
                table,
                vec![
                    ("attribution.perfetto.json".to_owned(), perfetto),
                    ("attribution.folded".to_owned(), folded),
                ],
            )
        } else {
            (run_experiment(&name, fidelity, jobs), Vec::new())
        };
        print!("{}", table.render());
        println!("[{name} took {:.1?}]", started.elapsed());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, table.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("[wrote {}]", path.display());
            for (file, contents) in extra_files.drain(..) {
                let path = dir.join(file);
                if let Err(e) = std::fs::write(&path, contents) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("[wrote {}]", path.display());
            }
        }
    }
    ExitCode::SUCCESS
}
