//! Live-runtime throughput bench: locates/sec + moves/sec on the
//! threaded [`LivePlatform`] at 1M–10M registered agents.
//!
//! Everything else in this repo measures the *discrete-event* kernel;
//! this binary is the one that makes the live runtime put up headline
//! numbers for the paper's scalability claim. It spins up `--nodes` node
//! threads, registers `--agents` no-op mobile agents, then drives
//! `--drivers` external threads through [`LiveHandle`]s with a mixed
//! workload: Zipf-popular location lookups plus a trickle of real
//! migrations (`--move-pct`), which is exactly the traffic shape that
//! punishes a global registry lock and rewards the sharded
//! registry / batched channels / generation-validated route cache added
//! in `platform/src/live/`.
//!
//! ```text
//! live_bench [--agents N] [--nodes N] [--seconds S] [--drivers K]
//!            [--shards N] [--batch N] [--drain-budget N]
//!            [--route-cache-bits B] [--move-pct P] [--zipf S] [--seed N]
//!            [--inflight N] [--compare] [--check] [--out FILE]
//! ```
//!
//! * `--shards 1 --batch 1 --drain-budget 1 --route-cache-bits 0`
//!   reproduces the pre-sharding runtime: one global registry lock, one
//!   channel op per message, one blocking receive per wake-up, no route
//!   cache — none of which existed before the `live/` split.
//! * `--compare` runs the tuned arm and that baseline arm in one
//!   invocation and emits a `speedup` section.
//! * `--check` is the CI smoke mode: after the measured window it
//!   asserts the books balance (`sent == delivered + failed`), every
//!   sampled agent is still locatable, and no node died — exiting
//!   non-zero otherwise.
//!
//! The output (`BENCH_live.json` by default) carries a `results` array
//! in the exact shape `bench_gate` consumes, so CI gates it against
//! `results/bench_live_baseline.json`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use agentrack_platform::{
    Agent, AgentCtx, AgentId, LiveConfig, LivePlatform, LiveStats, NodeId, OpKind, Payload, SlowOp,
    TelemetrySnapshot, TraceSink,
};
use agentrack_sim::{LogHistogram, SimRng, Zipf};
use agentrack_trace_analysis::{to_flight_json, to_flight_perfetto, FlightOp};

/// The bench's only behaviour: migrate wherever a `u32` payload says.
struct Sink;
impl Agent for Sink {
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, payload: &Payload) {
        if let Ok(dest) = payload.decode::<u32>() {
            ctx.dispatch(NodeId::new(dest));
        }
    }
}

#[derive(Clone)]
struct Opts {
    nodes: u32,
    agents: u64,
    seconds: f64,
    drivers: usize,
    shards: usize,
    batch: usize,
    drain_budget: usize,
    route_cache_bits: u8,
    move_pct: f64,
    zipf: f64,
    seed: u64,
    inflight: u64,
    settle_secs: f64,
    compare: bool,
    check: bool,
    telemetry: bool,
    flight_recorder: usize,
    overhead: bool,
    overhead_reps: usize,
    overhead_max_pct: f64,
    flight_out: Option<String>,
    csv_out: String,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            nodes: 4,
            agents: 1_000_000,
            seconds: 5.0,
            drivers: 2,
            shards: 0, // auto (1024)
            batch: 64,
            drain_budget: 256,
            route_cache_bits: 20,
            // Read-dominated mix: a location mechanism exists because
            // lookups vastly outnumber migrations.
            move_pct: 1.0,
            zipf: 1.1,
            seed: 0x11fe,
            inflight: 200_000,
            settle_secs: 30.0,
            compare: false,
            check: false,
            telemetry: false,
            flight_recorder: 0,
            overhead: false,
            overhead_reps: 1,
            overhead_max_pct: 0.0,
            flight_out: None,
            csv_out: "results/live_telemetry.csv".to_string(),
            out: "BENCH_live.json".to_string(),
        }
    }
}

/// Throughput measured for one platform configuration.
struct ArmResult {
    locates_per_sec: f64,
    moves_per_sec: f64,
    posts_per_sec: f64,
    cache_hit_rate: f64,
    window_secs: f64,
    stats: LiveStats,
    /// The final (post-drain) telemetry snapshot, when the arm ran
    /// instrumented.
    snapshot: Option<TelemetrySnapshot>,
}

impl ArmResult {
    fn ns(rate: f64) -> f64 {
        if rate > 0.0 {
            1e9 / rate
        } else {
            f64::INFINITY
        }
    }
}

/// A latency percentile read off a telemetry histogram, in nanoseconds.
fn pctl(h: &LogHistogram, p: f64) -> f64 {
    h.percentile(p).as_nanos() as f64
}

/// One histogram as a JSON object of percentiles plus its sample count.
fn fmt_pctls(h: &LogHistogram) -> String {
    format!(
        "{{\"p50\": {:.0}, \"p95\": {:.0}, \"p99\": {:.0}, \"samples\": {}}}",
        pctl(h, 50.0),
        pctl(h, 95.0),
        pctl(h, 99.0),
        h.len()
    )
}

/// How many driver ops sit between two move ops for a given percentage.
fn move_stride(move_pct: f64) -> u64 {
    if move_pct <= 0.0 {
        0
    } else {
        ((100.0 / move_pct).round() as u64).max(1)
    }
}

fn run_arm(opts: &Opts, config: LiveConfig, label: &str) -> Result<ArmResult, String> {
    eprintln!(
        "live_bench[{label}]: {} agents on {} nodes, {} drivers, shards={}, batch={}, \
         cache=2^{}, {:.0}% moves, {:.1}s window",
        opts.agents,
        opts.nodes,
        opts.drivers,
        config.effective_shards(),
        config.batch_max,
        config.route_cache_bits,
        opts.move_pct,
        opts.seconds,
    );
    let platform = LivePlatform::with_config(opts.nodes, config, TraceSink::disabled());

    // ---- Register the population and wait until every agent is active.
    let spawn_start = Instant::now();
    for i in 0..opts.agents {
        platform.spawn(
            Box::new(Sink),
            NodeId::new((i % u64::from(opts.nodes)) as u32),
        );
        // Don't let the spawn loop run the welcome queues arbitrarily
        // deep: cap the backlog so memory stays bounded at 10M agents.
        if i % 262_144 == 0 && i > 0 {
            while i.saturating_sub(platform.stats().agents_activated) > 2_000_000 {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    let activation_deadline = Instant::now() + Duration::from_secs(600);
    while platform.stats().agents_activated < opts.agents {
        if Instant::now() > activation_deadline {
            return Err(format!(
                "activation stalled: {}/{} agents",
                platform.stats().agents_activated,
                opts.agents
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    eprintln!(
        "live_bench[{label}]: population active in {:.1}s",
        spawn_start.elapsed().as_secs_f64()
    );

    // ---- Pre-sample the workload so the measured loop does no RNG or
    // Zipf binary-search work, only the operations under test.
    const PRESAMPLE: usize = 1 << 16;
    const PMASK: u64 = (PRESAMPLE - 1) as u64;
    let zipf = Zipf::new(opts.agents as usize, opts.zipf);
    let stride = move_stride(opts.move_pct);
    let hop_payloads: Vec<Payload> = (0..opts.nodes).map(|n| Payload::encode(&n)).collect();

    let total_locates = AtomicU64::new(0);
    let total_posts = AtomicU64::new(0);
    let total_hits = AtomicU64::new(0);
    let total_misses = AtomicU64::new(0);

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(opts.seconds);
    let stats_at_start = platform.stats();

    std::thread::scope(|s| {
        for d in 0..opts.drivers {
            let platform = &platform;
            let zipf = &zipf;
            let hop_payloads = &hop_payloads;
            let (total_locates, total_posts) = (&total_locates, &total_posts);
            let (total_hits, total_misses) = (&total_hits, &total_misses);
            let opts = opts.clone();
            s.spawn(move || {
                let mut rng = SimRng::seed_from(opts.seed ^ (0xd00d + d as u64));
                let locate_targets: Vec<u64> = (0..PRESAMPLE)
                    .map(|_| zipf.sample(&mut rng) as u64)
                    .collect();
                let move_targets: Vec<u64> = (0..PRESAMPLE)
                    .map(|_| rng.index(opts.agents as usize) as u64)
                    .collect();
                let move_dests: Vec<u32> = (0..PRESAMPLE)
                    .map(|_| rng.index(opts.nodes as usize) as u32)
                    .collect();

                let mut handle = platform.handle();
                let (mut locates, mut posts, mut i) = (0u64, 0u64, 0u64);
                while Instant::now() < deadline {
                    for _ in 0..4096 {
                        i += 1;
                        let slot = (i & PMASK) as usize;
                        if stride != 0 && i % stride == 0 {
                            let target = AgentId::new(move_targets[slot]);
                            // Rotate the destination on every pass through the
                            // presample ring: a slot that always named the same
                            // node would only migrate its agent once.
                            let dest =
                                (u64::from(move_dests[slot]) + (i >> 16)) % u64::from(opts.nodes);
                            let hop = hop_payloads[dest as usize].clone();
                            if handle.post(target, hop) {
                                posts += 1;
                            }
                        } else if handle.locate(AgentId::new(locate_targets[slot])).is_some() {
                            locates += 1;
                        }
                    }
                    handle.flush();
                    // Backpressure: never let posted work outrun the node
                    // threads unboundedly, or "throughput" would just be
                    // queue growth.
                    let st = platform.stats();
                    let in_flight = st.messages_sent - st.messages_delivered - st.messages_failed;
                    if in_flight > opts.inflight {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                handle.flush();
                total_locates.fetch_add(locates, Ordering::Relaxed);
                total_posts.fetch_add(posts, Ordering::Relaxed);
                total_hits.fetch_add(handle.cache_hits(), Ordering::Relaxed);
                total_misses.fetch_add(handle.cache_misses(), Ordering::Relaxed);
            });
        }
    });
    let window = start.elapsed().as_secs_f64();
    let stats_at_end = platform.stats();

    // ---- Settle: drain in-flight messages until the books balance.
    let settle_deadline = Instant::now() + Duration::from_secs_f64(opts.settle_secs);
    loop {
        let s = platform.stats();
        if s.messages_sent == s.messages_delivered + s.messages_failed {
            break;
        }
        if Instant::now() > settle_deadline {
            return Err(format!(
                "settle timeout: sent {} != delivered {} + failed {}",
                s.messages_sent, s.messages_delivered, s.messages_failed
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let final_stats = platform.stats();
    if opts.check {
        check_invariants(&platform, opts, &final_stats)?;
    }
    let (end_stats, snapshot) = platform.shutdown_telemetry();
    if opts.check {
        if let Some(snap) = &snapshot {
            check_snapshot(snap, &end_stats)?;
        }
    }

    let locates = total_locates.load(Ordering::Relaxed);
    let posts = total_posts.load(Ordering::Relaxed);
    let hits = total_hits.load(Ordering::Relaxed);
    let misses = total_misses.load(Ordering::Relaxed);
    let moves_in_window = stats_at_end.migrations - stats_at_start.migrations;
    let result = ArmResult {
        locates_per_sec: locates as f64 / window,
        moves_per_sec: moves_in_window as f64 / window,
        posts_per_sec: posts as f64 / window,
        cache_hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        window_secs: window,
        stats: end_stats,
        snapshot,
    };
    eprintln!(
        "live_bench[{label}]: {:.0} locates/s, {:.0} moves/s, {:.0} posts/s, \
         cache hit rate {:.1}%",
        result.locates_per_sec,
        result.moves_per_sec,
        result.posts_per_sec,
        result.cache_hit_rate * 100.0,
    );
    if let Some(snap) = &result.snapshot {
        eprintln!(
            "live_bench[{label}]: telemetry: locate p50/p99 {:.0}/{:.0}ns, \
             move p50/p99 {:.0}/{:.0}ns, deliver p50/p99 {:.0}/{:.0}ns, \
             {} slow ops captured, {} stalled",
            pctl(&snap.locate_ns, 50.0),
            pctl(&snap.locate_ns, 99.0),
            pctl(&snap.move_ns, 50.0),
            pctl(&snap.move_ns, 99.0),
            pctl(&snap.deliver_ns, 50.0),
            pctl(&snap.deliver_ns, 99.0),
            snap.slow_ops.len(),
            snap.stalled_nodes,
        );
    }
    Ok(result)
}

/// `--check --telemetry`: the snapshot must tell the same story as the
/// platform counters — per-node rows summing to totals, totals matching
/// `LiveStats`, and every channel's books closed.
fn check_snapshot(snap: &TelemetrySnapshot, stats: &LiveStats) -> Result<(), String> {
    let delivered: u64 = snap.nodes.iter().map(|n| n.delivered).sum();
    let failed: u64 = snap.nodes.iter().map(|n| n.failed).sum();
    if delivered != snap.delivered_total || failed != snap.failed_total {
        return Err(format!(
            "check: snapshot node rows do not sum to its totals: \
             {delivered}/{} delivered, {failed}/{} failed",
            snap.delivered_total, snap.failed_total
        ));
    }
    if snap.delivered_total != stats.messages_delivered
        || snap.failed_total != stats.messages_failed
    {
        return Err(format!(
            "check: snapshot disagrees with LiveStats: {}/{} delivered, {}/{} failed",
            snap.delivered_total,
            stats.messages_delivered,
            snap.failed_total,
            stats.messages_failed
        ));
    }
    for n in &snap.nodes {
        if n.queue_depth != 0 || n.enqueued != n.processed {
            return Err(format!(
                "check: node {} channel books did not close: {} in, {} out",
                n.node, n.enqueued, n.processed
            ));
        }
    }
    if stats.migrations > 0 && snap.move_ns.is_empty() {
        return Err("check: migrations happened but the move histogram is empty".into());
    }
    eprintln!("live_bench: telemetry snapshot checks passed");
    Ok(())
}

/// Maps the platform's slow-op capture into the exporter's plain rows.
fn flight_rows(snap: &TelemetrySnapshot) -> Vec<FlightOp> {
    snap.slow_ops.iter().map(flight_row).collect()
}

fn flight_row(op: &SlowOp) -> FlightOp {
    FlightOp {
        kind: match op.kind {
            OpKind::Deliver => "deliver",
            OpKind::Move => "move",
            OpKind::Timer => "timer",
        },
        node: op.node,
        agent: op.agent,
        enqueued_ns: op.enqueued_ns,
        started_ns: op.started_ns,
        ended_ns: op.ended_ns,
    }
}

/// `--check` mode: the assertions that make the smoke run a test.
fn check_invariants(platform: &LivePlatform, opts: &Opts, stats: &LiveStats) -> Result<(), String> {
    if stats.agents_activated != opts.agents {
        return Err(format!(
            "check: only {}/{} agents activated",
            stats.agents_activated, opts.agents
        ));
    }
    if stats.messages_sent != stats.messages_delivered + stats.messages_failed {
        return Err(format!("check: message books do not balance: {stats:?}"));
    }
    if stats.nodes_dead != 0 {
        return Err(format!("check: {} node(s) died", stats.nodes_dead));
    }
    // Every sampled agent must still be registered and locatable through
    // both the lock path and a fresh route cache.
    let mut handle = platform.handle();
    let step = (opts.agents / 1000).max(1);
    for i in (0..opts.agents).step_by(step as usize) {
        let id = AgentId::new(i);
        let via_registry = platform.agent_node(id);
        let via_cache = handle.locate(id);
        if via_registry.is_none() {
            return Err(format!("check: {id} lost from the registry"));
        }
        if via_cache != via_registry {
            return Err(format!(
                "check: {id} cache/registry disagree at quiesce: {via_cache:?} vs {via_registry:?}"
            ));
        }
    }
    if opts.move_pct > 0.0 && stats.migrations == 0 {
        return Err("check: a move mix was requested but nothing migrated".into());
    }
    eprintln!("live_bench: checks passed");
    Ok(())
}

fn fmt_arm(label: &str, arm: &ArmResult) -> String {
    format!(
        "  \"{label}\": {{\n    \"locates_per_sec\": {:.0},\n    \"moves_per_sec\": {:.0},\n    \
         \"posts_per_sec\": {:.0},\n    \"route_cache_hit_rate\": {:.4},\n    \
         \"window_secs\": {:.3},\n    \"messages_sent\": {},\n    \"messages_delivered\": {},\n    \
         \"messages_failed\": {},\n    \"migrations\": {}\n  }}",
        arm.locates_per_sec,
        arm.moves_per_sec,
        arm.posts_per_sec,
        arm.cache_hit_rate,
        arm.window_secs,
        arm.stats.messages_sent,
        arm.stats.messages_delivered,
        arm.stats.messages_failed,
        arm.stats.migrations,
    )
}

fn main() -> ExitCode {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    macro_rules! take {
        ($args:ident, $flag:expr) => {
            match $args.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("{} requires a value", $flag);
                    return ExitCode::FAILURE;
                }
            }
        };
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = take!(args, "--nodes"),
            "--agents" => opts.agents = take!(args, "--agents"),
            "--seconds" => opts.seconds = take!(args, "--seconds"),
            "--drivers" => opts.drivers = take!(args, "--drivers"),
            "--shards" => opts.shards = take!(args, "--shards"),
            "--batch" => opts.batch = take!(args, "--batch"),
            "--drain-budget" => opts.drain_budget = take!(args, "--drain-budget"),
            "--route-cache-bits" => opts.route_cache_bits = take!(args, "--route-cache-bits"),
            "--move-pct" => opts.move_pct = take!(args, "--move-pct"),
            "--zipf" => opts.zipf = take!(args, "--zipf"),
            "--seed" => opts.seed = take!(args, "--seed"),
            "--inflight" => opts.inflight = take!(args, "--inflight"),
            "--settle-secs" => opts.settle_secs = take!(args, "--settle-secs"),
            "--out" => match args.next() {
                Some(p) => opts.out = p,
                None => {
                    eprintln!("--out requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => opts.compare = true,
            "--check" => opts.check = true,
            "--telemetry" => opts.telemetry = true,
            "--flight-recorder" => opts.flight_recorder = take!(args, "--flight-recorder"),
            "--overhead" => opts.overhead = true,
            "--overhead-reps" => opts.overhead_reps = take!(args, "--overhead-reps"),
            "--overhead-max-pct" => opts.overhead_max_pct = take!(args, "--overhead-max-pct"),
            "--flight-out" => match args.next() {
                Some(p) => opts.flight_out = Some(p),
                None => {
                    eprintln!("--flight-out requires a path prefix");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => match args.next() {
                Some(p) => opts.csv_out = p,
                None => {
                    eprintln!("--csv requires a file");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: live_bench [--agents N] [--nodes N] [--seconds S] [--drivers K]\n\
                     \u{20}                 [--shards N] [--batch N] [--drain-budget N]\n\
                     \u{20}                 [--route-cache-bits B] [--move-pct P] [--zipf S]\n\
                     \u{20}                 [--seed N] [--inflight N] [--settle-secs S]\n\
                     \u{20}                 [--compare] [--check] [--out FILE]\n\
                     \u{20}                 [--telemetry] [--flight-recorder K]\n\
                     \u{20}                 [--overhead] [--overhead-reps N]\n\
                     \u{20}                 [--overhead-max-pct F] [--csv FILE]\n\
                     \u{20}                 [--flight-out PREFIX]\n\
                     --shards 1 --batch 1 --drain-budget 1 --route-cache-bits 0\n\
                     reproduces the pre-sharding runtime;\n\
                     --compare runs the tuned arm plus that baseline and reports speedups;\n\
                     --check asserts invariants (CI smoke mode);\n\
                     --telemetry instruments the run and adds p50/p95/p99 latency rows;\n\
                     --flight-recorder K keeps the K slowest ops (exported via --flight-out);\n\
                     --overhead runs off/on/on+flight arms, writes --csv, and (with\n\
                     --overhead-max-pct) fails if instrumented locate throughput drops more."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.nodes == 0 || opts.agents == 0 || opts.drivers == 0 {
        eprintln!("need at least one node, one agent and one driver");
        return ExitCode::FAILURE;
    }

    if opts.overhead && opts.telemetry {
        // The overhead table needs a clean uninstrumented arm; the main
        // arm is that arm.
        eprintln!("live_bench: --overhead implies the main arm runs telemetry-off");
        opts.telemetry = false;
    }
    let tuned = LiveConfig::default()
        .with_shards(opts.shards)
        .with_batch_max(opts.batch)
        .with_drain_budget(opts.drain_budget)
        .with_route_cache_bits(opts.route_cache_bits)
        .with_telemetry(opts.telemetry)
        .with_flight_recorder(if opts.telemetry {
            opts.flight_recorder
        } else {
            0
        });
    let mut main_arm = match run_arm(&opts, tuned, "tuned") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("live_bench: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    // ---- E19: telemetry overhead — off (the arm above), on, on+flight.
    if opts.overhead {
        let flight_k = opts.flight_recorder.max(64);
        let flight_name = format!("telemetry-on+flight-{flight_k}");
        let arms: [(&str, LiveConfig); 3] = [
            ("telemetry-off", tuned),
            ("telemetry-on", tuned.with_telemetry(true)),
            (
                flight_name.as_str(),
                tuned.with_telemetry(true).with_flight_recorder(flight_k),
            ),
        ];
        // Arms run interleaved with the starting arm rotated each rep
        // (rep 0: off,on,flight; rep 1: on,flight,off; …) and each slot
        // keeps its best rep. Throughput drifts several percent over a
        // long-lived process — warm-up early, allocator fragmentation
        // late — so a fixed order would systematically flatter whichever
        // config always ran in the luckiest position; rotation gives
        // every arm a turn in every position and best-of takes each
        // arm's luckiest draw.
        let mut best: [Option<ArmResult>; 3] = [Some(main_arm), None, None];
        let reps = opts.overhead_reps.max(1);
        for rep in 0..reps {
            for k in 0..arms.len() {
                let slot = (rep + k) % arms.len();
                let (name, config) = &arms[slot];
                if rep == 0 && slot == 0 {
                    continue; // the main arm above was rep 0 of "off"
                }
                let arm = match run_arm(&opts, *config, &format!("{name}#{rep}")) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("live_bench: FAILED ({name} arm): {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| arm.locates_per_sec > b.locates_per_sec)
                {
                    best[slot] = Some(arm);
                }
            }
        }
        let [off, on, flight] = best.map(|b| b.expect("every slot ran"));
        let overhead_pct =
            |arm: &ArmResult| (1.0 - arm.locates_per_sec / off.locates_per_sec.max(1.0)) * 100.0;
        let mut csv =
            String::from("arm,locates_per_sec,moves_per_sec,posts_per_sec,locate_overhead_pct\n");
        for (name, arm) in [
            ("telemetry-off", &off),
            ("telemetry-on", &on),
            (flight_name.as_str(), &flight),
        ] {
            csv.push_str(&format!(
                "{name},{:.0},{:.0},{:.0},{:.2}\n",
                arm.locates_per_sec,
                arm.moves_per_sec,
                arm.posts_per_sec,
                overhead_pct(arm),
            ));
        }
        if let Some(dir) = std::path::Path::new(&opts.csv_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&opts.csv_out, &csv) {
            eprintln!("live_bench: cannot write {}: {e}", opts.csv_out);
            return ExitCode::FAILURE;
        }
        eprint!("live_bench: wrote {}\n{csv}", opts.csv_out);
        if opts.overhead_max_pct > 0.0 {
            for (name, arm) in [("telemetry-on", &on), ("telemetry+flight", &flight)] {
                let pct = overhead_pct(arm);
                if pct > opts.overhead_max_pct {
                    eprintln!(
                        "live_bench: FAILED: {name} locate overhead {pct:.2}% \
                         exceeds --overhead-max-pct {:.2}%",
                        opts.overhead_max_pct
                    );
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "live_bench: overhead within {:.1}% bound",
                opts.overhead_max_pct
            );
        }
        // The best uninstrumented rep is the honest headline.
        main_arm = off;
    }

    // ---- Flight recorder export.
    if let Some(prefix) = &opts.flight_out {
        match &main_arm.snapshot {
            Some(snap) if !snap.slow_ops.is_empty() => {
                let rows = flight_rows(snap);
                let json_path = format!("{prefix}.json");
                let perfetto_path = format!("{prefix}.perfetto.json");
                if let Err(e) = std::fs::write(&json_path, to_flight_json(&rows))
                    .and_then(|()| std::fs::write(&perfetto_path, to_flight_perfetto(&rows)))
                {
                    eprintln!("live_bench: cannot write flight capture: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("live_bench: wrote {json_path} and {perfetto_path}");
            }
            _ => eprintln!(
                "live_bench: --flight-out given but no slow ops captured \
                 (need --telemetry --flight-recorder K)"
            ),
        }
    }

    let flat_arm = if opts.compare {
        // The pre-split runtime: one registry lock, one channel op per
        // message, one blocking receive per wake-up, and no route cache.
        let flat = tuned
            .with_shards(1)
            .with_batch_max(1)
            .with_drain_budget(1)
            .with_route_cache_bits(0);
        match run_arm(&opts, flat, "pre-shard-batch") {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("live_bench: FAILED (baseline arm): {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // ---- Emit the JSON report (bench_gate-compatible `results` array).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"bench\": \"live runtime throughput (sharded registry, batched channels, route cache)\",\n",
    );
    let flag_suffix = format!(
        "{}{}{}",
        if opts.compare { " --compare" } else { "" },
        if opts.telemetry { " --telemetry" } else { "" },
        if opts.flight_recorder > 0 {
            format!(" --flight-recorder {}", opts.flight_recorder)
        } else {
            String::new()
        },
    );
    out.push_str(&format!(
        "  \"command\": \"cargo run -p agentrack-bench --release --bin live_bench -- \
         --agents {} --nodes {} --seconds {} --drivers {} --shards {} --batch {} \
         --drain-budget {} --route-cache-bits {} --move-pct {} --zipf {} --seed {}{}\",\n",
        opts.agents,
        opts.nodes,
        opts.seconds,
        opts.drivers,
        opts.shards,
        opts.batch,
        opts.drain_budget,
        opts.route_cache_bits,
        opts.move_pct,
        opts.zipf,
        opts.seed,
        flag_suffix,
    ));
    out.push_str(
        "  \"baseline_arm\": \"--shards 1 --batch 1 --drain-budget 1 --route-cache-bits 0 \
         (pre-shard/pre-batch runtime)\",\n",
    );
    out.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"agents\": {}, \"drivers\": {}, \"shards\": {}, \
         \"batch\": {}, \"drain_budget\": {}, \"route_cache_bits\": {}, \"move_pct\": {}, \
         \"zipf\": {}, \"seed\": {}}},\n",
        opts.nodes,
        opts.agents,
        opts.drivers,
        tuned.effective_shards(),
        tuned.batch_max,
        tuned.drain_budget,
        tuned.route_cache_bits,
        opts.move_pct,
        opts.zipf,
        opts.seed,
    ));
    out.push_str(&fmt_arm("headline", &main_arm));
    out.push_str(",\n");
    if let Some(snap) = &main_arm.snapshot {
        out.push_str(&format!(
            "  \"telemetry\": {{\n    \"locate_ns\": {},\n    \"deliver_ns\": {},\n    \
             \"move_ns\": {},\n    \"timer_lag_ns\": {},\n    \
             \"route_cache_hit_rate\": {:.4},\n    \"stalled_nodes\": {},\n    \
             \"trace_dropped\": {},\n    \"slow_ops_captured\": {},\n    \
             \"registry_generation\": {}\n  }},\n",
            fmt_pctls(&snap.locate_ns),
            fmt_pctls(&snap.deliver_ns),
            fmt_pctls(&snap.move_ns),
            fmt_pctls(&snap.timer_lag_ns),
            {
                let total = snap.route_cache_hits + snap.route_cache_misses;
                if total > 0 {
                    snap.route_cache_hits as f64 / total as f64
                } else {
                    0.0
                }
            },
            snap.stalled_nodes,
            snap.trace_dropped,
            snap.slow_ops.len(),
            snap.registry_generation,
        ));
    }
    if let Some(flat) = &flat_arm {
        out.push_str(&fmt_arm("baseline_pre_shard_batch", flat));
        out.push_str(",\n");
        out.push_str(&format!(
            "  \"speedup\": {{\"locate\": {:.2}, \"move\": {:.2}, \"post\": {:.2}}},\n",
            main_arm.locates_per_sec / flat.locates_per_sec.max(1.0),
            main_arm.moves_per_sec / flat.moves_per_sec.max(1.0),
            main_arm.posts_per_sec / flat.posts_per_sec.max(1.0),
        ));
    }
    out.push_str("  \"results\": [\n");
    let mut rows = vec![
        (
            "live/locate".to_string(),
            ArmResult::ns(main_arm.locates_per_sec),
        ),
        (
            "live/move".to_string(),
            ArmResult::ns(main_arm.moves_per_sec),
        ),
        (
            "live/post".to_string(),
            ArmResult::ns(main_arm.posts_per_sec),
        ),
    ];
    if let Some(snap) = &main_arm.snapshot {
        // Per-op latency percentiles straight off the telemetry
        // histograms: the rows bench_gate uses to catch tail-latency
        // regressions, not just throughput ones.
        for (op, h) in [
            ("locate", &snap.locate_ns),
            ("move", &snap.move_ns),
            ("deliver", &snap.deliver_ns),
        ] {
            if h.is_empty() {
                continue;
            }
            for p in [50.0, 95.0, 99.0] {
                rows.push((format!("live/{op}/p{p:.0}"), pctl(h, p)));
            }
        }
    }
    if let Some(flat) = &flat_arm {
        rows.push((
            "live/locate/pre-shard-batch".into(),
            ArmResult::ns(flat.locates_per_sec),
        ));
        rows.push((
            "live/move/pre-shard-batch".into(),
            ArmResult::ns(flat.moves_per_sec),
        ));
        rows.push((
            "live/post/pre-shard-batch".into(),
            ArmResult::ns(flat.posts_per_sec),
        ));
    }
    let last = rows.len() - 1;
    for (i, (id, ns)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{id}\", \"ns_per_iter\": {ns:.2}}}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&opts.out, &out) {
        eprintln!("live_bench: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("{out}");
    eprintln!("live_bench: wrote {}", opts.out);
    ExitCode::SUCCESS
}
