//! Tail-latency analysis helper (not part of the recorded experiments).
//!
//! Runs the heaviest Experiment-I point, finds the slowest locate, and
//! replays the (deterministic) run tracing every protocol message that
//! concerns the slow target.

use std::sync::{Arc, Mutex};

use agentrack_core::{HashedScheme, LocationConfig, Wire};
use agentrack_platform::AgentId;
use agentrack_workload::{RunOptions, Scenario};

fn scenario() -> Scenario {
    let mut s = Scenario::new("diag")
        .with_agents(1000)
        .with_residence_ms(500)
        .with_queries(2000)
        .with_seconds(35.0, 15.0);
    s.grace = agentrack_sim::SimDuration::from_secs(45);
    s
}

fn config() -> LocationConfig {
    LocationConfig {
        max_locate_attempts: 30,
        locate_retry_timeout: agentrack_sim::SimDuration::from_secs(2),
        ..LocationConfig::default()
    }
}

fn main() {
    let sc = scenario();
    let mut scheme = HashedScheme::new(config());
    let out = sc.run_with(&mut scheme, RunOptions::new());
    let (report, samples) = (out.report, out.samples);
    println!(
        "mean={:.2}ms p50={:.2} p95={:.2} max={:.2} done={} fail={}",
        report.mean_locate_ms,
        report.p50_locate_ms,
        report.p95_locate_ms,
        report.max_locate_ms,
        report.locates_completed,
        report.locate_failures
    );
    // The per-tracker view (who was saturated, whose mailbox filled) and
    // the registry's JSON export, for offline analysis.
    let snapshot = agentrack_core::LocationScheme::registry(&scheme).snapshot();
    print!("{}", snapshot.to_csv());
    if std::env::args().any(|a| a == "--registry-json") {
        print!("{}", snapshot.to_json());
    }
    let slow: Vec<_> = samples
        .iter()
        .filter(|(_, _, e)| e.as_millis_f64() > 500.0)
        .collect();
    println!("slow(>500ms) queries: {}", slow.len());
    let Some(&&(when, target, elapsed)) = slow.iter().max_by_key(|(_, _, e)| *e) else {
        return;
    };
    println!(
        "tracing worst: target={target} issued={:.2}s elapsed={:.1}ms",
        when.as_secs_f64(),
        elapsed.as_millis_f64()
    );

    // Deterministic replay with a tracer on the same seed.
    let log: Arc<Mutex<Vec<String>>> = Arc::default();
    let log2 = log.clone();
    let window_lo = 0.0;
    let window_hi = when.as_secs_f64() + elapsed.as_millis_f64() / 1000.0 + 0.5;
    let tracer = Box::new(move |ev: agentrack_platform::MsgTrace<'_>| {
        let t = ev.now.as_secs_f64();
        if t < window_lo || t > window_hi {
            return;
        }
        let Some(wire) = Wire::from_payload(ev.payload) else {
            return;
        };
        // Hash-function distribution events: log version and where the
        // target's key maps under that copy.
        match &wire {
            Wire::InstallHashFn { hf } | Wire::HashFnCopy { hf } => {
                // Only the copies that reach trackers matter for the
                // desync; skip the LHAgent fan-out noise.
                if ev.to.raw() != 0 && !matches!(wire, Wire::InstallHashFn { .. }) {
                    return;
                }
                let (owner, _) = hf.resolve(target);
                let kind = if matches!(wire, Wire::InstallHashFn { .. }) {
                    "Install"
                } else {
                    "HfCopy"
                };
                log2.lock().unwrap().push(format!(
                    "t={t:>9.4}s {} -> {} @{} {} {kind}(v{}, key->{owner})",
                    ev.from,
                    ev.to,
                    ev.node,
                    if ev.delivered { "ok " } else { "BOUNCE" },
                    hf.version,
                ));
                return;
            }
            Wire::SplitRequest { .. } | Wire::MergeRequest { .. } | Wire::IAgentReady { .. } => {
                log2.lock().unwrap().push(format!(
                    "t={t:>9.4}s {} -> {} @{} {} {:?}",
                    ev.from,
                    ev.to,
                    ev.node,
                    if ev.delivered { "ok " } else { "BOUNCE" },
                    wire,
                ));
                return;
            }
            _ => {}
        }
        let about: Option<AgentId> = match &wire {
            Wire::Register { agent, .. } | Wire::Update { agent, .. } => Some(*agent),
            Wire::Locate { target, .. }
            | Wire::Located { target, .. }
            | Wire::NotFound { target, .. }
            | Wire::Resolve { target, .. }
            | Wire::ResolveFresh { target, .. }
            | Wire::Resolved { target, .. } => Some(*target),
            Wire::NotResponsible { about, .. } => Some(*about),
            Wire::Handoff { records } => records.iter().map(|(a, _)| *a).find(|a| *a == target),
            _ => None,
        };
        if about == Some(target) {
            let kind = match &wire {
                Wire::Handoff { .. } => "Handoff(containing target)".to_owned(),
                other => format!("{other:?}").chars().take(70).collect(),
            };
            log2.lock().unwrap().push(format!(
                "t={t:>9.4}s {} -> {} @{} {} {}",
                ev.from,
                ev.to,
                ev.node,
                if ev.delivered { "ok " } else { "BOUNCE" },
                kind
            ));
        }
    });
    let sc = scenario();
    let _ = sc.run_with(
        &mut HashedScheme::new(config()),
        RunOptions::new().with_tracer(tracer),
    );
    let log = log.lock().unwrap();
    println!("trace lines: {}", log.len());
    for line in log.iter() {
        println!("{line}");
    }
}
