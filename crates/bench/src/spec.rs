//! Declarative scenario specs: the data-driven face of the experiment
//! harness.
//!
//! A [`ScenarioSpec`] describes everything a hand-coded experiment
//! function in `lib.rs` encodes in Rust — workload shape (population,
//! mobility and query mix, Zipf skew, churn), sweep axes, the scheme
//! grid, fault plans (chaos or a regional partition), flash-crowd
//! spikes, seeds, and the requested output columns — as a JSON document
//! under `specs/`. The generic trial runner ([`crate::run_spec`])
//! expands a spec into independent trial cells, runs them in parallel,
//! audits the post-quiesce invariants of every trial, and emits the same
//! table an equivalent hand-coded experiment would print plus structured
//! per-trial records.
//!
//! # Strictness
//!
//! The vendored serde stand-in is deliberately lax about unknown map
//! keys, so [`ScenarioSpec::parse`] walks the raw [`serde::Value`] tree
//! first and rejects any key the schema does not know, pointing at the
//! offending field by dotted path (and by line/column where the source
//! text locates it). [`ScenarioSpec::validate`] then checks semantics —
//! unknown scheme kinds, dangling column references, contradictory fault
//! plans — with the same field-naming discipline. Neither step panics on
//! arbitrary input; [`ScenarioSpec::load_str`] chains both.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Scheme kinds the runner can instantiate.
pub const SCHEME_KINDS: &[&str] = &["hashed", "centralized", "home-registry", "forwarding"];

/// Sweep-axis parameters the runner can apply.
pub const AXIS_PARAMS: &[&str] = &[
    "agents",
    "residence_ms",
    "intensity",
    "rehash_concurrency",
    "query_skew",
    "freshness_ms",
];

/// Column fields the runner can format, with their formatting rules
/// (documented in `EXPERIMENTS.md` §E18).
pub const COLUMN_FIELDS: &[&str] = &[
    // Point / trial metadata.
    "agents",
    "residence_ms",
    "intensity",
    "rehash_concurrency",
    "query_skew",
    "freshness_ms",
    "scheme",
    "seed",
    // Locate outcome counters and latency metrics.
    "issued",
    "completed",
    "failures",
    "success_pct",
    "mean_ms",
    "mean_ms_or_dnf",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    // Directory shape and adaptation.
    "trackers",
    "peak_trackers",
    "splits",
    "merges",
    "denied",
    "tree_height",
    "mean_prefix_bits",
    "reconverge_ms",
    // Traffic, mail, and durability.
    "messages_sent",
    "messages_remote",
    "messages_failed",
    "mail_buffered",
    "mail_flushed",
    "mail_lost",
    "record_syncs",
    "recoveries_started",
    "recoveries_completed",
    "stale_answers",
    // Geo / freshness (E20).
    "stale_answer_pct",
    "replica_answers",
    "freshness_refusals",
    "hedged_locates",
    "bound_violations",
    "stale_hits",
    "hf_fetches",
    "chain_hops",
    "iagent_moves",
    // Population dynamics.
    "registrations",
    "moves",
    "births",
    "deaths",
    // Invariant audit.
    "violations",
];

/// A validation or parse error, naming the offending field by dotted
/// path and, when the source text locates it, by line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted path of the offending field (`workload.agents`,
    /// `schemes[1].kind`), or `<spec>` for document-level errors.
    pub path: String,
    /// 1-based line of the field in the source text, when located.
    pub line: Option<usize>,
    /// 1-based column of the field in the source text, when located.
    pub col: Option<usize>,
    /// What is wrong.
    pub message: String,
}

impl SpecError {
    fn at(path: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError {
            path: path.into(),
            line: None,
            col: None,
            message: message.into(),
        }
    }

    /// Attaches the line/column of the first occurrence of `key` as a
    /// quoted JSON key in `source`. Best effort: a key repeated across
    /// sibling objects may resolve to an earlier occurrence.
    fn locate(mut self, source: &str, key: &str) -> Self {
        let needle = format!("\"{key}\"");
        if let Some(pos) = source.find(&needle) {
            let prefix = &source[..pos];
            self.line = Some(prefix.matches('\n').count() + 1);
            self.col = Some(pos - prefix.rfind('\n').map_or(0, |p| p + 1) + 1);
        }
        self
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col) {
            (Some(line), Some(col)) => {
                write!(
                    f,
                    "{} (line {line}, col {col}): {}",
                    self.path, self.message
                )
            }
            _ => write!(f, "{}: {}", self.path, self.message),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete declarative experiment: what to run, over what grid, and
/// what to report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Spec identity: names the output files (`results/<name>.csv`,
    /// `results/<name>.trials.json`).
    pub name: String,
    /// Table title, printed above the rendered table.
    pub title: String,
    /// The workload shape every trial shares (sweep axes override
    /// individual knobs per grid point).
    pub workload: WorkloadSpec,
    /// Sweep axes; the grid is their cartesian product in declaration
    /// order (later axes vary fastest). Absent = a single point.
    pub sweep: Option<Vec<AxisSpec>>,
    /// The schemes to run at every grid point.
    pub schemes: Vec<SchemeSpec>,
    /// Row layout: `true` emits one row per (point, scheme, seed) with
    /// schemes varying inside each point (the E13 shape); `false`/absent
    /// emits one row per (point, seed) with scheme-scoped columns side
    /// by side (the E1 shape).
    pub scheme_rows: Option<bool>,
    /// Master seeds; each adds a full replication of the grid. Absent =
    /// `[42]`, the `Scenario` default.
    pub seeds: Option<Vec<u64>>,
    /// Scheduled fault injection, applied to every trial.
    pub faults: Option<FaultSpec>,
    /// Flash-crowd query spikes riding on the steady workload.
    pub spikes: Option<Vec<SpikeSpec>>,
    /// Post-quiesce invariant audit: on by default for every spec run;
    /// `false` opts out (the audit never changes report metrics — it
    /// runs after the report is snapshotted — only trial records and
    /// `violations` columns).
    pub audit: Option<bool>,
    /// Structured-trace ring capacity. Absent = tracing only when a
    /// column needs it (`reconverge_ms`), with a 1 Mi-record ring.
    pub trace_buffer: Option<usize>,
    /// The output columns, left to right.
    pub columns: Vec<ColumnSpec>,
}

/// The workload knobs of [`agentrack_workload::Scenario`], at full
/// fidelity; the runner applies [`crate::Fidelity`] scaling exactly as
/// the hand-coded experiments do (population via `scale_agents`, query
/// budget and spans from the fidelity when unset here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// TAgent population at full fidelity (quick runs scale it down).
    pub agents: usize,
    /// Constant residence time per node, milliseconds.
    pub residence_ms: Option<u64>,
    /// Total steady-state locate budget; absent = the fidelity's budget
    /// (2000 full / 200 quick), like every hand-coded experiment.
    pub queries: Option<u64>,
    /// LAN node count; absent = the paper's 16.
    pub nodes: Option<u32>,
    /// Steady-state querier agents; absent = the default 32.
    pub queriers: Option<usize>,
    /// Warmup seconds; absent = the fidelity's span. Set both or
    /// neither of `warmup_s`/`measure_s`.
    pub warmup_s: Option<f64>,
    /// Measurement seconds; absent = the fidelity's span.
    pub measure_s: Option<f64>,
    /// Grace seconds past warmup+measure; absent = the default 10.
    pub grace_s: Option<f64>,
    /// Zipf exponent for query targets (hot keys); absent = uniform.
    pub query_skew: Option<f64>,
    /// Zipf exponent for mobility destinations; absent = uniform.
    pub mobility_skew: Option<f64>,
    /// Population churn: constant TAgent lifespan in milliseconds;
    /// each death spawns a successor (steady size, turning membership).
    pub churn_lifespan_ms: Option<u64>,
    /// Message loss probability.
    pub loss: Option<f64>,
    /// Message duplication probability.
    pub duplication: Option<f64>,
    /// WAN regions: nodes are dealt round-robin into this many regions
    /// and inter-region hops pay `inter_region_ms`. Absent or 1 = the
    /// paper's flat LAN.
    pub regions: Option<u32>,
    /// Inter-region one-way latency, milliseconds (needs `regions`).
    /// Absent = 60 ms, a transcontinental round trip of ~120 ms.
    pub inter_region_ms: Option<f64>,
    /// Freshness bound every steady-state locate declares: `0` demands
    /// the authoritative record (`Fresh`), a positive value accepts
    /// replica answers up to that many milliseconds old (`BoundedMs`),
    /// absent accepts anything (`Any`). A `freshness_ms` sweep axis
    /// overrides this per grid point.
    pub freshness_ms: Option<u64>,
}

/// One sweep axis: a parameter name from [`AXIS_PARAMS`] and the values
/// it takes. Values are numbers; integer parameters (`agents`,
/// `residence_ms`, `rehash_concurrency`) must hold whole numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisSpec {
    /// Which knob this axis drives.
    pub param: String,
    /// The values the sweep visits, in order.
    pub values: Vec<f64>,
}

/// One scheme arm of the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeSpec {
    /// Scheme kind, one of [`SCHEME_KINDS`].
    pub kind: String,
    /// Label columns reference this arm by; absent = the kind. Must be
    /// unique across arms (two `hashed` ablations need distinct labels).
    pub label: Option<String>,
    /// Experiment-grade client patience (30 locate attempts, 2 s retry
    /// timeout) — what the hand-coded experiments call `patient`.
    pub patient: Option<bool>,
    /// Run the hashed scheme with a standby HAgent replica.
    pub standby: Option<bool>,
    /// Demand every live hash-function copy match the primary's version
    /// in the invariant audit (only sound with `version_audit_s`).
    pub strict_versions: Option<bool>,
    /// Periodic hash-function version audit interval, seconds.
    pub version_audit_s: Option<f64>,
    /// Record replication interval to buddy replicas, milliseconds.
    pub replication_ms: Option<u64>,
    /// Rehash pipeline width (1 = the single-flight ablation).
    pub rehash_concurrency: Option<usize>,
    /// Propagate new hash functions eagerly instead of lazily.
    pub eager_propagation: Option<bool>,
    /// Restrict rehashes to single splits (no cascades).
    pub simple_splits_only: Option<bool>,
    /// Split without load-aware placement.
    pub blind_splits: Option<bool>,
    /// Migrate IAgents toward their query sources (extension E9).
    pub locality_migration: Option<bool>,
    /// Split threshold (load above which a tracker splits).
    pub threshold_max: Option<f64>,
    /// Merge threshold (load below which trackers merge); requires
    /// `threshold_max`.
    pub threshold_min: Option<f64>,
}

/// Scheduled fault injection. Set at most one of the arms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Randomized chaos via [`agentrack_sim::ChaosConfig`].
    pub chaos: Option<ChaosFaults>,
    /// A deterministic regional partition that heals.
    pub regional_partition: Option<RegionalPartitionFaults>,
    /// Deterministic WAN link sever/heal cycles between two regions
    /// (needs `workload.regions`).
    pub region_sever: Option<RegionSeverFaults>,
}

/// Randomized chaos: partitions, crashes/restarts, latency spikes, loss
/// bursts, blackholes, scaled by `intensity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosFaults {
    /// Chaos generator seed (independent of the scenario seed).
    pub seed: u64,
    /// Fault intensity in `[0, 1]`; absent = driven by an `intensity`
    /// sweep axis. Intensity `0` means a fault-free plan.
    pub intensity: Option<f64>,
}

/// The network severs into node groups at `at_frac` of the run and heals
/// at `heal_frac`; nodes not listed straddle the partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionalPartitionFaults {
    /// The isolated node-id groups (pairwise disjoint). Absent = the
    /// node range split into two contiguous halves.
    pub groups: Option<Vec<Vec<u32>>>,
    /// When the partition starts, as a fraction of the run duration.
    pub at_frac: f64,
    /// When it heals, as a fraction of the run duration (> `at_frac`).
    pub heal_frac: f64,
}

/// The WAN link between regions `a` and `b` severs at `at_frac` of the
/// run and heals at `heal_frac`; with `cycles > 1` the sever/heal window
/// repeats back to back (each cycle is `2 * (heal_frac - at_frac)` of
/// the run: equal outage and recovery spans). Requires a region
/// topology (`workload.regions`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSeverFaults {
    /// One severed region (index into `0..workload.regions`).
    pub a: u32,
    /// The other severed region.
    pub b: u32,
    /// When the first sever lands, as a fraction of the run duration.
    pub at_frac: f64,
    /// When the first sever heals, as a fraction of the run duration
    /// (> `at_frac`).
    pub heal_frac: f64,
    /// Back-to-back sever/heal cycles; absent = 1. Every cycle's heal
    /// must land within the run.
    pub cycles: Option<u32>,
}

/// A flash crowd riding the steady workload: timing as fractions of the
/// measurement span (so quick and full fidelity place it identically),
/// budget as either an absolute count or a multiple of the steady
/// budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeSpec {
    /// Spike start: `warmup + at_frac * measure`.
    pub at_frac: f64,
    /// Spike length: `span_frac * measure`.
    pub span_frac: f64,
    /// Spike budget as a multiple of the steady query budget. Set
    /// exactly one of `queries_factor`/`queries`.
    pub queries_factor: Option<u64>,
    /// Spike budget as an absolute locate count.
    pub queries: Option<u64>,
    /// Dedicated spike queriers (round-robin over nodes).
    pub queriers: usize,
}

/// One output column: a field from [`COLUMN_FIELDS`], the scheme arm it
/// reads from (wide layout), and the CSV header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// What to report.
    pub field: String,
    /// Which scheme arm's trial to read, by label. Wide layout only;
    /// absent with several arms is ambiguous for per-trial fields.
    pub scheme: Option<String>,
    /// CSV header; absent derives `field` or `scheme_field`.
    pub header: Option<String>,
}

impl ColumnSpec {
    /// The CSV header this column prints.
    #[must_use]
    pub fn header(&self) -> String {
        if let Some(h) = &self.header {
            return h.clone();
        }
        match &self.scheme {
            Some(scheme) => format!("{scheme}_{}", self.field),
            None => self.field.clone(),
        }
    }
}

/// Fields describing the grid point / trial rather than the report.
const POINT_FIELDS: &[&str] = &[
    "agents",
    "residence_ms",
    "intensity",
    "rehash_concurrency",
    "query_skew",
    "freshness_ms",
    "scheme",
    "seed",
];

impl ScenarioSpec {
    /// Parses a spec from JSON text: syntax, strict unknown-key
    /// checking over the raw value tree, then typed deserialization.
    /// Semantic checks live in [`ScenarioSpec::validate`];
    /// [`ScenarioSpec::load_str`] chains both.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field.
    pub fn parse(source: &str) -> Result<Self, SpecError> {
        let value: Value = serde_json::from_str(source)
            .map_err(|e| SpecError::at("<spec>", format!("invalid JSON: {e}")))?;
        check_keys(&value, source)?;
        ScenarioSpec::deserialize(&value).map_err(|e| SpecError::at("<spec>", format!("{e}")))
    }

    /// Parses and validates: the one call sites should use.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field.
    pub fn load_str(source: &str) -> Result<Self, SpecError> {
        let spec = Self::parse(source)?;
        spec.validate().map_err(|e| {
            if e.line.is_none() {
                relocate(e, source)
            } else {
                e
            }
        })?;
        Ok(spec)
    }

    /// Serializes back to JSON (every optional field explicit, absent
    /// ones as `null`); [`ScenarioSpec::parse`] of the output yields an
    /// equal spec.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serialization cannot fail")
    }

    /// The effective scheme labels, in declaration order.
    #[must_use]
    pub fn scheme_labels(&self) -> Vec<String> {
        self.schemes
            .iter()
            .map(|s| s.label.clone().unwrap_or_else(|| s.kind.clone()))
            .collect()
    }

    /// The effective seed list (`[42]` when unset).
    #[must_use]
    pub fn seed_list(&self) -> Vec<u64> {
        self.seeds.clone().unwrap_or_else(|| vec![42])
    }

    /// Whether rows repeat per scheme (E13 shape) or schemes sit side
    /// by side in one row (E1 shape).
    #[must_use]
    pub fn scheme_rows(&self) -> bool {
        self.scheme_rows.unwrap_or(false)
    }

    /// Whether the post-quiesce invariant audit runs (default yes).
    #[must_use]
    pub fn audit(&self) -> bool {
        self.audit.unwrap_or(true)
    }

    /// Semantic validation. Total: never panics, whatever the spec
    /// holds.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field by dotted
    /// path.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(SpecError::at(
                "name",
                "spec names are non-empty [a-zA-Z0-9_-]+ (they name output files)",
            ));
        }
        self.validate_workload()?;
        self.validate_sweep()?;
        self.validate_schemes()?;
        self.validate_faults()?;
        self.validate_spikes()?;
        if let Some(seeds) = &self.seeds {
            if seeds.is_empty() {
                return Err(SpecError::at("seeds", "needs at least one seed"));
            }
        }
        if self.trace_buffer == Some(0) {
            return Err(SpecError::at("trace_buffer", "must be positive"));
        }
        self.validate_columns()
    }

    fn validate_workload(&self) -> Result<(), SpecError> {
        let w = &self.workload;
        if w.agents == 0 {
            return Err(SpecError::at("workload.agents", "needs a population"));
        }
        if w.residence_ms == Some(0) {
            return Err(SpecError::at("workload.residence_ms", "must be positive"));
        }
        if w.nodes == Some(0) {
            return Err(SpecError::at("workload.nodes", "needs at least one node"));
        }
        if w.queriers == Some(0) && w.queries.is_none_or(|q| q > 0) {
            return Err(SpecError::at(
                "workload.queriers",
                "queries need queriers; set workload.queries to 0 for a query-free run",
            ));
        }
        if w.warmup_s.is_some() != w.measure_s.is_some() {
            return Err(SpecError::at(
                "workload.warmup_s",
                "set both warmup_s and measure_s, or neither (the fidelity supplies the pair)",
            ));
        }
        for (path, v) in [
            ("workload.warmup_s", w.warmup_s),
            ("workload.measure_s", w.measure_s),
            ("workload.grace_s", w.grace_s),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v < 0.0 {
                    return Err(SpecError::at(path, "must be a finite non-negative number"));
                }
            }
        }
        if w.measure_s == Some(0.0) && w.queries.is_none_or(|q| q > 0) {
            return Err(SpecError::at(
                "workload.measure_s",
                "queries are paced over the measurement span; it cannot be zero",
            ));
        }
        for (path, v) in [
            ("workload.query_skew", w.query_skew),
            ("workload.mobility_skew", w.mobility_skew),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v < 0.0 {
                    return Err(SpecError::at(path, "Zipf exponents are finite and >= 0"));
                }
            }
        }
        if w.churn_lifespan_ms == Some(0) {
            return Err(SpecError::at(
                "workload.churn_lifespan_ms",
                "must be positive",
            ));
        }
        for (path, v) in [
            ("workload.loss", w.loss),
            ("workload.duplication", w.duplication),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(SpecError::at(path, "probabilities live in [0, 1]"));
                }
            }
        }
        if let Some(regions) = w.regions {
            let nodes = w.nodes.unwrap_or(16);
            if regions < 2 {
                return Err(SpecError::at(
                    "workload.regions",
                    "a WAN model needs at least two regions (drop the field for a flat LAN)",
                ));
            }
            if regions > nodes {
                return Err(SpecError::at(
                    "workload.regions",
                    format!("{regions} regions cannot be cut from {nodes} nodes"),
                ));
            }
        } else if w.inter_region_ms.is_some() {
            return Err(SpecError::at(
                "workload.inter_region_ms",
                "inter-region latency needs workload.regions",
            ));
        }
        if let Some(v) = w.inter_region_ms {
            if !v.is_finite() || v <= 0.0 {
                return Err(SpecError::at(
                    "workload.inter_region_ms",
                    "must be a positive number of milliseconds",
                ));
            }
        }
        Ok(())
    }

    fn validate_sweep(&self) -> Result<(), SpecError> {
        let Some(axes) = &self.sweep else {
            return Ok(());
        };
        for (i, axis) in axes.iter().enumerate() {
            let path = format!("sweep[{i}].param");
            if !AXIS_PARAMS.contains(&axis.param.as_str()) {
                return Err(SpecError::at(
                    path,
                    format!(
                        "unknown sweep parameter {:?} (expected one of {})",
                        axis.param,
                        AXIS_PARAMS.join(", ")
                    ),
                ));
            }
            if axes
                .iter()
                .filter(|other| other.param == axis.param)
                .count()
                > 1
            {
                return Err(SpecError::at(path, "duplicate sweep parameter"));
            }
            if axis.param == "freshness_ms" && self.workload.freshness_ms.is_some() {
                return Err(SpecError::at(
                    path,
                    "either fix workload.freshness_ms or sweep it, not both",
                ));
            }
            if axis.values.is_empty() {
                return Err(SpecError::at(
                    format!("sweep[{i}].values"),
                    "needs at least one value",
                ));
            }
            for (j, &v) in axis.values.iter().enumerate() {
                let vpath = format!("sweep[{i}].values[{j}]");
                if !v.is_finite() {
                    return Err(SpecError::at(vpath, "must be finite"));
                }
                let integral = matches!(
                    axis.param.as_str(),
                    "agents" | "residence_ms" | "rehash_concurrency"
                );
                if integral && (v.fract() != 0.0 || v < 1.0) {
                    return Err(SpecError::at(
                        vpath,
                        format!("{} values are positive whole numbers", axis.param),
                    ));
                }
                // Zero is meaningful here: it demands Fresh answers.
                if axis.param == "freshness_ms" && (v.fract() != 0.0 || v < 0.0) {
                    return Err(SpecError::at(
                        vpath,
                        "freshness_ms values are whole non-negative milliseconds \
                         (0 demands authoritative answers)",
                    ));
                }
                if axis.param == "intensity" && !(0.0..=1.0).contains(&v) {
                    return Err(SpecError::at(vpath, "intensity lives in [0, 1]"));
                }
                if axis.param == "query_skew" && v < 0.0 {
                    return Err(SpecError::at(vpath, "Zipf exponents are >= 0"));
                }
            }
        }
        Ok(())
    }

    fn validate_schemes(&self) -> Result<(), SpecError> {
        if self.schemes.is_empty() {
            return Err(SpecError::at("schemes", "needs at least one scheme"));
        }
        let labels = self.scheme_labels();
        for (i, scheme) in self.schemes.iter().enumerate() {
            if !SCHEME_KINDS.contains(&scheme.kind.as_str()) {
                return Err(SpecError::at(
                    format!("schemes[{i}].kind"),
                    format!(
                        "unknown scheme kind {:?} (expected one of {})",
                        scheme.kind,
                        SCHEME_KINDS.join(", ")
                    ),
                ));
            }
            if labels.iter().filter(|l| **l == labels[i]).count() > 1 {
                return Err(SpecError::at(
                    format!("schemes[{i}].label"),
                    format!(
                        "label {:?} is not unique; give ablation arms distinct labels",
                        labels[i]
                    ),
                ));
            }
            if scheme.kind != "hashed" {
                for (field, set) in [
                    ("standby", scheme.standby == Some(true)),
                    ("strict_versions", scheme.strict_versions == Some(true)),
                    ("rehash_concurrency", scheme.rehash_concurrency.is_some()),
                    ("eager_propagation", scheme.eager_propagation == Some(true)),
                    (
                        "simple_splits_only",
                        scheme.simple_splits_only == Some(true),
                    ),
                    ("blind_splits", scheme.blind_splits == Some(true)),
                    (
                        "locality_migration",
                        scheme.locality_migration == Some(true),
                    ),
                    ("threshold_max", scheme.threshold_max.is_some()),
                ] {
                    if set {
                        return Err(SpecError::at(
                            format!("schemes[{i}].{field}"),
                            format!("only the hashed scheme understands {field}"),
                        ));
                    }
                }
            }
            if let Some(v) = scheme.version_audit_s {
                if !v.is_finite() || v <= 0.0 {
                    return Err(SpecError::at(
                        format!("schemes[{i}].version_audit_s"),
                        "must be a positive number of seconds",
                    ));
                }
            }
            if scheme.replication_ms == Some(0) {
                return Err(SpecError::at(
                    format!("schemes[{i}].replication_ms"),
                    "must be positive",
                ));
            }
            if scheme.rehash_concurrency == Some(0) {
                return Err(SpecError::at(
                    format!("schemes[{i}].rehash_concurrency"),
                    "must be at least 1 (the single-flight ablation)",
                ));
            }
            if scheme.threshold_min.is_some() && scheme.threshold_max.is_none() {
                return Err(SpecError::at(
                    format!("schemes[{i}].threshold_min"),
                    "threshold_min needs threshold_max",
                ));
            }
            if let (Some(t_max), t_min) = (scheme.threshold_max, scheme.threshold_min) {
                let t_min = t_min.unwrap_or(t_max / 10.0);
                if !t_max.is_finite() || !t_min.is_finite() || t_max <= 0.0 || t_min >= t_max {
                    return Err(SpecError::at(
                        format!("schemes[{i}].threshold_max"),
                        "thresholds need 0 < threshold_min < threshold_max",
                    ));
                }
            }
            if scheme.strict_versions == Some(true) && scheme.version_audit_s.is_none() {
                return Err(SpecError::at(
                    format!("schemes[{i}].strict_versions"),
                    "strict version convergence is only sound with a version_audit_s interval \
                     (the paper's propagation is deliberately lazy)",
                ));
            }
        }
        Ok(())
    }

    fn validate_faults(&self) -> Result<(), SpecError> {
        let swept_intensity = self
            .sweep
            .as_ref()
            .is_some_and(|axes| axes.iter().any(|a| a.param == "intensity"));
        let Some(faults) = &self.faults else {
            if swept_intensity {
                return Err(SpecError::at(
                    "sweep",
                    "an intensity axis needs faults.chaos to drive",
                ));
            }
            return Ok(());
        };
        let arms = usize::from(faults.chaos.is_some())
            + usize::from(faults.regional_partition.is_some())
            + usize::from(faults.region_sever.is_some());
        if arms > 1 {
            return Err(SpecError::at(
                "faults",
                "set exactly one of chaos, regional_partition, or region_sever",
            ));
        }
        if arms == 0 {
            return Err(SpecError::at(
                "faults",
                "set one of chaos, regional_partition, or region_sever \
                 (or drop the faults block)",
            ));
        }
        if faults.chaos.is_none() && swept_intensity {
            return Err(SpecError::at(
                "sweep",
                "an intensity axis needs faults.chaos to drive",
            ));
        }
        if let Some(chaos) = &faults.chaos {
            match chaos.intensity {
                Some(v) if !v.is_finite() || !(0.0..=1.0).contains(&v) => {
                    return Err(SpecError::at(
                        "faults.chaos.intensity",
                        "intensity lives in [0, 1]",
                    ));
                }
                Some(_) if swept_intensity => {
                    return Err(SpecError::at(
                        "faults.chaos.intensity",
                        "either fix the intensity here or sweep it, not both",
                    ));
                }
                None if !swept_intensity => {
                    return Err(SpecError::at(
                        "faults.chaos.intensity",
                        "set an intensity or add an intensity sweep axis",
                    ));
                }
                _ => {}
            }
        }
        if let Some(partition) = &faults.regional_partition {
            for (path, v) in [
                ("faults.regional_partition.at_frac", partition.at_frac),
                ("faults.regional_partition.heal_frac", partition.heal_frac),
            ] {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(SpecError::at(path, "fractions of the run live in [0, 1]"));
                }
            }
            if partition.heal_frac <= partition.at_frac {
                return Err(SpecError::at(
                    "faults.regional_partition.heal_frac",
                    "the partition must heal after it starts",
                ));
            }
            if let Some(groups) = &partition.groups {
                let nodes = self.workload.nodes.unwrap_or(16);
                if groups.len() < 2 {
                    return Err(SpecError::at(
                        "faults.regional_partition.groups",
                        "a partition needs at least two groups",
                    ));
                }
                let mut seen = std::collections::HashSet::new();
                for (g, group) in groups.iter().enumerate() {
                    for &node in group {
                        if node >= nodes {
                            return Err(SpecError::at(
                                format!("faults.regional_partition.groups[{g}]"),
                                format!("node {node} is outside the {nodes}-node topology"),
                            ));
                        }
                        if !seen.insert(node) {
                            return Err(SpecError::at(
                                format!("faults.regional_partition.groups[{g}]"),
                                format!("node {node} appears in two groups"),
                            ));
                        }
                    }
                }
            }
        }
        if let Some(sever) = &faults.region_sever {
            let Some(regions) = self.workload.regions else {
                return Err(SpecError::at(
                    "faults.region_sever",
                    "severing a WAN link needs workload.regions",
                ));
            };
            for (path, region) in [
                ("faults.region_sever.a", sever.a),
                ("faults.region_sever.b", sever.b),
            ] {
                if region >= regions {
                    return Err(SpecError::at(
                        path,
                        format!("region {region} is outside the {regions}-region topology"),
                    ));
                }
            }
            if sever.a == sever.b {
                return Err(SpecError::at(
                    "faults.region_sever.b",
                    "a region cannot sever from itself",
                ));
            }
            for (path, v) in [
                ("faults.region_sever.at_frac", sever.at_frac),
                ("faults.region_sever.heal_frac", sever.heal_frac),
            ] {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(SpecError::at(path, "fractions of the run live in [0, 1]"));
                }
            }
            if sever.heal_frac <= sever.at_frac {
                return Err(SpecError::at(
                    "faults.region_sever.heal_frac",
                    "the link must heal after it severs",
                ));
            }
            let cycles = sever.cycles.unwrap_or(1);
            if cycles == 0 {
                return Err(SpecError::at(
                    "faults.region_sever.cycles",
                    "needs at least one sever/heal cycle",
                ));
            }
            // Cycle i severs at at_frac + i * 2d and heals d later.
            let d = sever.heal_frac - sever.at_frac;
            let last_heal = sever.at_frac + f64::from(2 * cycles - 1) * d;
            if last_heal > 1.0 {
                return Err(SpecError::at(
                    "faults.region_sever.cycles",
                    format!("cycle {cycles} would heal at {last_heal:.2} of the run, past its end"),
                ));
            }
        }
        Ok(())
    }

    fn validate_spikes(&self) -> Result<(), SpecError> {
        let Some(spikes) = &self.spikes else {
            return Ok(());
        };
        for (i, spike) in spikes.iter().enumerate() {
            for (field, v) in [("at_frac", spike.at_frac), ("span_frac", spike.span_frac)] {
                if !v.is_finite() || v < 0.0 {
                    return Err(SpecError::at(
                        format!("spikes[{i}].{field}"),
                        "spike timing fractions are finite and >= 0",
                    ));
                }
            }
            if spike.span_frac == 0.0 {
                return Err(SpecError::at(
                    format!("spikes[{i}].span_frac"),
                    "a spike needs a non-zero span",
                ));
            }
            if spike.queriers == 0 {
                return Err(SpecError::at(
                    format!("spikes[{i}].queriers"),
                    "a spike needs queriers",
                ));
            }
            match (spike.queries_factor, spike.queries) {
                (Some(_), Some(_)) | (None, None) => {
                    return Err(SpecError::at(
                        format!("spikes[{i}].queries"),
                        "set exactly one of queries or queries_factor",
                    ));
                }
                (Some(0), None) | (None, Some(0)) => {
                    return Err(SpecError::at(
                        format!("spikes[{i}].queries"),
                        "a spike needs a positive query budget",
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn validate_columns(&self) -> Result<(), SpecError> {
        if self.columns.is_empty() {
            return Err(SpecError::at("columns", "needs at least one column"));
        }
        let labels = self.scheme_labels();
        let swept: Vec<&str> = self
            .sweep
            .as_ref()
            .map(|axes| axes.iter().map(|a| a.param.as_str()).collect())
            .unwrap_or_default();
        for (i, column) in self.columns.iter().enumerate() {
            let path = format!("columns[{i}].field");
            if !COLUMN_FIELDS.contains(&column.field.as_str()) {
                return Err(SpecError::at(
                    path,
                    format!(
                        "unknown column field {:?} (see EXPERIMENTS.md E18 for the catalog)",
                        column.field
                    ),
                ));
            }
            if let Some(scheme) = &column.scheme {
                if !labels.iter().any(|l| l == scheme) {
                    return Err(SpecError::at(
                        format!("columns[{i}].scheme"),
                        format!(
                            "no scheme labelled {:?} (have {})",
                            scheme,
                            labels.join(", ")
                        ),
                    ));
                }
                if self.scheme_rows() {
                    return Err(SpecError::at(
                        format!("columns[{i}].scheme"),
                        "scheme_rows emits one row per scheme; scheme-scoped columns are for \
                         the wide layout",
                    ));
                }
            } else if !self.scheme_rows()
                && labels.len() > 1
                && !POINT_FIELDS.contains(&column.field.as_str())
            {
                return Err(SpecError::at(
                    format!("columns[{i}].scheme"),
                    format!(
                        "ambiguous: {} schemes are in play; name one (have {})",
                        labels.len(),
                        labels.join(", ")
                    ),
                ));
            }
            match column.field.as_str() {
                "scheme" if !self.scheme_rows() => {
                    return Err(SpecError::at(
                        path,
                        "a scheme column only makes sense with scheme_rows",
                    ));
                }
                "intensity" => {
                    let fixed = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.chaos.as_ref())
                        .is_some_and(|c| c.intensity.is_some());
                    if !swept.contains(&"intensity") && !fixed {
                        return Err(SpecError::at(
                            path,
                            "an intensity column needs chaos faults (fixed or swept)",
                        ));
                    }
                }
                "residence_ms"
                    if !swept.contains(&"residence_ms") && self.workload.residence_ms.is_none() =>
                {
                    return Err(SpecError::at(
                        path,
                        "a residence_ms column needs workload.residence_ms or a sweep axis",
                    ));
                }
                "rehash_concurrency" => {
                    let fixed = self.schemes.iter().any(|s| s.rehash_concurrency.is_some());
                    if !swept.contains(&"rehash_concurrency") && !fixed {
                        return Err(SpecError::at(
                            path,
                            "a rehash_concurrency column needs a sweep axis or a scheme setting",
                        ));
                    }
                }
                "query_skew"
                    if !swept.contains(&"query_skew") && self.workload.query_skew.is_none() =>
                {
                    return Err(SpecError::at(
                        path,
                        "a query_skew column needs workload.query_skew or a sweep axis",
                    ));
                }
                "freshness_ms"
                    if !swept.contains(&"freshness_ms") && self.workload.freshness_ms.is_none() =>
                {
                    return Err(SpecError::at(
                        path,
                        "a freshness_ms column needs workload.freshness_ms or a sweep axis",
                    ));
                }
                "reconverge_ms" if self.spikes.as_ref().is_none_or(Vec::is_empty) => {
                    return Err(SpecError::at(
                        path,
                        "reconverge_ms measures rehash settling after a spike; add spikes",
                    ));
                }
                "violations" if !self.audit() => {
                    return Err(SpecError::at(
                        path,
                        "a violations column needs the invariant audit (drop audit: false)",
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Re-runs [`SpecError::locate`] using the error path's leaf key, so
/// semantic errors also point into the source text when possible.
fn relocate(error: SpecError, source: &str) -> SpecError {
    let leaf = error
        .path
        .rsplit('.')
        .next()
        .map(|s| s.split('[').next().unwrap_or(s))
        .unwrap_or("");
    if leaf.is_empty() || leaf == "<spec>" {
        return error;
    }
    let leaf = leaf.to_owned();
    error.locate(source, &leaf)
}

/// Strict unknown-key checking over the raw value tree: the vendored
/// serde ignores unknown keys, so a typo like `residence_millis` would
/// silently fall back to the default — exactly the failure mode a
/// declarative lab cannot afford.
fn check_keys(value: &Value, source: &str) -> Result<(), SpecError> {
    const SPEC_KEYS: &[&str] = &[
        "name",
        "title",
        "workload",
        "sweep",
        "schemes",
        "scheme_rows",
        "seeds",
        "faults",
        "spikes",
        "audit",
        "trace_buffer",
        "columns",
    ];
    const WORKLOAD_KEYS: &[&str] = &[
        "agents",
        "residence_ms",
        "queries",
        "nodes",
        "queriers",
        "warmup_s",
        "measure_s",
        "grace_s",
        "query_skew",
        "mobility_skew",
        "churn_lifespan_ms",
        "loss",
        "duplication",
        "regions",
        "inter_region_ms",
        "freshness_ms",
    ];
    const AXIS_KEYS: &[&str] = &["param", "values"];
    const SCHEME_KEYS: &[&str] = &[
        "kind",
        "label",
        "patient",
        "standby",
        "strict_versions",
        "version_audit_s",
        "replication_ms",
        "rehash_concurrency",
        "eager_propagation",
        "simple_splits_only",
        "blind_splits",
        "locality_migration",
        "threshold_max",
        "threshold_min",
    ];
    const FAULT_KEYS: &[&str] = &["chaos", "regional_partition", "region_sever"];
    const CHAOS_KEYS: &[&str] = &["seed", "intensity"];
    const PARTITION_KEYS: &[&str] = &["groups", "at_frac", "heal_frac"];
    const SEVER_KEYS: &[&str] = &["a", "b", "at_frac", "heal_frac", "cycles"];
    const SPIKE_KEYS: &[&str] = &[
        "at_frac",
        "span_frac",
        "queries_factor",
        "queries",
        "queriers",
    ];
    const COLUMN_KEYS: &[&str] = &["field", "scheme", "header"];

    let root = expect_map(value, "<spec>")?;
    allow_keys("<spec>", root, SPEC_KEYS, source)?;
    if let Some(workload) = get(root, "workload") {
        allow_keys(
            "workload",
            expect_map(workload, "workload")?,
            WORKLOAD_KEYS,
            source,
        )?;
    }
    for (i, axis) in seq(root, "sweep", source)? {
        let path = format!("sweep[{i}]");
        allow_keys(&path, expect_map(axis, &path)?, AXIS_KEYS, source)?;
    }
    for (i, scheme) in seq(root, "schemes", source)? {
        let path = format!("schemes[{i}]");
        allow_keys(&path, expect_map(scheme, &path)?, SCHEME_KEYS, source)?;
    }
    if let Some(faults) = get(root, "faults") {
        if !matches!(faults, Value::Null) {
            let map = expect_map(faults, "faults")?;
            allow_keys("faults", map, FAULT_KEYS, source)?;
            if let Some(chaos) = get(map, "chaos") {
                if !matches!(chaos, Value::Null) {
                    allow_keys(
                        "faults.chaos",
                        expect_map(chaos, "faults.chaos")?,
                        CHAOS_KEYS,
                        source,
                    )?;
                }
            }
            if let Some(partition) = get(map, "regional_partition") {
                if !matches!(partition, Value::Null) {
                    allow_keys(
                        "faults.regional_partition",
                        expect_map(partition, "faults.regional_partition")?,
                        PARTITION_KEYS,
                        source,
                    )?;
                }
            }
            if let Some(sever) = get(map, "region_sever") {
                if !matches!(sever, Value::Null) {
                    allow_keys(
                        "faults.region_sever",
                        expect_map(sever, "faults.region_sever")?,
                        SEVER_KEYS,
                        source,
                    )?;
                }
            }
        }
    }
    for (i, spike) in seq(root, "spikes", source)? {
        let path = format!("spikes[{i}]");
        allow_keys(&path, expect_map(spike, &path)?, SPIKE_KEYS, source)?;
    }
    for (i, column) in seq(root, "columns", source)? {
        let path = format!("columns[{i}]");
        allow_keys(&path, expect_map(column, &path)?, COLUMN_KEYS, source)?;
    }
    Ok(())
}

fn expect_map<'a>(value: &'a Value, path: &str) -> Result<&'a [(String, Value)], SpecError> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(SpecError::at(
            path,
            format!("expected an object, got {}", kind_of(other)),
        )),
    }
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The elements of an optional array field, or empty when absent/null.
fn seq<'a>(
    map: &'a [(String, Value)],
    key: &str,
    _source: &str,
) -> Result<Vec<(usize, &'a Value)>, SpecError> {
    match get(map, key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Seq(items)) => Ok(items.iter().enumerate().collect()),
        Some(other) => Err(SpecError::at(
            key,
            format!("expected an array, got {}", kind_of(other)),
        )),
    }
}

fn allow_keys(
    path: &str,
    map: &[(String, Value)],
    allowed: &[&str],
    source: &str,
) -> Result<(), SpecError> {
    for (key, _) in map {
        if !allowed.contains(&key.as_str()) {
            let full = if path == "<spec>" {
                key.clone()
            } else {
                format!("{path}.{key}")
            };
            return Err(SpecError::at(
                full,
                format!("unknown field (expected one of {})", allowed.join(", ")),
            )
            .locate(source, key));
        }
    }
    Ok(())
}

fn kind_of(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "a bool",
        Value::U64(_) | Value::I64(_) | Value::F64(_) => "a number",
        Value::Str(_) => "a string",
        Value::Seq(_) => "an array",
        Value::Map(_) => "an object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> &'static str {
        r#"{
            "name": "smoke",
            "title": "smoke",
            "workload": {"agents": 100},
            "schemes": [{"kind": "hashed"}],
            "columns": [{"field": "mean_ms"}]
        }"#
    }

    #[test]
    fn minimal_spec_loads() {
        let spec = ScenarioSpec::load_str(minimal()).expect("loads");
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.seed_list(), vec![42]);
        assert!(spec.audit());
        assert!(!spec.scheme_rows());
    }

    #[test]
    fn unknown_key_is_named_and_located() {
        let source = minimal().replace("\"agents\"", "\"agnets\"");
        let err = ScenarioSpec::load_str(&source).expect_err("rejects");
        assert_eq!(err.path, "workload.agnets");
        assert!(err.line.is_some(), "span missing: {err}");
        assert!(err.message.contains("unknown field"));
    }

    #[test]
    fn bad_scheme_kind_is_named() {
        let source = minimal().replace("\"hashed\"", "\"hasjed\"");
        let err = ScenarioSpec::load_str(&source).expect_err("rejects");
        assert_eq!(err.path, "schemes[0].kind");
    }

    #[test]
    fn round_trips_through_json() {
        let spec = ScenarioSpec::load_str(minimal()).expect("loads");
        let again = ScenarioSpec::parse(&spec.to_json()).expect("reparses");
        assert_eq!(spec, again);
    }
}
