//! The generic trial runner: expands a [`ScenarioSpec`] into independent
//! trial cells (grid point × scheme arm × seed), runs them across worker
//! threads with the same work-stealing executor the hand-coded
//! experiments use, and folds the outcomes into the spec's table plus
//! structured per-trial records.
//!
//! Every trial owns its entire simulation and is fully determined by the
//! spec and its seed, so `--jobs 1` and `--jobs N` produce byte-identical
//! tables — the property the `scenario-lab-smoke` CI job diffs.

use std::sync::Arc;
use std::time::Instant;

use agentrack_core::{Freshness, LocationConfig};
use agentrack_sim::{
    ChaosConfig, DurationDist, FaultEvent, FaultKind, FaultPlan, NodeId, SimDuration, SimTime,
    TraceEvent, TraceSink,
};
use agentrack_workload::{
    AuditOptions, InvariantReport, QuerySpike, RunOptions, Scenario, ScenarioReport,
};
use serde::{Deserialize, Serialize};

use crate::spec::ScenarioSpec;
use crate::{boxed_scheme, ms, ms_or_dnf, patient, run_cells, Fidelity, Table};

/// One sweep-axis assignment of a trial's grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointValue {
    /// The axis parameter.
    pub param: String,
    /// The value this trial ran at (full-fidelity, before scaling).
    pub value: f64,
}

/// One scheduled fault's effect window, in run-relative milliseconds —
/// lets downstream analysis line locate samples up against outages
/// without re-deriving the fault plan from the spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The fault kind's short name (`partition`, `region-sever`, ...).
    pub kind: String,
    /// When the fault lands, milliseconds from the start of the run.
    pub at_ms: f64,
    /// When its effect ends, when it ends on its own (a sever's heal, a
    /// crash's restart); `None` for permanent effects.
    pub ends_ms: Option<f64>,
}

/// The structured outcome of one trial: everything the table formatter
/// reads, plus the full report and audit for downstream analysis. One
/// JSON array of these lands in `results/<spec>.trials.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The spec that produced this trial.
    pub spec: String,
    /// The scenario name the trial ran under.
    pub scenario: String,
    /// Scheme arm label.
    pub scheme: String,
    /// Scheme kind behind the label.
    pub kind: String,
    /// Master seed of the trial.
    pub seed: u64,
    /// The grid point, one assignment per sweep axis.
    pub point: Vec<PointValue>,
    /// Population actually simulated (after fidelity scaling).
    pub agents: usize,
    /// Resolved residence time, when the workload fixes one.
    pub residence_ms: Option<u64>,
    /// Resolved chaos intensity, when chaos faults are in play.
    pub intensity: Option<f64>,
    /// Resolved rehash pipeline width, when set.
    pub rehash_concurrency: Option<usize>,
    /// Resolved query Zipf exponent, when set.
    pub query_skew: Option<f64>,
    /// Resolved freshness bound in milliseconds (`0` = Fresh), when the
    /// workload or a sweep axis declares one; `None` = Any.
    pub freshness_ms: Option<u64>,
    /// The trial's scheduled fault windows (sever/heal, crash/restart),
    /// empty for fault-free trials.
    pub fault_windows: Vec<FaultWindow>,
    /// The scenario report.
    pub report: ScenarioReport,
    /// The post-quiesce invariant audit (absent with `audit: false`).
    pub invariants: Option<InvariantReport>,
    /// Rehash requests the control plane denied.
    pub rehash_denied: u64,
    /// Milliseconds from the first spike's start to the last committed
    /// split — rehash settling time (requires tracing and spikes).
    pub reconverge_ms: Option<f64>,
    /// Host wall-clock milliseconds the trial took. The only
    /// non-deterministic field; golden tests bound it instead of
    /// comparing it.
    pub wall_ms: f64,
}

/// Everything one spec run produces: the rendered table and the trial
/// records behind its rows.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// The table, shaped by the spec's columns and row layout.
    pub table: Table,
    /// Per-trial structured records, in grid order (point, then scheme,
    /// then seed).
    pub trials: Vec<TrialRecord>,
}

impl SpecOutcome {
    /// The trial records as a JSON array.
    #[must_use]
    pub fn trials_json(&self) -> String {
        serde_json::to_string(&self.trials).expect("trial serialization cannot fail")
    }
}

/// Runs every trial of a validated spec and folds the outcomes into the
/// spec's table. `jobs` is the worker-thread count (callers resolve
/// `0 = all cores` before calling, as the `repro` binary does).
///
/// # Panics
///
/// Panics if the spec was not validated ([`ScenarioSpec::load_str`]
/// guarantees validity) or if a trial's simulation panics.
#[must_use]
pub fn run_spec(spec: &ScenarioSpec, fidelity: Fidelity, jobs: usize) -> SpecOutcome {
    let spec = Arc::new(spec.clone());
    let labels = spec.scheme_labels();
    let seeds = spec.seed_list();
    let points = expand_points(&spec);

    let mut cells: Vec<Box<dyn FnOnce() -> TrialRecord + Send>> = Vec::new();
    for point in &points {
        for (scheme_idx, _) in spec.schemes.iter().enumerate() {
            for &seed in &seeds {
                let spec = Arc::clone(&spec);
                let point = point.clone();
                let label = labels[scheme_idx].clone();
                cells.push(Box::new(move || {
                    run_trial(&spec, fidelity, &point, scheme_idx, &label, seed)
                }));
            }
        }
    }
    let trials = run_cells(cells, jobs);

    let headers: Vec<String> = spec.columns.iter().map(|c| c.header()).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(spec.title.clone(), &header_refs);
    let per_point = spec.schemes.len() * seeds.len();
    for (point_idx, _) in points.iter().enumerate() {
        let block = &trials[point_idx * per_point..(point_idx + 1) * per_point];
        if spec.scheme_rows() {
            for trial in block {
                let row = spec
                    .columns
                    .iter()
                    .map(|c| format_field(&c.field, trial))
                    .collect();
                table.push_row(row);
            }
        } else {
            for (seed_idx, _) in seeds.iter().enumerate() {
                let arm = |label: Option<&String>| -> &TrialRecord {
                    let scheme_idx = label
                        .map(|l| {
                            labels
                                .iter()
                                .position(|have| have == l)
                                .expect("validated scheme reference")
                        })
                        .unwrap_or(0);
                    &block[scheme_idx * seeds.len() + seed_idx]
                };
                let row = spec
                    .columns
                    .iter()
                    .map(|c| format_field(&c.field, arm(c.scheme.as_ref())))
                    .collect();
                table.push_row(row);
            }
        }
    }
    SpecOutcome { table, trials }
}

/// The cartesian product of the sweep axes, in declaration order (later
/// axes vary fastest); a single empty point without a sweep.
fn expand_points(spec: &ScenarioSpec) -> Vec<Vec<PointValue>> {
    let mut points: Vec<Vec<PointValue>> = vec![Vec::new()];
    for axis in spec.sweep.iter().flatten() {
        let mut next = Vec::with_capacity(points.len() * axis.values.len());
        for point in &points {
            for &value in &axis.values {
                let mut grown = point.clone();
                grown.push(PointValue {
                    param: axis.param.clone(),
                    value,
                });
                next.push(grown);
            }
        }
        points = next;
    }
    points
}

fn axis_value(point: &[PointValue], param: &str) -> Option<f64> {
    point.iter().find(|p| p.param == param).map(|p| p.value)
}

#[allow(clippy::too_many_lines)]
fn run_trial(
    spec: &ScenarioSpec,
    fidelity: Fidelity,
    point: &[PointValue],
    scheme_idx: usize,
    label: &str,
    seed: u64,
) -> TrialRecord {
    let wall = Instant::now();
    let w = &spec.workload;
    let arm = &spec.schemes[scheme_idx];

    let full_agents = axis_value(point, "agents").map_or(w.agents, |v| v as usize);
    let agents = fidelity.scale_agents(full_agents);
    let (fidelity_warmup, fidelity_measure) = fidelity.spans();
    let warmup = w.warmup_s.unwrap_or(fidelity_warmup);
    let measure = w.measure_s.unwrap_or(fidelity_measure);
    let queries = w.queries.unwrap_or_else(|| fidelity.queries());
    let residence_ms = axis_value(point, "residence_ms")
        .map(|v| v as u64)
        .or(w.residence_ms);
    let query_skew = axis_value(point, "query_skew").or(w.query_skew);
    let rehash_concurrency = axis_value(point, "rehash_concurrency")
        .map(|v| v as usize)
        .or(arm.rehash_concurrency);
    let freshness_ms = axis_value(point, "freshness_ms")
        .map(|v| v as u64)
        .or(w.freshness_ms);

    let mut scenario = Scenario::new(format!("{}-{label}-s{seed}", spec.name))
        .with_agents(agents)
        .with_queries(queries)
        .with_seconds(warmup, measure)
        .with_seed(seed);
    if let Some(residence) = residence_ms {
        scenario = scenario.with_residence_ms(residence);
    }
    if let Some(nodes) = w.nodes {
        scenario.nodes = nodes;
    }
    if let Some(queriers) = w.queriers {
        scenario.queriers = queriers;
    }
    if let Some(grace) = w.grace_s {
        scenario.grace = SimDuration::from_secs_f64(grace);
    }
    scenario.query_skew = query_skew;
    scenario.mobility_skew = w.mobility_skew;
    if let Some(loss) = w.loss {
        scenario.loss = loss;
    }
    if let Some(duplication) = w.duplication {
        scenario.duplication = duplication;
    }
    if let Some(lifespan_ms) = w.churn_lifespan_ms {
        scenario.churn_lifespan = Some(DurationDist::Constant(SimDuration::from_millis(
            lifespan_ms,
        )));
    }
    if let Some(regions) = w.regions {
        scenario = scenario.with_regions(regions, w.inter_region_ms.unwrap_or(60.0));
    }
    if let Some(bound_ms) = freshness_ms {
        scenario = scenario.with_freshness(match bound_ms {
            0 => Freshness::Fresh,
            ms => Freshness::BoundedMs(ms),
        });
    }

    // Spikes: timed against the resolved spans, exactly as E17 computes
    // its flash crowd from `scenario.warmup`/`scenario.measure`.
    let mut first_spike_at: Option<SimDuration> = None;
    for s in spec.spikes.iter().flatten() {
        let at = scenario.warmup + scenario.measure.mul_f64(s.at_frac);
        let span = scenario.measure.mul_f64(s.span_frac);
        let queries = s
            .queries
            .unwrap_or_else(|| scenario.queries_total * s.queries_factor.unwrap_or(0));
        first_spike_at = Some(first_spike_at.map_or(at, |earliest| earliest.min(at)));
        scenario = scenario.with_spike(QuerySpike {
            at,
            span,
            queries,
            queriers: s.queriers,
        });
    }

    let mut intensity = None;
    if let Some(faults) = &spec.faults {
        if let Some(chaos) = &faults.chaos {
            let resolved = chaos
                .intensity
                .or_else(|| axis_value(point, "intensity"))
                .unwrap_or(0.0);
            intensity = Some(resolved);
            if resolved > 0.0 {
                scenario.faults = ChaosConfig {
                    seed: chaos.seed,
                    intensity: resolved,
                }
                .generate(scenario.nodes, scenario.duration());
            }
        }
        if let Some(partition) = &faults.regional_partition {
            let duration = scenario.duration();
            let groups: Vec<Vec<NodeId>> = match &partition.groups {
                Some(groups) => groups
                    .iter()
                    .map(|group| group.iter().copied().map(NodeId::new).collect())
                    .collect(),
                None => {
                    let half = scenario.nodes / 2;
                    vec![
                        (0..half).map(NodeId::new).collect(),
                        (half..scenario.nodes).map(NodeId::new).collect(),
                    ]
                }
            };
            let mut plan = FaultPlan::new();
            plan.push(FaultEvent {
                at: SimTime::ZERO + duration.mul_f64(partition.at_frac),
                kind: FaultKind::Partition {
                    groups,
                    heal_at: SimTime::ZERO + duration.mul_f64(partition.heal_frac),
                },
            });
            scenario.faults = plan;
        }
        if let Some(sever) = &faults.region_sever {
            let duration = scenario.duration();
            let d = sever.heal_frac - sever.at_frac;
            let mut plan = FaultPlan::new();
            for cycle in 0..sever.cycles.unwrap_or(1) {
                let start = sever.at_frac + f64::from(2 * cycle) * d;
                plan.push(FaultEvent {
                    at: SimTime::ZERO + duration.mul_f64(start),
                    kind: FaultKind::RegionSever {
                        a: sever.a,
                        b: sever.b,
                        heal_at: SimTime::ZERO + duration.mul_f64(start + d),
                    },
                });
            }
            scenario.faults = plan;
        }
    }
    let fault_windows: Vec<FaultWindow> = scenario
        .faults
        .events()
        .iter()
        .map(|e| FaultWindow {
            kind: e.kind.name().to_owned(),
            at_ms: e.at.saturating_since(SimTime::ZERO).as_millis_f64(),
            ends_ms: e
                .kind
                .ends_at()
                .map(|end| end.saturating_since(SimTime::ZERO).as_millis_f64()),
        })
        .collect();

    let mut config = LocationConfig::default();
    if arm.patient.unwrap_or(false) {
        config = patient(config);
    }
    if let Some(t_max) = arm.threshold_max {
        config = config.with_thresholds(t_max, arm.threshold_min.unwrap_or(t_max / 10.0));
    }
    if arm.simple_splits_only.unwrap_or(false) {
        config = config.simple_splits_only();
    }
    if arm.blind_splits.unwrap_or(false) {
        config = config.with_blind_splits();
    }
    if arm.eager_propagation.unwrap_or(false) {
        config = config.with_eager_propagation();
    }
    if arm.locality_migration.unwrap_or(false) {
        config = config.with_locality_migration();
    }
    if let Some(interval_s) = arm.version_audit_s {
        config = config.with_version_audit(SimDuration::from_secs_f64(interval_s));
    }
    if let Some(interval_ms) = arm.replication_ms {
        config = config.with_replication(SimDuration::from_millis(interval_ms));
    }
    if let Some(concurrency) = rehash_concurrency {
        config = config.with_rehash_concurrency(concurrency);
    }

    let needs_trace =
        spec.trace_buffer.is_some() || spec.columns.iter().any(|c| c.field == "reconverge_ms");
    let sink = if needs_trace {
        TraceSink::bounded(spec.trace_buffer.unwrap_or(1_048_576))
    } else {
        TraceSink::disabled()
    };
    let mut options = RunOptions::new();
    if needs_trace {
        options = options.with_sink(sink.clone());
    }
    if spec.audit() {
        options = options.with_audit(AuditOptions {
            strict_versions: arm.strict_versions.unwrap_or(false),
        });
    }

    let mut scheme = boxed_scheme(&arm.kind, config, arm.standby.unwrap_or(false));
    let out = scenario.run_with(scheme.as_mut(), options);
    let rehash_denied = scheme.stats().rehash_denied;

    let reconverge_ms = if needs_trace {
        first_spike_at.and_then(|at| {
            let spike_start = SimTime::ZERO + at;
            sink.snapshot()
                .iter()
                .filter(|r| {
                    matches!(r.event, TraceEvent::RehashSplit { .. }) && r.at >= spike_start
                })
                .map(|r| r.at)
                .max()
                .map(|last| last.saturating_since(spike_start).as_millis_f64())
        })
    } else {
        None
    };

    TrialRecord {
        spec: spec.name.clone(),
        scenario: scenario.name.clone(),
        scheme: label.to_owned(),
        kind: arm.kind.clone(),
        seed,
        point: point.to_vec(),
        agents,
        residence_ms,
        intensity,
        rehash_concurrency,
        query_skew,
        freshness_ms,
        fault_windows,
        report: out.report,
        invariants: out.invariants,
        rehash_denied,
        reconverge_ms,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
    }
}

/// Formats one column field from a trial, replicating the hand-coded
/// experiments' formatting exactly (latencies `{:.2}`, percentages and
/// intensities `{:.1}`, counters as integers, `dnf` for starved or
/// unsettled metrics).
fn format_field(field: &str, trial: &TrialRecord) -> String {
    let r = &trial.report;
    match field {
        "agents" => trial.agents.to_string(),
        "residence_ms" => trial
            .residence_ms
            .map_or_else(|| format!("{}", r.residence_ms as u64), |v| v.to_string()),
        "intensity" => format!("{:.1}", trial.intensity.unwrap_or(0.0)),
        "rehash_concurrency" => trial
            .rehash_concurrency
            .map_or_else(|| "-".to_owned(), |v| v.to_string()),
        "query_skew" => format!("{:.1}", trial.query_skew.unwrap_or(0.0)),
        // `any` marks the unbounded default so a swept 0 (Fresh) stays
        // distinguishable in the table.
        "freshness_ms" => trial
            .freshness_ms
            .map_or_else(|| "any".to_owned(), |v| v.to_string()),
        "scheme" => trial.scheme.clone(),
        "seed" => trial.seed.to_string(),
        "issued" => r.locates_issued.to_string(),
        "completed" => r.locates_completed.to_string(),
        "failures" => r.locate_failures.to_string(),
        "success_pct" => format!("{:.1}", 100.0 * r.completion_ratio()),
        "mean_ms" => ms(r.mean_locate_ms),
        "mean_ms_or_dnf" => ms_or_dnf(r),
        "p50_ms" => ms(r.p50_locate_ms),
        "p95_ms" => ms(r.p95_locate_ms),
        "p99_ms" => ms(r.p99_locate_ms),
        "max_ms" => ms(r.max_locate_ms),
        "trackers" => r.trackers.to_string(),
        "peak_trackers" => r.peak_trackers.to_string(),
        "splits" => r.splits.to_string(),
        "merges" => r.merges.to_string(),
        "denied" => trial.rehash_denied.to_string(),
        "tree_height" => r.tree_height.to_string(),
        "mean_prefix_bits" => format!("{:.2}", r.mean_prefix_bits),
        "reconverge_ms" => trial.reconverge_ms.map_or_else(|| "dnf".to_owned(), ms),
        "messages_sent" => r.messages_sent.to_string(),
        "messages_remote" => r.messages_remote.to_string(),
        "messages_failed" => r.messages_failed.to_string(),
        "mail_buffered" => r.mail_buffered.to_string(),
        "mail_flushed" => r.mail_flushed.to_string(),
        "mail_lost" => r.mail_lost.to_string(),
        "record_syncs" => r.record_syncs.to_string(),
        "recoveries_started" => r.recoveries_started.to_string(),
        "recoveries_completed" => r.recoveries_completed.to_string(),
        "stale_answers" => r.stale_answers.to_string(),
        "stale_answer_pct" => {
            let completed = r.locates_completed;
            if completed == 0 {
                "0.0".to_owned()
            } else {
                #[allow(clippy::cast_precision_loss)]
                let pct = 100.0 * r.stale_located as f64 / completed as f64;
                format!("{pct:.1}")
            }
        }
        "replica_answers" => r.replica_answers.to_string(),
        "freshness_refusals" => r.freshness_refusals.to_string(),
        "hedged_locates" => r.hedged_locates.to_string(),
        "bound_violations" => r.bound_violations.to_string(),
        "stale_hits" => r.stale_hits.to_string(),
        "hf_fetches" => r.hf_fetches.to_string(),
        "chain_hops" => r.chain_hops.to_string(),
        "iagent_moves" => r.iagent_moves.to_string(),
        "registrations" => r.registrations.to_string(),
        "moves" => r.moves.to_string(),
        "births" => r.births.to_string(),
        "deaths" => r.deaths.to_string(),
        "violations" => trial
            .invariants
            .as_ref()
            .map_or_else(|| "-".to_owned(), |i| i.violations.len().to_string()),
        other => unreachable!("validated column field {other:?}"),
    }
}
