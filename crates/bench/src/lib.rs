//! # agentrack-bench
//!
//! The experiment harness: one function per figure of the paper's
//! evaluation, plus the extension experiments (ablations, sensitivity
//! sweeps, a baseline panel). The `repro` binary dispatches to these and
//! prints the tables recorded in `EXPERIMENTS.md`; the Criterion benches
//! under `benches/` cover the micro-level costs.
//!
//! Every experiment takes a [`Fidelity`]: [`Fidelity::Full`] reproduces the
//! paper's parameters (reconstructed where the source text lost digits —
//! see `DESIGN.md`), [`Fidelity::Quick`] shrinks populations and spans so
//! integration tests and smoke runs finish in seconds.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use agentrack_core::{
    CentralizedScheme, ForwardingScheme, HashedScheme, HomeRegistryScheme, LocationConfig,
    LocationScheme,
};
use agentrack_workload::{AuditOptions, RunOptions, Scenario, ScenarioReport};

pub mod spec;

mod runner;
pub use runner::{run_spec, PointValue, SpecOutcome, TrialRecord};
pub use spec::{ScenarioSpec, SpecError};

/// One independent grid cell of an experiment: computes one table row.
///
/// Cells own their entire simulation (topology, platform, RNG seeded from
/// the scenario's explicit master seed), so the thread that happens to run
/// a cell cannot influence its result — parallel and sequential execution
/// produce identical tables.
type Cell = Box<dyn FnOnce() -> Vec<String> + Send>;

/// Runs independent experiment cells across `jobs` worker threads and
/// returns the outcomes in cell order. Generic over the outcome type: the
/// hand-coded experiments produce formatted rows (`Vec<String>`), the
/// spec-driven trial runner produces structured trial outcomes.
///
/// Work-stealing by atomic index: scoped threads pull the next unclaimed
/// cell until the grid is exhausted, so a slow cell (the big-population
/// end of a sweep) never serialises the rest of the grid behind it.
/// `jobs <= 1` degenerates to the plain sequential loop.
///
/// # Panics
///
/// Propagates a panic from any cell (scoped-thread join).
pub(crate) fn run_cells<T: Send>(cells: Vec<Box<dyn FnOnce() -> T + Send>>, jobs: usize) -> Vec<T> {
    let jobs = jobs.clamp(1, cells.len().max(1));
    if jobs <= 1 {
        return cells.into_iter().map(|cell| cell()).collect();
    }
    #[allow(clippy::type_complexity)]
    let slots: Vec<Mutex<Option<Box<dyn FnOnce() -> T + Send>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let rows: Vec<Mutex<Option<T>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let cell = slots[i]
                    .lock()
                    .expect("cell slot poisoned")
                    .take()
                    .expect("cell claimed twice");
                *rows[i].lock().expect("row slot poisoned") = Some(cell());
            });
        }
    });
    rows.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("row slot poisoned")
                .expect("cell never ran")
        })
        .collect()
}

/// How much of the paper's scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The reconstructed paper parameters.
    Full,
    /// Shrunk populations and spans for smoke tests.
    Quick,
}

impl Fidelity {
    fn scale_agents(self, n: usize) -> usize {
        match self {
            Fidelity::Full => n,
            Fidelity::Quick => (n / 10).max(10),
        }
    }

    fn queries(self) -> u64 {
        match self {
            Fidelity::Full => 2000,
            Fidelity::Quick => 200,
        }
    }

    fn spans(self) -> (f64, f64) {
        match self {
            // The split cascade at the largest population needs ~25 s to
            // converge (the HAgent serialises rehashes); measure after it.
            Fidelity::Full => (35.0, 15.0),
            Fidelity::Quick => (10.0, 5.0),
        }
    }
}

/// A printable result table with a machine-readable CSV form.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (the experiment id and description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a report's mean locate time, or `dnf` when the scheme answered
/// nothing at all (a tracker so saturated that every query outlived the
/// retry budget).
fn ms_or_dnf(report: &ScenarioReport) -> String {
    if report.locates_completed == 0 {
        "dnf".to_owned()
    } else {
        ms(report.mean_locate_ms)
    }
}

/// Experiment-grade client patience: a saturated tracker answers queries
/// from a queue that is seconds deep; giving up early would record the
/// meltdown as "no data" instead of as the honest, huge location times.
fn patient(mut config: LocationConfig) -> LocationConfig {
    config.max_locate_attempts = 30;
    config.locate_retry_timeout = agentrack_sim::SimDuration::from_secs(2);
    config
}

/// Builds a fresh boxed scheme instance of the named kind.
///
/// # Panics
///
/// Panics on an unknown scheme kind.
pub(crate) fn boxed_scheme(
    kind: &str,
    config: LocationConfig,
    standby: bool,
) -> Box<dyn LocationScheme> {
    match kind {
        "hashed" if standby => Box::new(HashedScheme::new(config).with_standby()),
        "hashed" => Box::new(HashedScheme::new(config)),
        "centralized" => Box::new(CentralizedScheme::new(config)),
        "home-registry" => Box::new(HomeRegistryScheme::new(config)),
        "forwarding" => Box::new(ForwardingScheme::new(config)),
        other => panic!("unknown scheme {other}"),
    }
}

/// Runs one scenario against a fresh scheme instance of the named kind.
fn run_scheme(scenario: &Scenario, kind: &str, config: LocationConfig) -> ScenarioReport {
    let mut scheme = boxed_scheme(kind, config, false);
    scenario.run_with(scheme.as_mut(), RunOptions::new()).report
}

/// **E1 / Figure 7 (Experiment I)** — location time vs. number of TAgents,
/// centralized vs. hash-based. Residence fixed at 500 ms per node.
#[must_use]
pub fn exp1(fidelity: Fidelity, jobs: usize) -> Table {
    let populations: &[usize] = &[100, 200, 300, 500, 1000];
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E1 (Figure 7): location time vs number of TAgents",
        &[
            "agents",
            "centralized_ms",
            "hashed_ms",
            "hashed_p95_ms",
            "iagents",
            "splits",
            "cen_done",
            "hash_done",
        ],
    );
    let cells: Vec<Cell> = populations
        .iter()
        .map(|&n| {
            let agents = fidelity.scale_agents(n);
            Box::new(move || {
                let mut scenario = Scenario::new(format!("exp1-{agents}"))
                    .with_agents(agents)
                    .with_residence_ms(500)
                    .with_queries(fidelity.queries())
                    .with_seconds(warmup, measure);
                scenario.grace = agentrack_sim::SimDuration::from_secs(45);
                let cen = run_scheme(&scenario, "centralized", patient(LocationConfig::default()));
                let hash = run_scheme(&scenario, "hashed", patient(LocationConfig::default()));
                vec![
                    agents.to_string(),
                    ms_or_dnf(&cen),
                    ms(hash.mean_locate_ms),
                    ms(hash.p95_locate_ms),
                    hash.trackers.to_string(),
                    hash.splits.to_string(),
                    cen.locates_completed.to_string(),
                    hash.locates_completed.to_string(),
                ]
            }) as Cell
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E2 / Figure 8 (Experiment II)** — location time vs. mobility rate
/// (residence time per node), 200 TAgents.
#[must_use]
pub fn exp2(fidelity: Fidelity, jobs: usize) -> Table {
    let residences: &[u64] = &[100, 200, 500, 1000, 2000];
    let agents = fidelity.scale_agents(200);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E2 (Figure 8): location time vs residence time per node",
        &[
            "residence_ms",
            "centralized_ms",
            "hashed_ms",
            "hashed_p95_ms",
            "iagents",
            "cen_done",
            "hash_done",
        ],
    );
    let cells: Vec<Cell> = residences
        .iter()
        .map(|&res| {
            Box::new(move || {
                let mut scenario = Scenario::new(format!("exp2-{res}"))
                    .with_agents(agents)
                    .with_residence_ms(res)
                    .with_queries(fidelity.queries())
                    .with_seconds(warmup, measure);
                scenario.grace = agentrack_sim::SimDuration::from_secs(45);
                let cen = run_scheme(&scenario, "centralized", patient(LocationConfig::default()));
                let hash = run_scheme(&scenario, "hashed", patient(LocationConfig::default()));
                vec![
                    res.to_string(),
                    ms_or_dnf(&cen),
                    ms(hash.mean_locate_ms),
                    ms(hash.p95_locate_ms),
                    hash.trackers.to_string(),
                    cen.locates_completed.to_string(),
                    hash.locates_completed.to_string(),
                ]
            }) as Cell
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E3** — split-strategy ablation: the paper's complex-first splitting
/// vs. simple-only, under the Experiment-I workload.
#[must_use]
pub fn ablation_split(fidelity: Fidelity, jobs: usize) -> Table {
    let agents = fidelity.scale_agents(500);
    let (warmup, measure) = fidelity.spans();
    let scenario = Scenario::new("ablation-split")
        .with_agents(agents)
        .with_residence_ms(300)
        .with_queries(fidelity.queries())
        .with_seconds(warmup, measure);
    let mut table = Table::new(
        "E3: split-strategy ablation (complex-first vs simple-only)",
        &[
            "strategy",
            "locate_ms",
            "iagents",
            "splits",
            "merges",
            "tree_height",
            "mean_prefix_bits",
        ],
    );
    let cells: Vec<Cell> = [
        ("complex-first", LocationConfig::default()),
        (
            "simple-only",
            LocationConfig::default().simple_splits_only(),
        ),
    ]
    .into_iter()
    .map(|(label, config)| {
        let scenario = scenario.clone();
        Box::new(move || {
            let report = run_scheme(&scenario, "hashed", config);
            vec![
                label.to_owned(),
                ms(report.mean_locate_ms),
                report.trackers.to_string(),
                report.splits.to_string(),
                report.merges.to_string(),
                report.tree_height.to_string(),
                format!("{:.2}", report.mean_prefix_bits),
            ]
        }) as Cell
    })
    .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E4** — hash-function propagation ablation: the paper's lazy on-demand
/// secondary copies vs. eager push to every LHAgent.
#[must_use]
pub fn ablation_propagation(fidelity: Fidelity, jobs: usize) -> Table {
    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let scenario = Scenario::new("ablation-propagation")
        .with_agents(agents)
        .with_residence_ms(200)
        .with_queries(fidelity.queries())
        .with_seconds(warmup, measure);
    let mut table = Table::new(
        "E4: propagation ablation (lazy on-demand vs eager push)",
        &[
            "propagation",
            "locate_ms",
            "stale_hits",
            "hf_fetches",
            "messages",
        ],
    );
    let cells: Vec<Cell> = [
        ("lazy", LocationConfig::default()),
        ("eager", LocationConfig::default().with_eager_propagation()),
    ]
    .into_iter()
    .map(|(label, config)| {
        let scenario = scenario.clone();
        Box::new(move || {
            let report = run_scheme(&scenario, "hashed", config);
            vec![
                label.to_owned(),
                ms(report.mean_locate_ms),
                report.stale_hits.to_string(),
                report.hf_fetches.to_string(),
                report.messages_sent.to_string(),
            ]
        }) as Cell
    })
    .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E5** — threshold sensitivity: sweep `T_max` (with `T_min = T_max/10`).
#[must_use]
pub fn sweep_thresholds(fidelity: Fidelity, jobs: usize) -> Table {
    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let scenario = Scenario::new("sweep-thresholds")
        .with_agents(agents)
        .with_residence_ms(300)
        .with_queries(fidelity.queries())
        .with_seconds(warmup, measure);
    let mut table = Table::new(
        "E5: T_max sensitivity (T_min = T_max / 10)",
        &[
            "t_max",
            "locate_ms",
            "iagents",
            "splits",
            "merges",
            "denied",
        ],
    );
    let cells: Vec<Cell> = [10.0, 25.0, 50.0, 100.0, 200.0]
        .into_iter()
        .map(|t_max| {
            let scenario = scenario.clone();
            Box::new(move || {
                let config = LocationConfig::default().with_thresholds(t_max, t_max / 10.0);
                let mut scheme = HashedScheme::new(config);
                let report = scenario.run_with(&mut scheme, RunOptions::new()).report;
                let denied = scheme.stats().rehash_denied;
                vec![
                    format!("{t_max}"),
                    ms(report.mean_locate_ms),
                    report.trackers.to_string(),
                    report.splits.to_string(),
                    report.merges.to_string(),
                    denied.to_string(),
                ]
            }) as Cell
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E6** — skewed workloads: Zipf query popularity and Zipf node
/// popularity. The paper balances *workload*, not item counts (its stated
/// contrast with consistent hashing); this shows the load-driven splits
/// coping with skew.
#[must_use]
pub fn skew(fidelity: Fidelity, jobs: usize) -> Table {
    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E6: Zipf skew (query popularity and node popularity)",
        &[
            "skew_s",
            "locate_ms",
            "p95_ms",
            "iagents",
            "splits",
            "failures",
        ],
    );
    let cells: Vec<Cell> = [0.0, 0.5, 0.9, 1.2]
        .into_iter()
        .map(|s| {
            Box::new(move || {
                let mut scenario = Scenario::new(format!("skew-{s}"))
                    .with_agents(agents)
                    .with_residence_ms(300)
                    .with_queries(fidelity.queries())
                    .with_seconds(warmup, measure);
                scenario.query_skew = Some(s);
                scenario.mobility_skew = Some(s);
                let report = run_scheme(&scenario, "hashed", LocationConfig::default());
                vec![
                    format!("{s}"),
                    ms(report.mean_locate_ms),
                    ms(report.p95_locate_ms),
                    report.trackers.to_string(),
                    report.splits.to_string(),
                    report.locate_failures.to_string(),
                ]
            }) as Cell
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E7** — baseline panel: all four schemes under the Experiment-I
/// workload at two populations and under fast mobility.
#[must_use]
pub fn baselines(fidelity: Fidelity, jobs: usize) -> Table {
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E7: baseline panel (mean locate ms; per workload)",
        &[
            "scheme",
            "n200_r500_ms",
            "n500_r500_ms",
            "n200_r100_ms",
            "failures",
        ],
    );
    let workloads = [
        (fidelity.scale_agents(200), 500u64),
        (fidelity.scale_agents(500), 500),
        (fidelity.scale_agents(200), 100),
    ];
    let kinds = ["hashed", "centralized", "home-registry", "forwarding"];
    // Cell grid is scheme × workload (12 cells); rows are reassembled per
    // scheme afterwards, summing the failure counts across workloads.
    let cells: Vec<Cell> = kinds
        .iter()
        .flat_map(|&kind| {
            workloads.into_iter().map(move |(agents, res)| {
                Box::new(move || {
                    let scenario = Scenario::new(format!("baseline-{kind}-{agents}-{res}"))
                        .with_agents(agents)
                        .with_residence_ms(res)
                        .with_queries(fidelity.queries())
                        .with_seconds(warmup, measure);
                    let report = run_scheme(&scenario, kind, patient(LocationConfig::default()));
                    vec![ms_or_dnf(&report), report.locate_failures.to_string()]
                }) as Cell
            })
        })
        .collect();
    let results = run_cells(cells, jobs);
    for (k, kind) in kinds.iter().enumerate() {
        let mut row = vec![(*kind).to_owned()];
        let mut failures: u64 = 0;
        for w in 0..workloads.len() {
            let cell = &results[k * workloads.len() + w];
            row.push(cell[0].clone());
            failures += cell[1].parse::<u64>().expect("failure count");
        }
        row.push(failures.to_string());
        table.push_row(row);
    }
    table
}

/// **E10** — split-planning ablation: the paper's statistics-driven even
/// split vs. a blind `m = 1` split, under a workload where the blind
/// choice is bad: query load Zipf-concentrated on a few agents, so the
/// first bit rarely divides the *load* evenly even when it divides the
/// *population* evenly.
#[must_use]
pub fn ablation_planning(fidelity: Fidelity, jobs: usize) -> Table {
    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E10: split planning (statistics-driven vs blind m=1)",
        &[
            "planner",
            "locate_ms",
            "p95_ms",
            "iagents",
            "splits",
            "denied",
        ],
    );
    let cells: Vec<Cell> = [
        ("even-split", LocationConfig::default()),
        ("blind-m1", LocationConfig::default().with_blind_splits()),
    ]
    .into_iter()
    .map(|(label, config)| {
        Box::new(move || {
            let mut scenario = Scenario::new(format!("planning-{label}"))
                .with_agents(agents)
                .with_residence_ms(300)
                .with_queries(fidelity.queries())
                .with_seconds(warmup, measure);
            scenario.query_skew = Some(1.2);
            let mut scheme = HashedScheme::new(patient(config));
            let report = scenario.run_with(&mut scheme, RunOptions::new()).report;
            let denied = scheme.stats().rehash_denied;
            vec![
                label.to_owned(),
                ms(report.mean_locate_ms),
                ms(report.p95_locate_ms),
                report.trackers.to_string(),
                report.splits.to_string(),
                denied.to_string(),
            ]
        }) as Cell
    })
    .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E8** — population churn: agents die and are replaced throughout the
/// run (the paper's "open system" motivation). Lifespans are exponential;
/// the mean sweeps from heavy churn to none.
#[must_use]
pub fn churn(fidelity: Fidelity, jobs: usize) -> Table {
    use agentrack_sim::{DurationDist, SimDuration};
    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E8: population churn (exponential lifespans)",
        &[
            "mean_lifespan_s",
            "locate_ms",
            "births",
            "deaths",
            "completed",
            "failures",
            "iagents",
        ],
    );
    let cells: Vec<Cell> = [5u64, 15, 60, 0]
        .into_iter()
        .map(|lifespan_s| {
            Box::new(move || {
                let mut scenario = Scenario::new(format!("churn-{lifespan_s}"))
                    .with_agents(agents)
                    .with_residence_ms(300)
                    .with_queries(fidelity.queries())
                    .with_seconds(warmup, measure);
                if lifespan_s > 0 {
                    scenario.churn_lifespan = Some(DurationDist::Exponential {
                        mean: SimDuration::from_secs(lifespan_s),
                    });
                }
                let report = run_scheme(&scenario, "hashed", patient(LocationConfig::default()));
                vec![
                    if lifespan_s == 0 {
                        "static".to_owned()
                    } else {
                        lifespan_s.to_string()
                    },
                    ms(report.mean_locate_ms),
                    report.births.to_string(),
                    report.deaths.to_string(),
                    report.locates_completed.to_string(),
                    report.locate_failures.to_string(),
                    report.trackers.to_string(),
                ]
            }) as Cell
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E9** — locality extension (paper §7): IAgents migrate toward the
/// node that originates most of their traffic. Under skewed mobility the
/// tracked agents cluster, so a mobile IAgent can turn remote update
/// traffic into node-local traffic.
#[must_use]
pub fn locality(fidelity: Fidelity, jobs: usize) -> Table {
    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E9: IAgent locality migration under skewed mobility",
        &[
            "locality",
            "mobility_skew",
            "locate_ms",
            "iagent_moves",
            "remote_msgs",
            "total_msgs",
            "failures",
        ],
    );
    let cells: Vec<Cell> = [2.5f64, 0.0]
        .into_iter()
        .flat_map(|skew| {
            [false, true].into_iter().map(move |enabled| {
                Box::new(move || {
                    let mut scenario = Scenario::new(format!("locality-{enabled}-{skew}"))
                        .with_agents(agents)
                        .with_residence_ms(300)
                        .with_queries(fidelity.queries())
                        .with_seconds(warmup, measure);
                    scenario.mobility_skew = Some(skew);
                    let config = if enabled {
                        patient(LocationConfig::default()).with_locality_migration()
                    } else {
                        patient(LocationConfig::default())
                    };
                    let report = run_scheme(&scenario, "hashed", config);
                    vec![
                        if enabled { "on" } else { "off" }.to_owned(),
                        format!("{skew}"),
                        ms(report.mean_locate_ms),
                        report.iagent_moves.to_string(),
                        report.messages_remote.to_string(),
                        report.messages_sent.to_string(),
                        report.locate_failures.to_string(),
                    ]
                }) as Cell
            })
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E12** — per-tracker observability: the hashed scheme under the
/// Experiment-I workload, reported tracker by tracker from the scheme's
/// [`agentrack_sim::MetricsRegistry`] instead of as aggregates. This is
/// the view an operator needs — which IAgent is saturated, whose mailbox
/// is filling — and the table the determinism gate diffs across thread
/// counts.
///
/// Returns the table plus the registry's JSON export (rehash counts per
/// version and the locate-latency summary included).
#[must_use]
pub fn trackers_registry(fidelity: Fidelity) -> (Table, String) {
    let agents = fidelity.scale_agents(500);
    let (warmup, measure) = fidelity.spans();
    let mut scenario = Scenario::new("trackers")
        .with_agents(agents)
        .with_residence_ms(300)
        .with_queries(fidelity.queries())
        .with_seconds(warmup, measure);
    scenario.grace = agentrack_sim::SimDuration::from_secs(45);
    let mut scheme = HashedScheme::new(patient(LocationConfig::default()));
    let report = scenario.run_with(&mut scheme, RunOptions::new()).report;
    let snapshot = scheme.registry().snapshot();
    let mut table = Table::new(
        format!(
            "E12: per-tracker metrics (hashed, {} agents, locate p95 {:.2} ms)",
            report.agents, snapshot.locate_latency.p95_ms
        ),
        &[
            "tracker",
            "requests",
            "rate_per_sec",
            "queue_peak",
            "mailbox_peak",
            "records_held",
            "mail_buffered",
            "mail_flushed",
            "mail_lost",
        ],
    );
    for (id, t) in &snapshot.trackers {
        table.push_row(vec![
            id.to_string(),
            t.requests.to_string(),
            format!("{:.3}", t.rate_per_sec),
            t.queue_depth_peak.to_string(),
            t.mailbox_occupancy_peak.to_string(),
            t.records_held.to_string(),
            t.mail_buffered.to_string(),
            t.mail_flushed.to_string(),
            t.mail_lost.to_string(),
        ]);
    }
    (table, snapshot.to_json())
}

/// **E13** — fault injection: locate success rate and tail latency for
/// all four schemes as randomized chaos (partitions, tracker crashes and
/// restarts, latency spikes, loss bursts, blackholes) rises from none to
/// full intensity. Every cell runs the post-quiesce invariant audit; the
/// `violations` column counts what it found (0 = the scheme recovered
/// everything the fault model allows it to).
#[must_use]
pub fn chaos(fidelity: Fidelity, jobs: usize) -> Table {
    use agentrack_sim::{ChaosConfig, SimDuration};
    let agents = fidelity.scale_agents(200);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E13: locate success and tail latency under randomized faults",
        &[
            "intensity",
            "scheme",
            "issued",
            "completed",
            "success_pct",
            "p95_ms",
            "mail_lost",
            "violations",
        ],
    );
    let cells: Vec<Cell> = [0.0f64, 0.3, 0.6, 1.0]
        .into_iter()
        .flat_map(|intensity| {
            ["hashed", "centralized", "home-registry", "forwarding"]
                .into_iter()
                .map(move |kind| {
                    Box::new(move || {
                        let mut scenario = Scenario::new(format!("chaos-{kind}-{intensity}"))
                            .with_agents(agents)
                            .with_residence_ms(400)
                            .with_queries(fidelity.queries())
                            .with_seconds(warmup, measure);
                        if intensity > 0.0 {
                            scenario.faults = ChaosConfig {
                                seed: 0xC4A0_5EED,
                                intensity,
                            }
                            .generate(scenario.nodes, scenario.duration());
                        }
                        // The audit lets stale hash-function copies
                        // converge after heal, making the strict version
                        // check sound for the hashed scheme.
                        let config = patient(LocationConfig::default())
                            .with_version_audit(SimDuration::from_secs(1));
                        let (report, invariants) =
                            run_chaos_scheme(&scenario, kind, config, kind == "hashed");
                        let success = if report.locates_issued == 0 {
                            100.0
                        } else {
                            100.0 * report.locates_completed as f64 / report.locates_issued as f64
                        };
                        vec![
                            format!("{intensity:.1}"),
                            kind.to_owned(),
                            report.locates_issued.to_string(),
                            report.locates_completed.to_string(),
                            format!("{success:.1}"),
                            ms(report.p95_locate_ms),
                            report.mail_lost.to_string(),
                            invariants.violations.len().to_string(),
                        ]
                    }) as Cell
                })
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

fn run_chaos_scheme(
    scenario: &Scenario,
    kind: &str,
    config: LocationConfig,
    strict_versions: bool,
) -> (ScenarioReport, agentrack_workload::InvariantReport) {
    let mut scheme = boxed_scheme(kind, config, false);
    let out = scenario.run_with(
        scheme.as_mut(),
        RunOptions::new().with_audit(AuditOptions { strict_versions }),
    );
    (out.report, out.invariants.expect("audit was requested"))
}

/// **E14** — critical-path latency attribution: where a locate's
/// end-to-end time actually goes, for all four schemes, calm and under
/// chaos. Each cell runs observed (a [`agentrack_sim::TraceSink`] on the
/// platform), folds the record stream into span trees, and reports the
/// per-phase mean milliseconds. Because child spans partition each root
/// window, the phase columns sum to `mean_ms` exactly — unattributed
/// time can only appear in `other_ms`, never vanish.
///
/// Returns the table plus two deterministic exports from the calm hashed
/// cell: Chrome/Perfetto trace-event JSON of the slowest locates and
/// folded-stack flamegraph text over every traced locate.
#[must_use]
pub fn attribution(fidelity: Fidelity, jobs: usize) -> (Table, String, String) {
    use agentrack_sim::{ChaosConfig, SimDuration, TraceSink};
    use agentrack_trace_analysis::{build_spans, to_folded, to_perfetto_json, Attribution, Phase};

    let agents = fidelity.scale_agents(200);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E14: critical-path latency attribution (phase columns sum to mean_ms)",
        &[
            "intensity",
            "scheme",
            "traced",
            "mean_ms",
            "resolution_ms",
            "tracker_ms",
            "chain_ms",
            "answer_ms",
            "stale_ms",
            "queue_ms",
            "retry_ms",
            "other_ms",
            "trace_dropped",
        ],
    );
    // The calm hashed cell doubles as the export source; one slot, one
    // writer, so parallel cell order cannot affect the output bytes.
    let exports = std::sync::Arc::new(Mutex::new(None::<(String, String)>));
    let cells: Vec<Cell> = [0.0f64, 0.6]
        .into_iter()
        .flat_map(|intensity| {
            let exports = std::sync::Arc::clone(&exports);
            ["hashed", "centralized", "home-registry", "forwarding"]
                .into_iter()
                .map(move |kind| {
                    let exports = std::sync::Arc::clone(&exports);
                    Box::new(move || {
                        let mut scenario = Scenario::new(format!("attribution-{kind}-{intensity}"))
                            .with_agents(agents)
                            .with_residence_ms(400)
                            .with_queries(fidelity.queries())
                            .with_seconds(warmup, measure);
                        if intensity > 0.0 {
                            scenario.faults = ChaosConfig {
                                seed: 0xC4A0_5EED,
                                intensity,
                            }
                            .generate(scenario.nodes, scenario.duration());
                        }
                        let config = patient(LocationConfig::default())
                            .with_version_audit(SimDuration::from_secs(1));
                        let sink = TraceSink::bounded(262_144);
                        let report = run_observed_scheme(&scenario, kind, config, sink.clone());
                        let trees: Vec<_> = build_spans(&sink.snapshot())
                            .into_iter()
                            .filter(|t| !t.duration().is_zero())
                            .collect();
                        let mut attr = Attribution::new();
                        for tree in &trees {
                            attr.record(&tree.breakdown());
                        }
                        if kind == "hashed" && intensity == 0.0 {
                            let mut slowest_first = trees.clone();
                            slowest_first
                                .sort_by_key(|t| (std::cmp::Reverse(t.duration()), t.corr));
                            slowest_first.truncate(8);
                            *exports.lock().expect("exports slot poisoned") =
                                Some((to_perfetto_json(&slowest_first), to_folded(&trees, kind)));
                        }
                        let phase_ms = |p: Phase| -> String { format!("{:.3}", attr.mean_ms(p)) };
                        vec![
                            format!("{intensity:.1}"),
                            kind.to_owned(),
                            attr.count().to_string(),
                            format!("{:.3}", attr.mean_total_ms()),
                            phase_ms(Phase::Resolution),
                            phase_ms(Phase::TrackerQuery),
                            phase_ms(Phase::ChainTraversal),
                            phase_ms(Phase::Answer),
                            phase_ms(Phase::StaleDetour),
                            phase_ms(Phase::QueueWait),
                            phase_ms(Phase::RetryBackoff),
                            phase_ms(Phase::Other),
                            report.trace_dropped.to_string(),
                        ]
                    }) as Cell
                })
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    let (perfetto, folded) = exports
        .lock()
        .expect("exports slot poisoned")
        .take()
        .expect("calm hashed cell always runs");
    (table, perfetto, folded)
}

fn run_observed_scheme(
    scenario: &Scenario,
    kind: &str,
    config: LocationConfig,
    sink: agentrack_sim::TraceSink,
) -> ScenarioReport {
    let mut scheme = boxed_scheme(kind, config, false);
    scenario
        .run_with(scheme.as_mut(), RunOptions::new().with_sink(sink))
        .report
}

/// **E15** — record durability and recovery: two nodes crash with
/// soft-state loss and restart half a second later, wiping the records of
/// every tracker they hosted. The sweep crosses the crash time (early in
/// the run, while the tree is still splitting, vs. late in steady state)
/// with the hashed scheme's replication interval — `off` is the ablation,
/// recovery by client re-registration only — and runs the centralized and
/// home-registry baselines under the identical plan for contrast.
///
/// Recovery times are measured from the trace: each
/// [`agentrack_sim::TraceEvent::RecoveryStart`] is paired with the same
/// tracker's `RecoveryEnd`, and the p50/p95 of those spans reported.
/// `stale_answers` counts the degraded-mode `Located{stale}` answers
/// served while converging — availability the ablation does not have.
/// Every cell runs the post-quiesce invariant audit (locatability,
/// version convergence, single ownership, recovery convergence).
#[must_use]
pub fn recovery(fidelity: Fidelity, jobs: usize) -> Table {
    use agentrack_sim::{
        FaultEvent, FaultKind, FaultPlan, NodeId, SimDuration, SimTime, TraceEvent, TraceSink,
    };
    use std::collections::HashMap;

    let agents = fidelity.scale_agents(200);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E15: recovery after tracker crashes with soft-state loss",
        &[
            "crash_frac",
            "repl",
            "scheme",
            "recoveries",
            "rec_p50_ms",
            "rec_p95_ms",
            "stale_answers",
            "record_syncs",
            "success_pct",
            "mail_lost",
            "violations",
        ],
    );
    // (scheme, replication interval in ms): `None` on a hashed row is the
    // durability-off ablation; the baselines have no replication at all.
    let variants: [(&str, Option<u64>); 5] = [
        ("hashed", None),
        ("hashed", Some(250)),
        ("hashed", Some(1000)),
        ("centralized", None),
        ("home-registry", None),
    ];
    let cells: Vec<Cell> = [0.35f64, 0.65]
        .into_iter()
        .flat_map(|crash_frac| {
            variants.into_iter().map(move |(kind, repl_ms)| {
                Box::new(move || {
                    let repl_label = repl_ms.map_or_else(|| "off".to_owned(), |v| format!("{v}ms"));
                    let mut scenario =
                        Scenario::new(format!("recovery-{kind}-{repl_label}-{crash_frac}"))
                            .with_agents(agents)
                            .with_residence_ms(400)
                            .with_queries(fidelity.queries())
                            .with_seconds(warmup, measure);
                    // Crash two nodes at once — with the population spread
                    // round-robin and the tree split by then, both the
                    // initial tracker's node and a split target go down —
                    // and restart them 500 ms later with soft state gone.
                    let crash_at = SimTime::ZERO + scenario.duration().mul_f64(crash_frac);
                    let restart_at = crash_at + SimDuration::from_millis(500);
                    let mut plan = FaultPlan::new();
                    for node in 0..2u32 {
                        plan.push(FaultEvent {
                            at: crash_at,
                            kind: FaultKind::NodeCrash {
                                node: NodeId::new(node),
                                lose_soft_state: true,
                                restart_at: Some(restart_at),
                            },
                        });
                    }
                    scenario.faults = plan;
                    let mut config = patient(LocationConfig::default())
                        .with_version_audit(SimDuration::from_secs(1));
                    if let Some(v) = repl_ms {
                        config = config.with_replication(SimDuration::from_millis(v));
                    }
                    let sink = TraceSink::bounded(524_288);
                    let mut scheme = boxed_scheme(kind, config, kind == "hashed");
                    let out = scenario.run_with(
                        scheme.as_mut(),
                        RunOptions::new()
                            .with_sink(sink.clone())
                            .with_audit(AuditOptions {
                                strict_versions: kind == "hashed",
                            }),
                    );
                    let (report, invariants) =
                        (out.report, out.invariants.expect("audit was requested"));
                    // Pair RecoveryStart/RecoveryEnd per tracker into spans.
                    let mut open: HashMap<u64, SimTime> = HashMap::new();
                    let mut spans_ms: Vec<f64> = Vec::new();
                    for record in sink.snapshot() {
                        match record.event {
                            TraceEvent::RecoveryStart { tracker } => {
                                open.insert(tracker, record.at);
                            }
                            TraceEvent::RecoveryEnd { tracker, .. } => {
                                if let Some(started) = open.remove(&tracker) {
                                    spans_ms
                                        .push(record.at.saturating_since(started).as_millis_f64());
                                }
                            }
                            _ => {}
                        }
                    }
                    spans_ms.sort_by(f64::total_cmp);
                    let pct = |p: f64| -> f64 {
                        if spans_ms.is_empty() {
                            return 0.0;
                        }
                        let idx = ((p / 100.0) * (spans_ms.len() - 1) as f64).round() as usize;
                        spans_ms[idx]
                    };
                    let success = if report.locates_issued == 0 {
                        100.0
                    } else {
                        100.0 * report.locates_completed as f64 / report.locates_issued as f64
                    };
                    vec![
                        format!("{crash_frac:.2}"),
                        repl_label,
                        kind.to_owned(),
                        report.recoveries_completed.to_string(),
                        ms(pct(50.0)),
                        ms(pct(95.0)),
                        report.stale_answers.to_string(),
                        report.record_syncs.to_string(),
                        format!("{success:.1}"),
                        report.mail_lost.to_string(),
                        invariants.violations.len().to_string(),
                    ]
                }) as Cell
            })
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// **E17** — flash-crowd adaptation: a 100× query-rate spike hits shortly
/// after the measured window opens, and the directory must scale out fast
/// enough to absorb it. The sweep crosses the rehash pipeline width —
/// `rehash_concurrency = 1` is the single-flight ablation, the paper's
/// serial protocol — and reports:
///
/// * `reconverge_ms` — time from spike start to the *last* committed
///   split: how long the scale-out cascade takes to finish. The serial
///   pipeline commits one rehash per commit-plus-cooldown period, so its
///   cascade is still running when the spike ends; the pipelined arms
///   split every overloaded subtree concurrently and converge early.
/// * `p99_ms` — the locate tail the spike creates while trackers are
///   saturated (the longer the scale-out, the deeper the queues).
/// * `denied` — rehash requests bounced (`Busy`/`Cooldown`): the denial
///   traffic the serial pipeline generates by serialising disjoint work.
///
/// Every cell runs the post-quiesce invariant audit (locatability,
/// strict version convergence under a 1 s audit, single ownership).
#[must_use]
pub fn rehash_spike(fidelity: Fidelity, jobs: usize) -> Table {
    use agentrack_sim::{SimTime, TraceEvent, TraceSink};
    use agentrack_workload::QuerySpike;

    let agents = fidelity.scale_agents(300);
    let (warmup, measure) = fidelity.spans();
    let mut table = Table::new(
        "E17: 100x flash-crowd spike vs. rehash pipeline width",
        &[
            "concurrency",
            "splits",
            "merges",
            "denied",
            "reconverge_ms",
            "p50_ms",
            "p99_ms",
            "success_pct",
            "peak_trackers",
            "violations",
        ],
    );
    let cells: Vec<Cell> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|concurrency| {
            Box::new(move || {
                let mut scenario = Scenario::new(format!("rehash-spike-c{concurrency}"))
                    .with_agents(agents)
                    .with_residence_ms(400)
                    .with_queries(fidelity.queries())
                    .with_seconds(warmup, measure);
                // 100× the steady query rate, sustained for a fifth of the
                // measurement span: the same per-second rate would take the
                // whole span to issue 20× the steady budget.
                let spike_at = scenario.warmup + scenario.measure.mul_f64(0.2);
                let spike_span = scenario.measure.mul_f64(0.2);
                let spike = QuerySpike {
                    at: spike_at,
                    span: spike_span,
                    queries: scenario.queries_total * 20,
                    queriers: 64,
                };
                scenario = scenario.with_spike(spike);
                let config = patient(LocationConfig::default())
                    .with_rehash_concurrency(concurrency)
                    .with_version_audit(agentrack_sim::SimDuration::from_secs(1));
                let sink = TraceSink::bounded(1_048_576);
                let mut scheme = HashedScheme::new(config);
                let out = scenario.run_with(
                    &mut scheme,
                    RunOptions::new()
                        .with_sink(sink.clone())
                        .with_audit(AuditOptions {
                            strict_versions: true,
                        }),
                );
                let (report, invariants) =
                    (out.report, out.invariants.expect("audit was requested"));
                let denied = scheme.stats().rehash_denied;
                let spike_start = SimTime::ZERO + spike_at;
                let reconverge = sink
                    .snapshot()
                    .iter()
                    .filter(|r| {
                        matches!(r.event, TraceEvent::RehashSplit { .. }) && r.at >= spike_start
                    })
                    .map(|r| r.at)
                    .max()
                    .map(|at| at.saturating_since(spike_start).as_millis_f64());
                vec![
                    concurrency.to_string(),
                    report.splits.to_string(),
                    report.merges.to_string(),
                    denied.to_string(),
                    reconverge.map_or_else(|| "dnf".to_owned(), ms),
                    ms(report.p50_locate_ms),
                    ms(report.p99_locate_ms),
                    format!("{:.1}", 100.0 * report.completion_ratio()),
                    report.peak_trackers.to_string(),
                    invariants.violations.len().to_string(),
                ]
            }) as Cell
        })
        .collect();
    table.rows = run_cells(cells, jobs);
    table
}

/// All experiment names accepted by the `repro` binary, in order.
pub const EXPERIMENTS: &[&str] = &[
    "exp1",
    "exp2",
    "ablation-split",
    "ablation-propagation",
    "sweep-thresholds",
    "skew",
    "baselines",
    "churn",
    "locality",
    "ablation-planning",
    "delivery",
    "trackers",
    "chaos",
    "attribution",
    "recovery",
    "rehash-spike",
];

/// Dispatches an experiment by name.
///
/// # Panics
///
/// Panics if the name is unknown (the binary validates first).
#[must_use]
pub fn run_experiment(name: &str, fidelity: Fidelity, jobs: usize) -> Table {
    match name {
        "exp1" => exp1(fidelity, jobs),
        "exp2" => exp2(fidelity, jobs),
        "ablation-split" => ablation_split(fidelity, jobs),
        "ablation-propagation" => ablation_propagation(fidelity, jobs),
        "sweep-thresholds" => sweep_thresholds(fidelity, jobs),
        "skew" => skew(fidelity, jobs),
        "baselines" => baselines(fidelity, jobs),
        "churn" => churn(fidelity, jobs),
        "locality" => locality(fidelity, jobs),
        "ablation-planning" => ablation_planning(fidelity, jobs),
        "delivery" => delivery(fidelity, jobs),
        "trackers" => trackers_registry(fidelity).0,
        "chaos" => chaos(fidelity, jobs),
        "attribution" => attribution(fidelity, jobs).0,
        "recovery" => recovery(fidelity, jobs),
        "rehash-spike" => rehash_spike(fidelity, jobs),
        other => panic!("unknown experiment {other}"),
    }
}

/// Diagnostic deep-dive on the heaviest Experiment-I point (not part of the
/// recorded tables; used to understand tail latencies).
#[must_use]
pub fn diagnose(fidelity: Fidelity) -> Table {
    let (warmup, measure) = fidelity.spans();
    let mut scenario = Scenario::new("diagnose-1000")
        .with_agents(fidelity.scale_agents(1000))
        .with_residence_ms(500)
        .with_queries(fidelity.queries())
        .with_seconds(warmup, measure);
    scenario.grace = agentrack_sim::SimDuration::from_secs(45);
    let report = run_scheme(&scenario, "hashed", patient(LocationConfig::default()));
    let mut table = Table::new(
        "diagnose: hashed at the heaviest point",
        &["metric", "value"],
    );
    for (k, v) in [
        ("mean_ms", format!("{:.2}", report.mean_locate_ms)),
        ("p50_ms", format!("{:.2}", report.p50_locate_ms)),
        ("p95_ms", format!("{:.2}", report.p95_locate_ms)),
        ("max_ms", format!("{:.2}", report.max_locate_ms)),
        ("completed", report.locates_completed.to_string()),
        ("failures", report.locate_failures.to_string()),
        ("registrations", report.registrations.to_string()),
        ("splits", report.splits.to_string()),
        ("merges", report.merges.to_string()),
        ("iagents", report.trackers.to_string()),
        ("stale_hits", report.stale_hits.to_string()),
        ("hf_fetches", report.hf_fetches.to_string()),
        ("handoffs", report.records_handed_off.to_string()),
        ("msgs_failed", report.messages_failed.to_string()),
    ] {
        table.push_row(vec![k.to_owned(), v]);
    }
    table
}

/// **E11** — guaranteed delivery (paper §6 open problem): success rate of
/// messaging a constantly moving agent, naive locate-then-send vs.
/// tracker-mediated `send_via`, across mobility rates.
#[must_use]
pub fn delivery(fidelity: Fidelity, jobs: usize) -> Table {
    use agentrack_core::{ClientEvent, DirectoryClient};
    use agentrack_platform::{
        Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform, TimerId,
    };
    use agentrack_sim::{DurationDist, SimDuration, Topology};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const NODES: u32 = 6;

    struct Mover {
        client: Box<dyn DirectoryClient>,
        residence: SimDuration,
        received: Arc<AtomicU64>,
    }
    impl Agent for Mover {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            self.client.register(ctx);
            ctx.set_timer(self.residence);
        }
        fn on_arrival(&mut self, ctx: &mut AgentCtx<'_>) {
            self.client.moved(ctx);
            ctx.set_timer(self.residence);
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
            if self.client.on_timer(ctx, timer) == ClientEvent::NotMine {
                let next = NodeId::new((ctx.node().raw() + 1) % NODES);
                ctx.dispatch(next);
            }
        }
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
            match self.client.on_message(ctx, from, payload) {
                ClientEvent::Mail { .. } => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                }
                ClientEvent::NotMine if payload.decode::<String>().is_ok() => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        fn on_delivery_failed(
            &mut self,
            ctx: &mut AgentCtx<'_>,
            to: AgentId,
            node: NodeId,
            payload: &Payload,
        ) {
            let _ = self.client.on_delivery_failed(ctx, to, node, payload);
        }
    }

    struct Poster {
        client: Box<dyn DirectoryClient>,
        target: AgentId,
        mediated: bool,
        remaining: u32,
        token: u64,
        tick: Option<TimerId>,
    }
    impl Agent for Poster {
        fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
            self.tick = Some(ctx.set_timer(SimDuration::from_millis(40)));
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, timer: TimerId) {
            if self.tick == Some(timer) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    if self.mediated {
                        self.client.send_via(ctx, self.target, vec![1]);
                    } else {
                        self.token += 1;
                        self.client.locate(ctx, self.target, self.token);
                    }
                    self.tick = Some(ctx.set_timer(SimDuration::from_millis(40)));
                }
                return;
            }
            let _ = self.client.on_timer(ctx, timer);
        }
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
            if let ClientEvent::Located { target, node, .. } =
                self.client.on_message(ctx, from, payload)
            {
                ctx.send(target, node, Payload::encode(&"direct".to_owned()));
            }
        }
        fn on_delivery_failed(
            &mut self,
            ctx: &mut AgentCtx<'_>,
            to: AgentId,
            node: NodeId,
            payload: &Payload,
        ) {
            let _ = self.client.on_delivery_failed(ctx, to, node, payload);
        }
    }

    let count: u32 = match fidelity {
        Fidelity::Full => 200,
        Fidelity::Quick => 50,
    };
    let mut table = Table::new(
        "E11: delivery to a constantly moving agent (success %, N msgs)",
        &["residence_ms", "locate_then_send", "send_via"],
    );
    let residences = [20u64, 50, 200];
    // Cell grid is residence × {locate-then-send, send_via} (6 cells);
    // rows are reassembled per residence afterwards.
    let cells: Vec<Cell> = residences
        .into_iter()
        .flat_map(|residence_ms| {
            [false, true].into_iter().map(move |mediated| {
                Box::new(move || {
                    let topology =
                        Topology::lan(NODES, DurationDist::Constant(SimDuration::from_micros(300)));
                    let mut platform =
                        SimPlatform::new(topology, PlatformConfig::default().with_seed(33));
                    let mut scheme = HashedScheme::new(LocationConfig::default());
                    scheme.bootstrap(&mut platform);
                    let received = Arc::new(AtomicU64::new(0));
                    let mover = platform.spawn(
                        Box::new(Mover {
                            client: scheme.make_client(),
                            residence: SimDuration::from_millis(residence_ms),
                            received: received.clone(),
                        }),
                        NodeId::new(1),
                    );
                    platform.spawn(
                        Box::new(Poster {
                            client: scheme.make_client(),
                            target: mover,
                            mediated,
                            remaining: count,
                            token: 0,
                            tick: None,
                        }),
                        NodeId::new(0),
                    );
                    platform.run_for(SimDuration::from_secs_f64(0.04 * f64::from(count) + 15.0));
                    let got = received.load(Ordering::Relaxed);
                    vec![format!("{:.1}%", 100.0 * got as f64 / f64::from(count))]
                }) as Cell
            })
        })
        .collect();
    let results = run_cells(cells, jobs);
    for (r, residence_ms) in residences.into_iter().enumerate() {
        table.push_row(vec![
            residence_ms.to_string(),
            results[r * 2][0].clone(),
            results[r * 2 + 1][0].clone(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_and_csvs() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("a  bb"));
        assert_eq!(t.to_csv(), "a,bb\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
