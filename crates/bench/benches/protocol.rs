//! Micro-benchmarks of the protocol layer: message marshalling, hash-key
//! derivation, hash-function resolution, and split planning.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use agentrack_core::{key_of, plan_split, HashFunction, LocationConfig, Wire};
use agentrack_hashtree::{IAgentId, Side, SplitKind};
use agentrack_platform::{AgentId, NodeId};

fn bench_key_of(c: &mut Criterion) {
    c.bench_function("protocol/key_of", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(key_of(AgentId::new(i)))
        });
    });
}

/// Builds a hash function with `n` IAgents split evenly.
fn hash_function_with(n: usize) -> HashFunction {
    let mut hf = HashFunction::initial(AgentId::new(0), NodeId::new(0));
    let mut next = 1000u64;
    while hf.tree.iagent_count() < n {
        let target = hf.tree.lookup(key_of(AgentId::new(next * 77)));
        let cand = hf
            .tree
            .split_candidates(target)
            .unwrap()
            .into_iter()
            .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
            .unwrap();
        hf.tree
            .apply_split(&cand, IAgentId::new(next), Side::Right)
            .unwrap();
        hf.locations
            .insert(IAgentId::new(next), NodeId::new((next % 16) as u32));
        hf.version += 1;
        next += 1;
    }
    // The tree was grown by direct mutation, which leaves the compiled
    // directory stale; recompile so `resolve` benches the production fast
    // path (an HAgent refreshes incrementally after every rehash).
    hf.recompile();
    hf
}

fn bench_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/resolve");
    for n in [1usize, 16, 128] {
        let hf = hash_function_with(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &hf, |b, hf| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(hf.resolve(AgentId::new(i)))
            });
        });
    }
    group.finish();
}

fn bench_wire_round_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/wire");
    let small = Wire::Locate {
        target: AgentId::new(42),
        token: 7,
        reply_node: NodeId::new(3),
        corr: None,
        freshness: agentrack_core::Freshness::Any,
    };
    let hf = hash_function_with(64);
    let large = Wire::InstallHashFn { hf };

    group.bench_function("encode_locate", |b| {
        b.iter(|| black_box(small.payload()));
    });
    let p = small.payload();
    group.bench_function("decode_locate", |b| {
        b.iter(|| black_box(Wire::from_payload(&p).unwrap()));
    });
    group.bench_function("encode_install_64_iagents", |b| {
        b.iter(|| black_box(large.payload()));
    });
    let p = large.payload();
    group.bench_function("decode_install_64_iagents", |b| {
        b.iter(|| black_box(Wire::from_payload(&p).unwrap()));
    });
    group.finish();
}

fn bench_plan_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/plan_split");
    let config = LocationConfig::default();
    for agents in [10usize, 100, 1000] {
        let hf = hash_function_with(8);
        let leaf = hf.tree.iagents().next().unwrap();
        let loads: Vec<(AgentId, u64)> = (0..agents as u64)
            .map(|i| (AgentId::new(i), 1 + i % 7))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(agents),
            &(hf, loads),
            |b, (hf, loads)| {
                b.iter(|| black_box(plan_split(&hf.tree, leaf, loads, &config)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_key_of,
    bench_resolve,
    bench_wire_round_trips,
    bench_plan_split
);
criterion_main!(benches);
