//! Compiled-directory benchmarks: the O(1) flat dispatch table vs. the
//! per-bit tree walk, and the cost of keeping the table fresh across
//! rehashes.
//!
//! Unlike the other benches this one has a custom `main`: besides printing
//! the usual criterion lines it writes `BENCH_lookup.json` at the
//! workspace root with the raw medians and the derived walk/compiled
//! speedups, so `README.md` and `DESIGN.md` can cite reproducible numbers.
//!
//! Two tree shapes are measured:
//!
//! * **balanced** — every leaf at depth `h` (`2^h` IAgents): every lookup
//!   walks the full height, the average-case shape of a uniformly loaded
//!   system.
//! * **chain** — one path of length `h` (`h + 1` IAgents): the skewed
//!   shape load-correlated splitting produces when traffic concentrates on
//!   one key region.

use std::fmt::Write as _;

use criterion::{black_box, Criterion};

use agentrack_hashtree::{AgentKey, CompiledDirectory, HashTree, IAgentId, Side, SplitKind};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Splits every leaf once per level: a perfectly balanced tree of height
/// `h` with `2^h` leaves.
fn balanced_tree(h: usize) -> HashTree {
    let mut tree = HashTree::new(IAgentId::new(0));
    let mut next = 1u64;
    for _ in 0..h {
        let leaves: Vec<IAgentId> = tree.iagents().collect();
        for ia in leaves {
            let cand = first_simple(&tree, ia);
            tree.apply_split(&cand, IAgentId::new(next), Side::Right)
                .expect("balanced split");
            next += 1;
        }
    }
    tree
}

/// Repeatedly splits the leaf serving the all-ones key: a chain of depth
/// `h` with `h + 1` leaves.
fn chain_tree(h: usize) -> HashTree {
    let mut tree = HashTree::new(IAgentId::new(0));
    for i in 0..h {
        let deep = tree.lookup(AgentKey::new(u64::MAX));
        let cand = first_simple(&tree, deep);
        tree.apply_split(&cand, IAgentId::new(1000 + i as u64), Side::Right)
            .expect("chain split");
    }
    tree
}

fn first_simple(tree: &HashTree, ia: IAgentId) -> agentrack_hashtree::SplitCandidate {
    tree.split_candidates(ia)
        .expect("split candidates")
        .into_iter()
        .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
        .expect("simple m=1 candidate")
}

/// A cycling key set: uniform random for the balanced shape (every key
/// walks the full height anyway), one witness key per leaf for the chain
/// (so the walk exercises every depth, not just the shallow prefix).
fn keys_for(tree: &HashTree, uniform: bool) -> Vec<AgentKey> {
    if uniform {
        let mut rng = StdRng::seed_from_u64(7);
        (0..1024).map(|_| AgentKey::new(rng.gen())).collect()
    } else {
        tree.mapping()
            .into_iter()
            .map(|(_, hl)| {
                // A key compatible with the leaf: its valid bits at their
                // positions, zeros elsewhere.
                let mut raw = 0u64;
                let mut cursor = hl.prefix_skip().len();
                for label in hl.labels() {
                    if label.valid_bit() {
                        raw |= 1u64 << (63 - cursor);
                    }
                    cursor += label.len();
                }
                AgentKey::new(raw)
            })
            .collect()
    }
}

fn bench_lookup(c: &mut Criterion, shape: &str, heights: &[usize], make: fn(usize) -> HashTree) {
    let mut group = c.benchmark_group(&format!("compiled/lookup_{shape}"));
    for &h in heights {
        let tree = make(h);
        let dir = CompiledDirectory::build(&tree);
        assert!(dir.is_current(&tree), "bench directory must be compiled");
        let keys = keys_for(&tree, shape == "balanced");
        let n = keys.len();

        let mut i = 0usize;
        group.bench_function(format!("walk/{h}"), |b| {
            b.iter(|| {
                i = (i + 1) % n;
                black_box(tree.lookup(keys[i]))
            });
        });
        let mut i = 0usize;
        group.bench_function(format!("compiled/{h}"), |b| {
            b.iter(|| {
                i = (i + 1) % n;
                black_box(dir.lookup(keys[i]).expect("compiled lookup"))
            });
        });
    }
    group.finish();
}

/// Rebuild costs: a full `build` versus the incremental `refresh` an
/// HAgent performs after one split + one merge (the table is pre-grown so
/// the split does not force a depth change).
fn bench_rebuild(c: &mut Criterion, heights: &[usize]) {
    let mut group = c.benchmark_group("compiled/rebuild");
    for &h in heights {
        let tree = balanced_tree(h);
        group.bench_function(format!("full/{h}"), |b| {
            b.iter(|| black_box(CompiledDirectory::build(&tree)));
        });

        let mut tree = tree;
        let mut dir = CompiledDirectory::build(&tree);
        let victim = tree.lookup(AgentKey::new(0));
        let extra = IAgentId::new(999_999);
        // Pre-grow the table past depth h so the measured refreshes are
        // purely incremental (the first split to h + 1 would otherwise
        // trigger a one-off full rebuild inside the loop).
        let cand = first_simple(&tree, victim);
        tree.apply_split(&cand, extra, Side::Right)
            .expect("warmup split");
        dir.refresh(&tree, &[victim, extra]);
        let merged = tree.apply_merge(extra).expect("warmup merge");
        dir.refresh(&tree, &merged.absorbers);

        group.bench_function(format!("split_merge_refresh/{h}"), |b| {
            b.iter(|| {
                // First candidate in the paper's order: after the merge the
                // victim carries an unused bit, so this is the complex
                // split promoting it back — a stable split/merge cycle.
                let cand = tree
                    .split_candidates(victim)
                    .expect("split candidates")
                    .into_iter()
                    .next()
                    .expect("some split candidate");
                let applied = tree
                    .apply_split(&cand, extra, Side::Right)
                    .expect("bench split");
                let mut involved = applied.affected;
                involved.push(extra);
                dir.refresh(&tree, &involved);
                let merged = tree.apply_merge(extra).expect("bench merge");
                dir.refresh(&tree, &merged.absorbers);
            });
        });
    }
    group.finish();
}

fn find(results: &[criterion::BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("missing bench result {id}"))
        .ns_per_iter
}

/// Writes `BENCH_lookup.json` at the workspace root: raw medians plus the
/// walk/compiled speedup per (shape, height).
fn export(c: &Criterion, shapes: &[(&str, &[usize])]) {
    let results = c.results();
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"compiled directory vs tree-walk lookup\",\n");
    out.push_str(
        "  \"command\": \"cargo bench -p agentrack-bench --bench compiled\",\n  \"speedups\": [\n",
    );
    let mut first = true;
    for &(shape, heights) in shapes {
        for &h in heights {
            let walk = find(results, &format!("compiled/lookup_{shape}/walk/{h}"));
            let fast = find(results, &format!("compiled/lookup_{shape}/compiled/{h}"));
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"shape\": \"{shape}\", \"height\": {h}, \"walk_ns\": {walk:.2}, \
                 \"compiled_ns\": {fast:.2}, \"speedup\": {:.2}}}",
                walk / fast
            );
        }
    }
    out.push_str("\n  ],\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.2}}}",
            r.id, r.ns_per_iter
        );
    }
    out.push_str("\n  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lookup.json");
    std::fs::write(path, out).expect("write BENCH_lookup.json");
    println!("wrote {path}");
}

fn main() {
    const BALANCED: &[usize] = &[4, 8, 12, 16];
    const CHAIN: &[usize] = &[8, 16, 24];
    let mut c = Criterion::default();
    bench_lookup(&mut c, "balanced", BALANCED, balanced_tree);
    bench_lookup(&mut c, "chain", CHAIN, chain_tree);
    bench_rebuild(&mut c, &[8, 12, 16]);
    export(&c, &[("balanced", BALANCED), ("chain", CHAIN)]);
}
