//! Micro-benchmarks of the hash tree: the data structure on every
//! resolve/update/locate path.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agentrack_hashtree::{AgentKey, HashTree, IAgentId, Side, SplitKind};

/// Builds a tree with `leaves` IAgents by repeatedly splitting the leaf a
/// random key lands in (approximating the shape load-driven splitting
/// produces).
fn tree_with(leaves: usize, rng: &mut StdRng) -> HashTree {
    let mut tree = HashTree::new(IAgentId::new(0));
    let mut next = 1u64;
    while tree.iagent_count() < leaves {
        let key = AgentKey::from_sequential(rng.gen());
        let target = tree.lookup(key);
        let cand = tree
            .split_candidates(target)
            .unwrap()
            .into_iter()
            .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
            .expect("simple split always available at these depths");
        tree.apply_split(&cand, IAgentId::new(next), Side::Right)
            .unwrap();
        next += 1;
    }
    tree
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtree/lookup");
    let mut rng = StdRng::seed_from_u64(7);
    for leaves in [2usize, 16, 64, 256, 1024] {
        let tree = tree_with(leaves, &mut rng);
        let keys: Vec<AgentKey> = (0..1024u64).map(AgentKey::from_sequential).collect();
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &tree, |b, tree| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(tree.lookup(keys[i]))
            });
        });
    }
    group.finish();
}

fn bench_split_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtree/split_candidates");
    let mut rng = StdRng::seed_from_u64(8);
    for leaves in [2usize, 64, 1024] {
        let tree = tree_with(leaves, &mut rng);
        let leaf = tree.iagents().max().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &tree, |b, tree| {
            b.iter(|| black_box(tree.split_candidates(leaf).unwrap()));
        });
    }
    group.finish();
}

fn bench_split_merge_cycle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let tree = tree_with(64, &mut rng);
    let leaf = tree.iagents().max().unwrap();
    c.bench_function("hashtree/split_merge_cycle_64", |b| {
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                let cand = t
                    .split_candidates(leaf)
                    .unwrap()
                    .into_iter()
                    .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
                    .unwrap();
                t.apply_split(&cand, IAgentId::new(999_999), Side::Right)
                    .unwrap();
                t.apply_merge(IAgentId::new(999_999)).unwrap();
                t
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_compatibility(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    let tree = tree_with(256, &mut rng);
    let mapping = tree.mapping();
    let key = AgentKey::from_sequential(12345);
    c.bench_function("hashtree/compatibility_scan_256", |b| {
        b.iter(|| {
            mapping
                .iter()
                .filter(|(_, hl)| hl.is_compatible(black_box(key)))
                .count()
        });
    });
}

fn bench_serde(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let tree = tree_with(64, &mut rng);
    let json = serde_json::to_string(&tree).unwrap();
    c.bench_function("hashtree/serialize_64", |b| {
        b.iter(|| serde_json::to_string(black_box(&tree)).unwrap());
    });
    c.bench_function("hashtree/deserialize_64", |b| {
        b.iter(|| serde_json::from_str::<HashTree>(black_box(&json)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_lookup,
    bench_split_candidates,
    bench_split_merge_cycle,
    bench_compatibility,
    bench_serde
);
criterion_main!(benches);
