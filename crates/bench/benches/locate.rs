//! End-to-end benches: full locate operations through the simulated
//! platform, per scheme, plus raw event throughput.
//!
//! These measure *simulator* performance (events per wall-clock second),
//! complementing the `repro` binary which measures *virtual-time* location
//! latencies.

// The legacy `run*` entry points are deprecated shims over `Scenario::run_with`;
// these tests deliberately keep exercising them until the shims are removed.
#![allow(deprecated)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agentrack_core::{
    CentralizedScheme, ForwardingScheme, HashedScheme, HomeRegistryScheme, LocationConfig,
};
use agentrack_workload::Scenario;

fn mini_scenario(seed: u64) -> Scenario {
    Scenario::new("bench")
        .with_agents(20)
        .with_queries(50)
        .with_seconds(4.0, 2.0)
        .with_seed(seed)
}

fn bench_scenario_per_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("locate/mini_scenario");
    group.sample_size(10);
    for kind in ["hashed", "centralized", "home-registry", "forwarding"] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, kind| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let scenario = mini_scenario(seed);
                let report = match *kind {
                    "hashed" => scenario.run(&mut HashedScheme::new(LocationConfig::default())),
                    "centralized" => {
                        scenario.run(&mut CentralizedScheme::new(LocationConfig::default()))
                    }
                    "home-registry" => {
                        scenario.run(&mut HomeRegistryScheme::new(LocationConfig::default()))
                    }
                    "forwarding" => {
                        scenario.run(&mut ForwardingScheme::new(LocationConfig::default()))
                    }
                    _ => unreachable!(),
                };
                assert!(report.locates_completed > 0);
                report
            });
        });
    }
    group.finish();
}

fn bench_event_throughput(c: &mut Criterion) {
    use agentrack_platform::{
        Agent, AgentCtx, AgentId, NodeId, Payload, PlatformConfig, SimPlatform,
    };
    use agentrack_sim::{DurationDist, SimDuration, Topology};

    /// Two agents bouncing one message back and forth forever.
    struct PingPonger {
        peer: Option<(AgentId, NodeId)>,
    }
    impl Agent for PingPonger {
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, payload: &Payload) {
            let peer = self.peer.map_or((from, NodeId::new(0)), |p| p);
            ctx.send(peer.0, peer.1, payload.clone());
        }
    }

    c.bench_function("locate/platform_event_throughput", |b| {
        b.iter_custom(|iters| {
            let topo = Topology::lan(2, DurationDist::Constant(SimDuration::from_micros(100)));
            let mut p = SimPlatform::new(topo, PlatformConfig::default());
            let a = p.spawn(Box::new(PingPonger { peer: None }), NodeId::new(0));
            let b_ = p.spawn(
                Box::new(PingPonger {
                    peer: Some((a, NodeId::new(0))),
                }),
                NodeId::new(1),
            );
            // Kick off: make `a` know its peer and start the rally.
            struct Kicker {
                to: (AgentId, NodeId),
            }
            impl Agent for Kicker {
                fn on_create(&mut self, ctx: &mut AgentCtx<'_>) {
                    ctx.send(self.to.0, self.to.1, Payload::encode(&"serve"));
                    ctx.dispose();
                }
            }
            p.spawn(
                Box::new(Kicker {
                    to: (b_, NodeId::new(1)),
                }),
                NodeId::new(0),
            );
            let start = std::time::Instant::now();
            for _ in 0..iters {
                if !p.step() {
                    break;
                }
            }
            start.elapsed()
        });
    });
}

criterion_group!(benches, bench_scenario_per_scheme, bench_event_throughput);
criterion_main!(benches);
