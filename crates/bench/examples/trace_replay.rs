//! Runs a small workload with structured tracing enabled and reconstructs
//! one locate's multi-hop path (client → LHAgent → IAgent → answer) from
//! the trace ring by correlation id.
//!
//! ```text
//! cargo run --release -p agentrack-bench --example trace_replay
//! ```

use std::collections::BTreeMap;

use agentrack_core::{HashedScheme, LocationConfig};
use agentrack_sim::{TraceEvent, TraceRecord, TraceSink};
use agentrack_workload::{RunOptions, Scenario};

fn main() {
    let sink = TraceSink::bounded(200_000);
    let scenario = Scenario::new("trace-replay")
        .with_agents(50)
        .with_queries(40)
        .with_seconds(8.0, 4.0);
    let mut scheme = HashedScheme::new(LocationConfig::default());
    let report = scenario
        .run_with(&mut scheme, RunOptions::new().with_sink(sink.clone()))
        .report;
    println!(
        "completed {} locates; {} trace records buffered ({} overwritten)",
        report.locates_completed,
        sink.snapshot().len(),
        sink.dropped()
    );

    // Group records by correlation id and replay the longest path — the
    // most interesting locate: stale copies, retries, chases.
    let mut by_corr: BTreeMap<String, Vec<TraceRecord>> = BTreeMap::new();
    for r in sink.snapshot() {
        if let Some(corr) = r.event.corr() {
            by_corr.entry(corr.to_string()).or_default().push(r);
        }
    }
    let Some((corr, path)) = by_corr.into_iter().max_by_key(|(_, v)| v.len()) else {
        println!("no correlated records captured");
        return;
    };
    println!("\nlongest locate path ({corr}, {} events):", path.len());
    for r in &path {
        let t = r.at.as_secs_f64();
        match &r.event {
            TraceEvent::MessageSend {
                kind,
                from,
                to,
                node,
                ..
            } => println!("  t={t:>9.4}s  {from} -> {to} @{node}  send {kind}"),
            TraceEvent::MessageRecv { kind, by, node, .. } => {
                println!("  t={t:>9.4}s  {by} @{node}  recv {kind}");
            }
            TraceEvent::RetryAttempt {
                client,
                target,
                attempt,
                ..
            } => println!("  t={t:>9.4}s  client {client} retries locate of {target} (#{attempt})"),
            TraceEvent::RetryGiveUp {
                client,
                target,
                attempts,
                ..
            } => println!("  t={t:>9.4}s  client {client} gives up on {target} after {attempts}"),
            other => println!("  t={t:>9.4}s  {other:?}"),
        }
    }
}
