//! Span construction and critical-path attribution.
//!
//! The builder is a timeline sweep: a locate's corr-filtered records,
//! taken in time order, cut the root window into consecutive intervals,
//! and each interval is classified by the event that *ends* it. An
//! interval ending at a receive is transport time (minus the measured
//! queue residency, which becomes its own child); an interval ending at a
//! retry is backoff; everything else falls into an explicit catch-all.
//! Because consecutive intervals partition the window by construction,
//! the per-phase durations always sum to the end-to-end latency.

use std::collections::BTreeMap;
use std::fmt;

use agentrack_sim::{CorrId, LogHistogram, SimDuration, SimTime, TraceEvent, TraceRecord};

/// Named latency bucket a slice of a locate's end-to-end time lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Phase-1 hash-tree resolution traffic (`Resolve`, `ResolveFresh`,
    /// `Resolved`).
    Resolution,
    /// Phase-2 tracker query traffic (`Locate`).
    TrackerQuery,
    /// Forwarding-pointer chain traversal (`ChainLocate`).
    ChainTraversal,
    /// The answer leg (`Located`, `NotFound`).
    Answer,
    /// Stale-directory detours (`NotResponsible`) forced by rehashing.
    StaleDetour,
    /// Time spent queued at a service station before handling.
    QueueWait,
    /// Gaps ended by a retry attempt or give-up: timeout waits and
    /// post-negative backoff.
    RetryBackoff,
    /// Anything the taxonomy cannot name — the explicit remainder, so no
    /// time is ever silently unattributed.
    Other,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 8;

    /// Every phase, in presentation order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Resolution,
        Phase::TrackerQuery,
        Phase::ChainTraversal,
        Phase::Answer,
        Phase::StaleDetour,
        Phase::QueueWait,
        Phase::RetryBackoff,
        Phase::Other,
    ];

    /// Stable index into per-phase arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Phase::Resolution => 0,
            Phase::TrackerQuery => 1,
            Phase::ChainTraversal => 2,
            Phase::Answer => 3,
            Phase::StaleDetour => 4,
            Phase::QueueWait => 5,
            Phase::RetryBackoff => 6,
            Phase::Other => 7,
        }
    }

    /// Short stable name (used in CSV headers and exporter categories).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Resolution => "resolution",
            Phase::TrackerQuery => "tracker_query",
            Phase::ChainTraversal => "chain_traversal",
            Phase::Answer => "answer",
            Phase::StaleDetour => "stale_detour",
            Phase::QueueWait => "queue_wait",
            Phase::RetryBackoff => "retry_backoff",
            Phase::Other => "other",
        }
    }

    /// The phase a wire-message kind belongs to.
    #[must_use]
    pub fn of_kind(kind: &str) -> Phase {
        match kind {
            "Resolve" | "ResolveFresh" | "Resolved" => Phase::Resolution,
            "Locate" => Phase::TrackerQuery,
            "ChainLocate" => Phase::ChainTraversal,
            "Located" | "NotFound" => Phase::Answer,
            "NotResponsible" => Phase::StaleDetour,
            _ => Phase::Other,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Mechanical classification of a child span: what kind of waiting the
/// interval was, independent of which protocol phase it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// In flight on the network (plus handler service, which the trace
    /// cannot separate from propagation).
    Transport,
    /// Waiting in a service-station queue.
    QueueWait,
    /// Local handler work between a receive and the next send (zero on
    /// the simulated runtime, where handlers are instantaneous).
    Handle,
    /// Waiting out a retry timeout or post-negative backoff.
    Backoff,
    /// Unclassifiable.
    Other,
}

impl SpanKind {
    /// Short stable name, used as the exporter label prefix.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Transport => "transport",
            SpanKind::QueueWait => "queue",
            SpanKind::Handle => "handle",
            SpanKind::Backoff => "backoff",
            SpanKind::Other => "other",
        }
    }
}

/// One child span: a contiguous slice of the root window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Human-readable label, e.g. `transport:Locate`.
    pub label: String,
    /// Mechanical classification.
    pub kind: SpanKind,
    /// Latency-attribution bucket.
    pub phase: Phase,
    /// Slice start.
    pub start: SimTime,
    /// Slice end.
    pub end: SimTime,
}

impl Span {
    /// The slice's duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A zero-width annotation: background activity (rehash, mailbox,
/// failover) that overlapped the root window and may explain its shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// When it happened.
    pub at: SimTime,
    /// What happened, e.g. `rehash:split v3`.
    pub label: String,
}

/// The reconstructed span tree of one operation: a root spanning first
/// to last trace record, child spans that exactly partition that window,
/// and overlapping background markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// The operation's correlation id.
    pub corr: CorrId,
    /// Time of the first record (the initiating send).
    pub start: SimTime,
    /// Time of the last record (the final answer, give-up, or wherever
    /// the trace ends).
    pub end: SimTime,
    /// Child spans, in time order, exactly partitioning `[start, end]`.
    pub children: Vec<Span>,
    /// Rehash / mailbox / failover activity inside the window.
    pub markers: Vec<Marker>,
}

impl SpanTree {
    /// End-to-end duration of the root span.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Decomposes the root latency into per-phase buckets. The bucket
    /// sum equals [`SpanTree::duration`] by construction.
    #[must_use]
    pub fn breakdown(&self) -> PhaseBreakdown {
        let mut phases = [SimDuration::ZERO; Phase::COUNT];
        for child in &self.children {
            phases[child.phase.index()] += child.duration();
        }
        PhaseBreakdown {
            corr: self.corr,
            total: self.duration(),
            phases,
        }
    }
}

/// Per-phase decomposition of one operation's end-to-end latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// The operation.
    pub corr: CorrId,
    /// End-to-end latency (equals the sum over all phases).
    pub total: SimDuration,
    phases: [SimDuration; Phase::COUNT],
}

impl PhaseBreakdown {
    /// Time attributed to one phase.
    #[must_use]
    pub fn of(&self, phase: Phase) -> SimDuration {
        self.phases[phase.index()]
    }
}

fn classify(prev_at: SimTime, record: &TraceRecord, out: &mut Vec<Span>) {
    let at = record.at;
    match &record.event {
        TraceEvent::MessageRecv { kind, queued, .. } => {
            // The interval is transport plus the measured queue residency
            // at the far end; slice the queue part off as its own child.
            let queue_start = SimTime::from_nanos(
                at.as_nanos()
                    .saturating_sub(queued.as_nanos())
                    .max(prev_at.as_nanos()),
            );
            if queue_start > prev_at {
                out.push(Span {
                    label: format!("transport:{kind}"),
                    kind: SpanKind::Transport,
                    phase: Phase::of_kind(kind),
                    start: prev_at,
                    end: queue_start,
                });
            }
            if at > queue_start {
                out.push(Span {
                    label: format!("queue:{kind}"),
                    kind: SpanKind::QueueWait,
                    phase: Phase::QueueWait,
                    start: queue_start,
                    end: at,
                });
            }
        }
        TraceEvent::MessageSend { kind, .. } if at > prev_at => {
            out.push(Span {
                label: format!("handle:{kind}"),
                kind: SpanKind::Handle,
                phase: Phase::of_kind(kind),
                start: prev_at,
                end: at,
            });
        }
        TraceEvent::RetryAttempt { attempt, .. } if at > prev_at => {
            out.push(Span {
                label: format!("backoff:attempt{attempt}"),
                kind: SpanKind::Backoff,
                phase: Phase::RetryBackoff,
                start: prev_at,
                end: at,
            });
        }
        TraceEvent::RetryGiveUp { .. } if at > prev_at => {
            out.push(Span {
                label: "backoff:giveup".to_string(),
                kind: SpanKind::Backoff,
                phase: Phase::RetryBackoff,
                start: prev_at,
                end: at,
            });
        }
        _ if at > prev_at => {
            out.push(Span {
                label: "other".to_string(),
                kind: SpanKind::Other,
                phase: Phase::Other,
                start: prev_at,
                end: at,
            });
        }
        _ => {}
    }
}

fn marker_label(event: &TraceEvent) -> Option<String> {
    match event {
        TraceEvent::RehashSplit { version, .. } => Some(format!("rehash:split v{version}")),
        TraceEvent::RehashMerge { version, .. } => Some(format!("rehash:merge v{version}")),
        TraceEvent::MailBuffered { target, .. } => Some(format!("mail:buffered for {target}")),
        TraceEvent::MailFlushed { count, .. } => Some(format!("mail:flushed x{count}")),
        TraceEvent::MailExpired { lost, .. } => Some(format!("mail:expired x{lost}")),
        TraceEvent::Failover { by, .. } => Some(format!("failover by {by}")),
        _ => None,
    }
}

fn build_tree(corr: CorrId, events: &[TraceRecord], all: &[TraceRecord]) -> SpanTree {
    let start = events.first().map_or(SimTime::ZERO, |r| r.at);
    let end = events.last().map_or(SimTime::ZERO, |r| r.at);
    let mut children = Vec::new();
    let mut prev_at = start;
    for record in events.iter().skip(1) {
        classify(prev_at, record, &mut children);
        prev_at = record.at;
    }
    let markers = all
        .iter()
        .filter(|r| r.at >= start && r.at <= end)
        .filter_map(|r| marker_label(&r.event).map(|label| Marker { at: r.at, label }))
        .collect();
    SpanTree {
        corr,
        start,
        end,
        children,
        markers,
    }
}

/// Builds one span tree per correlation id found in `records`, in
/// correlation-id order (deterministic for a deterministic trace).
///
/// `records` is typically a [`agentrack_sim::TraceSink::snapshot`]: a
/// time-ordered record stream. Out-of-order input is sorted (stably) by
/// time first.
#[must_use]
pub fn build_spans(records: &[TraceRecord]) -> Vec<SpanTree> {
    let mut sorted: Vec<TraceRecord> = records.to_vec();
    sorted.sort_by_key(|r| r.at);
    let mut groups: BTreeMap<CorrId, Vec<TraceRecord>> = BTreeMap::new();
    for record in &sorted {
        if let Some(corr) = record.event.corr() {
            groups.entry(corr).or_default().push(record.clone());
        }
    }
    groups
        .into_iter()
        .map(|(corr, events)| build_tree(corr, &events, &sorted))
        .collect()
}

/// Builds the span tree of one operation, or `None` when no record
/// carries its correlation id.
#[must_use]
pub fn build_span(records: &[TraceRecord], corr: CorrId) -> Option<SpanTree> {
    let mut sorted: Vec<TraceRecord> = records.to_vec();
    sorted.sort_by_key(|r| r.at);
    let events: Vec<TraceRecord> = sorted
        .iter()
        .filter(|r| r.event.corr() == Some(corr))
        .cloned()
        .collect();
    if events.is_empty() {
        return None;
    }
    Some(build_tree(corr, &events, &sorted))
}

/// Per-phase latency aggregation across many operations.
///
/// Means are exact (running totals); tails come from mergeable
/// [`LogHistogram`]s, so shards built in parallel cells can be combined
/// without re-reading traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    count: u64,
    totals: [SimDuration; Phase::COUNT],
    hists: [LogHistogram; Phase::COUNT],
    end_to_end: LogHistogram,
}

impl Attribution {
    /// Creates an empty aggregation.
    #[must_use]
    pub fn new() -> Self {
        Attribution {
            count: 0,
            totals: [SimDuration::ZERO; Phase::COUNT],
            hists: std::array::from_fn(|_| LogHistogram::new()),
            end_to_end: LogHistogram::new(),
        }
    }

    /// Folds one operation's breakdown in.
    pub fn record(&mut self, breakdown: &PhaseBreakdown) {
        self.count += 1;
        self.end_to_end.record(breakdown.total);
        for phase in Phase::ALL {
            let d = breakdown.of(phase);
            self.totals[phase.index()] += d;
            self.hists[phase.index()].record(d);
        }
    }

    /// Combines another aggregation into this one.
    pub fn merge(&mut self, other: &Attribution) {
        self.count += other.count;
        self.end_to_end.merge(&other.end_to_end);
        for i in 0..Phase::COUNT {
            self.totals[i] += other.totals[i];
            self.hists[i].merge(&other.hists[i]);
        }
    }

    /// Operations aggregated.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean time per operation spent in `phase`, in milliseconds.
    #[must_use]
    pub fn mean_ms(&self, phase: Phase) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.totals[phase.index()].as_millis_f64() / self.count as f64
    }

    /// Mean end-to-end latency, in milliseconds.
    #[must_use]
    pub fn mean_total_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let total: SimDuration = self.totals.iter().copied().sum();
        total.as_millis_f64() / self.count as f64
    }

    /// Fraction of all attributed time spent in `phase` (0 when empty).
    #[must_use]
    pub fn share(&self, phase: Phase) -> f64 {
        let total: SimDuration = self.totals.iter().copied().sum();
        if total.is_zero() {
            return 0.0;
        }
        self.totals[phase.index()].as_nanos() as f64 / total.as_nanos() as f64
    }

    /// The per-phase latency histogram.
    #[must_use]
    pub fn histogram(&self, phase: Phase) -> &LogHistogram {
        &self.hists[phase.index()]
    }

    /// The end-to-end latency histogram.
    #[must_use]
    pub fn end_to_end(&self) -> &LogHistogram {
        &self.end_to_end
    }
}

impl Default for Attribution {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentrack_sim::{NodeId, TraceSink};

    fn send(at: u64, kind: &'static str, corr: CorrId) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at),
            event: TraceEvent::MessageSend {
                kind,
                corr: Some(corr),
                from: corr.origin,
                to: 99,
                node: NodeId::new(0),
            },
        }
    }

    fn recv(at: u64, kind: &'static str, corr: CorrId, queued: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at),
            event: TraceEvent::MessageRecv {
                kind,
                corr: Some(corr),
                by: 99,
                node: NodeId::new(1),
                queued: SimDuration::from_nanos(queued),
            },
        }
    }

    #[test]
    fn children_partition_the_root_window() {
        let corr = CorrId::new(1, 1);
        let records = vec![
            send(0, "Resolve", corr),
            recv(1_000, "Resolve", corr, 300),
            send(1_000, "Resolved", corr),
            recv(2_500, "Resolved", corr, 0),
            send(2_500, "Locate", corr),
            recv(4_000, "Locate", corr, 500),
            send(4_000, "Located", corr),
            recv(5_000, "Located", corr, 0),
        ];
        let tree = build_span(&records, corr).expect("records exist");
        assert_eq!(tree.duration(), SimDuration::from_nanos(5_000));
        let sum: SimDuration = tree.children.iter().map(Span::duration).sum();
        assert_eq!(sum, tree.duration(), "children must partition the root");
        let b = tree.breakdown();
        let phase_sum: SimDuration = Phase::ALL.iter().map(|&p| b.of(p)).sum();
        assert_eq!(phase_sum, b.total);
        assert_eq!(b.of(Phase::QueueWait), SimDuration::from_nanos(800));
        assert_eq!(b.of(Phase::Resolution), SimDuration::from_nanos(2_200));
        assert_eq!(b.of(Phase::TrackerQuery), SimDuration::from_nanos(1_000));
        assert_eq!(b.of(Phase::Answer), SimDuration::from_nanos(1_000));
        assert_eq!(b.of(Phase::Other), SimDuration::ZERO);
    }

    #[test]
    fn retry_gaps_become_backoff() {
        let corr = CorrId::new(2, 9);
        let records = vec![
            send(0, "Locate", corr),
            TraceRecord {
                at: SimTime::from_nanos(10_000),
                event: TraceEvent::RetryAttempt {
                    corr: Some(corr),
                    client: 2,
                    target: 50,
                    attempt: 1,
                },
            },
            send(10_000, "Locate", corr),
            recv(11_000, "Locate", corr, 0),
        ];
        let tree = build_span(&records, corr).expect("records exist");
        let b = tree.breakdown();
        assert_eq!(b.of(Phase::RetryBackoff), SimDuration::from_nanos(10_000));
        assert_eq!(b.of(Phase::TrackerQuery), SimDuration::from_nanos(1_000));
        assert_eq!(b.total, SimDuration::from_nanos(11_000));
    }

    #[test]
    fn overlapping_rehash_becomes_a_marker() {
        let corr = CorrId::new(3, 1);
        let sink = TraceSink::bounded(8);
        sink.emit(SimTime::from_nanos(0), || TraceEvent::MessageSend {
            kind: "Locate",
            corr: Some(corr),
            from: 3,
            to: 9,
            node: NodeId::new(0),
        });
        sink.emit(SimTime::from_nanos(500), || TraceEvent::RehashSplit {
            version: 4,
            from_tracker: 9,
            to_tracker: 10,
        });
        sink.emit(SimTime::from_nanos(1_000), || TraceEvent::MessageRecv {
            kind: "Locate",
            corr: Some(corr),
            by: 9,
            node: NodeId::new(1),
            queued: SimDuration::ZERO,
        });
        let trees = build_spans(&sink.snapshot());
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].markers.len(), 1);
        assert_eq!(trees[0].markers[0].label, "rehash:split v4");
    }

    #[test]
    fn queue_wait_clamps_to_the_interval() {
        // A recv whose reported residency exceeds the whole interval
        // (possible when prior records interleave) must not underflow.
        let corr = CorrId::new(4, 1);
        let records = vec![
            send(1_000, "Locate", corr),
            recv(1_500, "Locate", corr, 900),
        ];
        let tree = build_span(&records, corr).expect("records exist");
        let sum: SimDuration = tree.children.iter().map(Span::duration).sum();
        assert_eq!(sum, SimDuration::from_nanos(500));
        assert_eq!(
            tree.breakdown().of(Phase::QueueWait),
            SimDuration::from_nanos(500)
        );
    }

    #[test]
    fn attribution_aggregates_and_merges() {
        let corr = CorrId::new(5, 1);
        let records = vec![
            send(0, "Locate", corr),
            recv(2_000, "Locate", corr, 1_000),
            send(2_000, "Located", corr),
            recv(3_000, "Located", corr, 0),
        ];
        let tree = build_span(&records, corr).expect("records exist");
        let mut a = Attribution::new();
        a.record(&tree.breakdown());
        let mut b = Attribution::new();
        b.record(&tree.breakdown());
        b.merge(&a);
        assert_eq!(b.count(), 2);
        assert!((b.mean_ms(Phase::QueueWait) - 0.001).abs() < 1e-9);
        assert!((b.mean_total_ms() - 0.003).abs() < 1e-9);
        assert!(b.share(Phase::QueueWait) > 0.3);
        assert_eq!(b.histogram(Phase::QueueWait).len(), 2);
        assert_eq!(b.end_to_end().len(), 2);
    }

    #[test]
    fn build_span_returns_none_for_unknown_corr() {
        assert!(build_span(&[], CorrId::new(1, 1)).is_none());
    }
}
