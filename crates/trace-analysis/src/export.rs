//! Deterministic trace exporters.
//!
//! Both exporters hand-build their output strings (no float formatting
//! beyond fixed-precision microseconds, no map iteration over unordered
//! containers), so for a fixed seed the bytes are identical no matter
//! how many worker threads produced the experiment cells.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{Span, SpanTree};

/// Microseconds with fixed three-decimal precision, the Chrome
/// trace-event time unit.
fn us(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1000.0)
}

/// Exports span trees as Chrome/Perfetto trace-event JSON.
///
/// Each tree becomes one complete (`"ph":"X"`) event for the root plus
/// one per child span, all on track `pid = corr.origin`,
/// `tid = corr.seq`; markers become instant (`"ph":"i"`) events. Open
/// the result in `chrome://tracing` or <https://ui.perfetto.dev>.
#[must_use]
pub fn to_perfetto_json(trees: &[SpanTree]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for tree in trees {
        let pid = tree.corr.origin;
        let tid = tree.corr.seq;
        let mut event = |body: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&body);
        };
        event(
            format!(
                "{{\"name\":\"locate {}\",\"cat\":\"locate\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid}}}",
                tree.corr,
                us(tree.start.as_nanos()),
                us(tree.duration().as_nanos()),
            ),
            &mut out,
        );
        for child in &tree.children {
            event(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid}}}",
                    child.label,
                    child.phase.name(),
                    us(child.start.as_nanos()),
                    us(child.duration().as_nanos()),
                ),
                &mut out,
            );
        }
        for marker in &tree.markers {
            event(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"marker\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":{pid},\"tid\":{tid}}}",
                    marker.label,
                    us(marker.at.as_nanos()),
                ),
                &mut out,
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Exports span trees as folded-stack flamegraph text: one
/// `prefix;phase;label nanos` line per unique stack, aggregated and
/// sorted, ready for `flamegraph.pl` or speedscope.
#[must_use]
pub fn to_folded(trees: &[SpanTree], prefix: &str) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for tree in trees {
        for child in &tree.children {
            let nanos = child.duration().as_nanos();
            if nanos == 0 {
                continue;
            }
            let stack = format!("{prefix};{};{}", child.phase.name(), child.label);
            *stacks.entry(stack).or_insert(0) += nanos;
        }
    }
    let mut out = String::new();
    for (stack, nanos) in stacks {
        let _ = writeln!(out, "{stack} {nanos}");
    }
    out
}

/// The slowest operation in a batch of trees, by end-to-end duration
/// (ties broken by correlation id, for determinism).
#[must_use]
pub fn slowest(trees: &[SpanTree]) -> Option<&SpanTree> {
    trees
        .iter()
        .max_by_key(|t| (t.duration(), std::cmp::Reverse(t.corr)))
}

/// Renders one tree's critical-path breakdown as aligned text lines —
/// the root, then each child with duration and phase. Diagnostic
/// convenience for examples and CLIs.
#[must_use]
pub fn render_breakdown(tree: &SpanTree) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "locate {}: {:.3} ms end-to-end, {} hops",
        tree.corr,
        tree.duration().as_millis_f64(),
        tree.children
            .iter()
            .filter(|c| matches!(c.kind, crate::span::SpanKind::Transport))
            .count(),
    );
    for child in &tree.children {
        let _ = writeln!(
            out,
            "  {:>10.3} ms  {:<16} {}",
            Span::duration(child).as_millis_f64(),
            format!("[{}]", child.phase.name()),
            child.label,
        );
    }
    for marker in &tree.markers {
        let _ = writeln!(out, "       *        {} at {}", marker.label, marker.at);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::build_span;
    use agentrack_sim::{CorrId, NodeId, SimDuration, SimTime, TraceEvent, TraceRecord};

    fn sample_tree() -> SpanTree {
        let corr = CorrId::new(7, 1);
        let records = vec![
            TraceRecord {
                at: SimTime::from_nanos(0),
                event: TraceEvent::MessageSend {
                    kind: "Locate",
                    corr: Some(corr),
                    from: 7,
                    to: 3,
                    node: NodeId::new(0),
                },
            },
            TraceRecord {
                at: SimTime::from_nanos(1_500),
                event: TraceEvent::MessageRecv {
                    kind: "Locate",
                    corr: Some(corr),
                    by: 3,
                    node: NodeId::new(1),
                    queued: SimDuration::from_nanos(500),
                },
            },
        ];
        build_span(&records, corr).expect("records exist")
    }

    #[test]
    fn perfetto_output_is_valid_shape_and_stable() {
        let tree = sample_tree();
        let json = to_perfetto_json(std::slice::from_ref(&tree));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"locate 7#1\""));
        assert!(json.contains("\"name\":\"transport:Locate\""));
        assert!(json.contains("\"name\":\"queue:Locate\""));
        assert_eq!(json, to_perfetto_json(&[tree]), "must be deterministic");
    }

    #[test]
    fn folded_output_aggregates_and_sorts() {
        let tree = sample_tree();
        let folded = to_folded(&[tree.clone(), tree], "forwarding");
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        // BTreeMap ordering: queue_wait sorts before tracker_query.
        assert_eq!(lines[0], "forwarding;queue_wait;queue:Locate 1000");
        assert_eq!(lines[1], "forwarding;tracker_query;transport:Locate 2000");
    }

    #[test]
    fn slowest_picks_the_longest_tree() {
        let fast = sample_tree();
        let mut slow = fast.clone();
        slow.corr = CorrId::new(8, 1);
        slow.end += SimDuration::from_nanos(1);
        let trees = vec![fast, slow];
        assert_eq!(slowest(&trees).expect("non-empty").corr, CorrId::new(8, 1));
        assert!(slowest(&[]).is_none());
    }

    #[test]
    fn breakdown_rendering_mentions_every_child() {
        let tree = sample_tree();
        let text = render_breakdown(&tree);
        assert!(text.contains("locate 7#1"));
        assert!(text.contains("transport:Locate"));
        assert!(text.contains("[queue_wait]"));
    }
}
