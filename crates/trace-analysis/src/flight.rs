//! Deterministic exporters for the live runtime's slow-op flight
//! recorder.
//!
//! The live platform's telemetry keeps the K slowest operations it saw
//! (deliveries, migrations, timer firings), each with three wall-clock
//! timestamps — enqueued, handler start, handler end — expressed as
//! nanoseconds since platform start. This module renders such a capture
//! as:
//!
//! * [`to_flight_perfetto`] — Chrome/Perfetto trace-event JSON: per op,
//!   a *queue* slice (enqueue → start) and a *handle* slice (start →
//!   end) on track `pid = node`, `tid = rank`, so the phase split of
//!   every slow op is visible on a timeline;
//! * [`to_flight_json`] — a plain JSON array, one object per op, for
//!   ad-hoc tooling (`jq`, spreadsheets).
//!
//! The platform crate cannot depend on this one (the dependency points
//! the other way), so ops cross the boundary as plain-u64 [`FlightOp`]
//! rows rather than the platform's own type; `live_bench` maps between
//! them field by field.
//!
//! Both exporters hand-build their strings from integer fields in input
//! order (the recorder already returns ops slowest-first), so output is
//! byte-deterministic for a given capture.

use std::fmt::Write as _;

/// One slow operation, decoupled from the platform's `SlowOp` type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightOp {
    /// Operation kind label: `"deliver"`, `"move"`, `"timer"`, … Any
    /// short ASCII token works; it becomes the event category.
    pub kind: &'static str,
    /// Node whose thread executed the op.
    pub node: u32,
    /// Raw id of the agent the op ran against.
    pub agent: u64,
    /// Nanoseconds since platform start when the work was enqueued (or
    /// due, for timers).
    pub enqueued_ns: u64,
    /// When the handler started running.
    pub started_ns: u64,
    /// When the handler returned.
    pub ended_ns: u64,
}

impl FlightOp {
    /// Enqueue → start: time spent waiting.
    #[must_use]
    pub fn queue_ns(&self) -> u64 {
        self.started_ns.saturating_sub(self.enqueued_ns)
    }

    /// Start → end: time spent in the handler.
    #[must_use]
    pub fn handle_ns(&self) -> u64 {
        self.ended_ns.saturating_sub(self.started_ns)
    }

    /// Enqueue → end, the recorder's ranking key.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.ended_ns.saturating_sub(self.enqueued_ns)
    }
}

/// Microseconds with fixed three-decimal precision (the Chrome
/// trace-event time unit).
fn us(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1000.0)
}

/// Renders a flight capture as Chrome/Perfetto trace-event JSON.
///
/// Per op: a `queue` slice from enqueue to handler start and a `handle`
/// slice from start to end, both named `<kind> agent <id>`, on
/// `pid = node` / `tid = rank` (rank = position in `ops`, i.e. slowness
/// order). Zero-length queue phases (unstamped or instantaneous) emit no
/// queue slice. Open in `chrome://tracing` or <https://ui.perfetto.dev>.
#[must_use]
pub fn to_flight_perfetto(ops: &[FlightOp]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (rank, op) in ops.iter().enumerate() {
        let mut event = |body: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&body);
        };
        let pid = op.node;
        if op.queue_ns() > 0 {
            event(
                format!(
                    "{{\"name\":\"{} agent {}\",\"cat\":\"queue\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{rank}}}",
                    op.kind,
                    op.agent,
                    us(op.enqueued_ns),
                    us(op.queue_ns()),
                ),
                &mut out,
            );
        }
        event(
            format!(
                "{{\"name\":\"{} agent {}\",\"cat\":\"handle\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{rank}}}",
                op.kind,
                op.agent,
                us(op.started_ns),
                us(op.handle_ns()),
            ),
            &mut out,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders a flight capture as a plain JSON array, one object per op in
/// input order, all fields integer nanoseconds.
#[must_use]
pub fn to_flight_json(ops: &[FlightOp]) -> String {
    let mut out = String::from("[\n");
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"kind\":\"{}\",\"node\":{},\"agent\":{},\"enqueued_ns\":{},\"started_ns\":{},\"ended_ns\":{},\"queue_ns\":{},\"handle_ns\":{},\"total_ns\":{}}}",
            op.kind,
            op.node,
            op.agent,
            op.enqueued_ns,
            op.started_ns,
            op.ended_ns,
            op.queue_ns(),
            op.handle_ns(),
            op.total_ns(),
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<FlightOp> {
        vec![
            FlightOp {
                kind: "deliver",
                node: 2,
                agent: 41,
                enqueued_ns: 1_000,
                started_ns: 4_000,
                ended_ns: 9_000,
            },
            FlightOp {
                kind: "timer",
                node: 0,
                agent: 7,
                enqueued_ns: 2_000,
                started_ns: 2_000,
                ended_ns: 6_500,
            },
        ]
    }

    #[test]
    fn phases_partition_the_total() {
        for op in ops() {
            assert_eq!(op.queue_ns() + op.handle_ns(), op.total_ns());
        }
    }

    #[test]
    fn perfetto_export_is_deterministic_and_parseable_shape() {
        let a = to_flight_perfetto(&ops());
        let b = to_flight_perfetto(&ops());
        assert_eq!(a, b, "same capture, same bytes");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(a.contains("\"cat\":\"queue\""));
        assert!(a.contains("\"cat\":\"handle\""));
        // The zero-queue timer op emits only its handle slice.
        assert_eq!(a.matches("\"cat\":\"queue\"").count(), 1);
        assert_eq!(a.matches("\"cat\":\"handle\"").count(), 2);
    }

    #[test]
    fn json_export_carries_every_field() {
        let j = to_flight_json(&ops());
        assert!(j.contains(
            "{\"kind\":\"deliver\",\"node\":2,\"agent\":41,\"enqueued_ns\":1000,\
             \"started_ns\":4000,\"ended_ns\":9000,\"queue_ns\":3000,\
             \"handle_ns\":5000,\"total_ns\":8000}"
        ));
        assert!(j.trim_start().starts_with('['));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_capture_exports_empty_containers() {
        assert_eq!(
            to_flight_perfetto(&[]),
            "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}\n"
        );
        assert_eq!(to_flight_json(&[]), "[\n\n]\n");
    }
}
