//! # agentrack-trace-analysis
//!
//! Causal span trees over the flat [`agentrack_sim::TraceSink`] record
//! stream, with critical-path latency attribution.
//!
//! The trace ring records *that* events happened — sends, receives, queue
//! residency, retries, rehashes. This crate folds those flat records into
//! hierarchical structure after the fact:
//!
//! * [`SpanTree`] — one root span per locate/resolve [`CorrId`], whose
//!   child [`Span`]s exactly partition the root's `[start, end]` window:
//!   wire hops (transport), queue residency at service stations, retry
//!   backoff gaps, and handler work. Rehash and mailbox activity that
//!   overlaps the window is attached as zero-width [`Marker`]s.
//! * [`PhaseBreakdown`] — the critical-path decomposition of one locate's
//!   end-to-end latency into named [`Phase`] buckets. Because child spans
//!   partition the window, the per-phase durations **always sum to the
//!   root latency** — unattributed time can only land in the explicit
//!   [`Phase::Other`] bucket, never vanish.
//! * [`Attribution`] — per-phase aggregation across many locates, backed
//!   by mergeable [`agentrack_sim::LogHistogram`]s.
//! * [`to_perfetto_json`] / [`to_folded`] — deterministic exporters:
//!   Chrome/Perfetto trace-event JSON and folded-stack flamegraph text,
//!   byte-identical for a fixed seed regardless of host parallelism.
//!
//! ## Example
//!
//! ```
//! use agentrack_sim::{CorrId, NodeId, SimDuration, SimTime, TraceEvent, TraceSink};
//! use agentrack_trace_analysis::{build_spans, Phase};
//!
//! let sink = TraceSink::bounded(16);
//! let corr = CorrId::new(7, 1);
//! sink.emit(SimTime::from_nanos(0), || TraceEvent::MessageSend {
//!     kind: "Locate", corr: Some(corr), from: 7, to: 3, node: NodeId::new(0),
//! });
//! sink.emit(SimTime::from_nanos(900), || TraceEvent::MessageRecv {
//!     kind: "Locate", corr: Some(corr), by: 3, node: NodeId::new(1),
//!     queued: SimDuration::from_nanos(200),
//! });
//! let trees = build_spans(&sink.snapshot());
//! let breakdown = trees[0].breakdown();
//! assert_eq!(breakdown.total, SimDuration::from_nanos(900));
//! assert_eq!(breakdown.of(Phase::TrackerQuery), SimDuration::from_nanos(700));
//! assert_eq!(breakdown.of(Phase::QueueWait), SimDuration::from_nanos(200));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod export;
mod flight;
mod span;

pub use agentrack_sim::CorrId;
pub use export::{render_breakdown, slowest, to_folded, to_perfetto_json};
pub use flight::{to_flight_json, to_flight_perfetto, FlightOp};
pub use span::{
    build_span, build_spans, Attribution, Marker, Phase, PhaseBreakdown, Span, SpanKind, SpanTree,
};
