//! Partition-aware reachability tracking for geo-distributed deployments.
//!
//! When the topology spans WAN regions, a severed inter-region link shows
//! up to a client as locate timeouts against trackers in the cut-off
//! region. The [`ReachabilityMap`] turns those per-destination timeout
//! streams into a small health state machine:
//!
//! ```text
//! Healthy --K consecutive timeouts--> Degraded --first success--> Reconciling
//!    ^                                    ^                            |
//!    |                                    +------- timeout ------------+
//!    +--------------- J consecutive successes ------------------------+
//! ```
//!
//! Clients consult it to *hedge*: a freshness-bounded locate whose
//! responsible tracker sits behind a `Degraded` destination is sent to the
//! tracker's buddy replica at the same time, so the bounded read can be
//! served locally instead of waiting out the full retry budget against a
//! dead link. `Reconciling` is the guarded transition back: one success
//! after a partition does not prove the link healed (it may be a straggler
//! that left before the sever), so hedging stays on until `J` successes
//! land in a row.

use std::collections::HashMap;

use agentrack_platform::NodeId;

/// Health of one destination (node) as observed from a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionState {
    /// Answers arrive normally.
    Healthy,
    /// Enough consecutive timeouts that the destination is presumed
    /// unreachable (severed link or dead node): hedge bounded reads.
    Degraded,
    /// Answers started arriving again after a degraded spell; hedging
    /// stays on until the recovery is confirmed.
    Reconciling,
}

#[derive(Debug, Clone, Copy)]
struct Health {
    state: RegionState,
    /// Consecutive timeouts while `Healthy` (toward degrading).
    timeouts: u32,
    /// Consecutive successes while `Reconciling` (toward healing).
    successes: u32,
}

impl Health {
    const HEALTHY: Health = Health {
        state: RegionState::Healthy,
        timeouts: 0,
        successes: 0,
    };
}

/// Per-destination health, fed by locate outcomes.
///
/// # Examples
///
/// ```
/// use agentrack_core::{ReachabilityMap, RegionState};
/// use agentrack_platform::NodeId;
///
/// let mut map = ReachabilityMap::new(2, 2);
/// let far = NodeId::new(7);
/// assert_eq!(map.state(far), RegionState::Healthy);
/// map.on_timeout(far);
/// map.on_timeout(far);
/// assert_eq!(map.state(far), RegionState::Degraded);
/// map.on_success(far);
/// assert_eq!(map.state(far), RegionState::Reconciling);
/// map.on_success(far);
/// assert_eq!(map.state(far), RegionState::Healthy);
/// ```
#[derive(Debug)]
pub struct ReachabilityMap {
    destinations: HashMap<NodeId, Health>,
    /// Consecutive timeouts before a destination degrades.
    degrade_after: u32,
    /// Consecutive successes before a reconciling destination heals.
    heal_after: u32,
}

impl ReachabilityMap {
    /// Creates a map that degrades a destination after `degrade_after`
    /// consecutive timeouts and heals it after `heal_after` consecutive
    /// successes. Both clamp to at least 1.
    #[must_use]
    pub fn new(degrade_after: u32, heal_after: u32) -> Self {
        ReachabilityMap {
            destinations: HashMap::new(),
            degrade_after: degrade_after.max(1),
            heal_after: heal_after.max(1),
        }
    }

    /// The current health of `dest` (destinations never heard about are
    /// `Healthy`).
    #[must_use]
    pub fn state(&self, dest: NodeId) -> RegionState {
        self.destinations
            .get(&dest)
            .map_or(RegionState::Healthy, |h| h.state)
    }

    /// `true` when bounded reads toward `dest` should be hedged: the
    /// destination is degraded, or recovering but not yet confirmed.
    #[must_use]
    pub fn should_hedge(&self, dest: NodeId) -> bool {
        matches!(
            self.state(dest),
            RegionState::Degraded | RegionState::Reconciling
        )
    }

    /// A locate toward `dest` timed out.
    pub fn on_timeout(&mut self, dest: NodeId) {
        let degrade_after = self.degrade_after;
        let h = self.destinations.entry(dest).or_insert(Health::HEALTHY);
        match h.state {
            RegionState::Healthy => {
                h.timeouts += 1;
                if h.timeouts >= degrade_after {
                    h.state = RegionState::Degraded;
                    h.successes = 0;
                }
            }
            RegionState::Degraded => {}
            RegionState::Reconciling => {
                // The heal was not real: straight back to degraded.
                h.state = RegionState::Degraded;
                h.successes = 0;
            }
        }
    }

    /// An answer from `dest` arrived.
    pub fn on_success(&mut self, dest: NodeId) {
        let heal_after = self.heal_after;
        let Some(h) = self.destinations.get_mut(&dest) else {
            return; // already healthy with no history
        };
        match h.state {
            RegionState::Healthy => h.timeouts = 0,
            RegionState::Degraded | RegionState::Reconciling => {
                if h.state == RegionState::Degraded {
                    h.successes = 0;
                }
                h.state = RegionState::Reconciling;
                h.successes += 1;
                if h.successes >= heal_after {
                    *h = Health::HEALTHY;
                }
            }
        }
    }

    /// Number of destinations currently degraded or reconciling.
    #[must_use]
    pub fn troubled(&self) -> usize {
        self.destinations
            .values()
            .filter(|h| h.state != RegionState::Healthy)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u32) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn degrades_only_after_consecutive_timeouts() {
        let mut map = ReachabilityMap::new(3, 2);
        map.on_timeout(n(1));
        map.on_timeout(n(1));
        assert_eq!(map.state(n(1)), RegionState::Healthy);
        // A success resets the streak.
        map.on_success(n(1));
        map.on_timeout(n(1));
        map.on_timeout(n(1));
        assert_eq!(map.state(n(1)), RegionState::Healthy);
        map.on_timeout(n(1));
        assert_eq!(map.state(n(1)), RegionState::Degraded);
        assert!(map.should_hedge(n(1)));
        assert_eq!(map.troubled(), 1);
        // Other destinations are unaffected.
        assert_eq!(map.state(n(2)), RegionState::Healthy);
    }

    #[test]
    fn heals_through_reconciling_and_relapses_on_timeout() {
        let mut map = ReachabilityMap::new(1, 2);
        map.on_timeout(n(4));
        assert_eq!(map.state(n(4)), RegionState::Degraded);
        map.on_success(n(4));
        assert_eq!(map.state(n(4)), RegionState::Reconciling);
        assert!(map.should_hedge(n(4)), "hedging stays on mid-reconcile");
        // A relapse sends it straight back to degraded and the success
        // streak restarts.
        map.on_timeout(n(4));
        assert_eq!(map.state(n(4)), RegionState::Degraded);
        map.on_success(n(4));
        map.on_success(n(4));
        assert_eq!(map.state(n(4)), RegionState::Healthy);
        assert!(!map.should_hedge(n(4)));
        assert_eq!(map.troubled(), 0);
    }

    #[test]
    fn thresholds_clamp_to_one() {
        let mut map = ReachabilityMap::new(0, 0);
        map.on_timeout(n(9));
        assert_eq!(map.state(n(9)), RegionState::Degraded);
        map.on_success(n(9));
        assert_eq!(map.state(n(9)), RegionState::Healthy);
    }
}
