//! The wire protocol of the location schemes, and the hash-function
//! artifact the HAgent distributes.
//!
//! All schemes (hashed, centralized, home-registry, forwarding) share one
//! message enum so behaviours can cheaply test "is this one of mine" by
//! attempting to decode a [`Wire`] value.

use std::collections::HashMap;

use agentrack_hashtree::{AgentKey, CompiledDirectory, HashTree, IAgentId};
use agentrack_platform::{AgentId, NodeId, Payload};
use agentrack_sim::CorrId;
use serde::{Deserialize, Serialize};

/// Derives the hash key of a platform agent id.
///
/// The platform assigns agent ids sequentially; the location mechanism
/// requires keys whose prefix bits are uniform, so ids are passed through a
/// full-avalanche mixer. This is the system-wide hash function's first
/// stage (its second stage is the hash tree's prefix matching).
#[must_use]
pub fn key_of(agent: AgentId) -> AgentKey {
    AgentKey::from_sequential(agent.raw())
}

/// The complete hash-function artifact: what the HAgent owns (primary
/// copy), LHAgents cache (secondary copies), and IAgents keep to check
/// responsibility.
///
/// Besides the tree this carries the IAgent *directory* — the current node
/// of every IAgent — because resolving an agent must yield both "which
/// IAgent" and "where is it" (paper: the LHAgent returns "the id and the
/// current location of A's IAgent").
///
/// Every copy also carries a [`CompiledDirectory`]: the tree flattened
/// into a `2^d` table so the hot [`resolve`](Self::resolve) path is one
/// array index instead of a per-bit tree walk. The table is derived data —
/// it is rebuilt on deserialisation rather than sent over the wire, it is
/// excluded from equality, and it is generation-stamped so a direct
/// mutation of [`tree`](Self::tree) can never produce a wrong answer:
/// resolves fall back to the tree walk until [`recompile`](Self::recompile)
/// (full) or [`refresh_compiled`](Self::refresh_compiled) (incremental,
/// used by the HAgent after each rehash) brings the table current.
#[derive(Debug, Clone)]
pub struct HashFunction {
    /// Version counter, bumped by every rehash; lets copies recognise
    /// staleness.
    pub version: u64,
    /// The extendible hash tree.
    pub tree: HashTree,
    /// Where each IAgent lives. Keys are the tree's leaf owners.
    pub locations: HashMap<IAgentId, NodeId>,
    /// O(1) dispatch table compiled from `tree`; lazily kept current.
    compiled: CompiledDirectory,
}

impl HashFunction {
    /// Builds version 1 of the hash function: one IAgent serving the whole
    /// key space.
    #[must_use]
    pub fn initial(iagent: AgentId, node: NodeId) -> Self {
        let ia = IAgentId::new(iagent.raw());
        let mut locations = HashMap::new();
        locations.insert(ia, node);
        let tree = HashTree::new(ia);
        let compiled = CompiledDirectory::build(&tree);
        HashFunction {
            version: 1,
            tree,
            locations,
            compiled,
        }
    }

    /// The tree lookup, through the compiled directory when it is current
    /// (the common case — the HAgent refreshes it on every rehash, and
    /// deserialised copies arrive freshly compiled).
    #[inline]
    fn lookup(&self, key: AgentKey) -> IAgentId {
        if self.compiled.is_current(&self.tree) {
            if let Some(ia) = self.compiled.lookup(key) {
                return ia;
            }
        }
        self.tree.lookup(key)
    }

    /// Resolves an agent id to its responsible IAgent and that IAgent's
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if the tree and directory are out of sync — an invariant the
    /// HAgent maintains.
    #[must_use]
    pub fn resolve(&self, target: AgentId) -> (AgentId, NodeId) {
        let ia = self.lookup(key_of(target));
        let node = *self
            .locations
            .get(&ia)
            .expect("hash tree leaf without a directory entry");
        (AgentId::new(ia.raw()), node)
    }

    /// `true` if `iagent` is responsible for `target` under this version.
    #[must_use]
    pub fn is_responsible(&self, iagent: AgentId, target: AgentId) -> bool {
        self.lookup(key_of(target)) == IAgentId::new(iagent.raw())
    }

    /// The compiled dispatch table (possibly stale; check
    /// [`CompiledDirectory::is_current`]).
    #[must_use]
    pub fn compiled(&self) -> &CompiledDirectory {
        &self.compiled
    }

    /// Rebuilds the compiled directory from scratch. Call after mutating
    /// [`tree`](Self::tree) directly; until then resolves take the (safe,
    /// slower) tree walk.
    pub fn recompile(&mut self) {
        self.compiled = CompiledDirectory::build(&self.tree);
    }

    /// Incrementally refreshes the compiled directory after one split or
    /// merge: only the regions of `involved` leaves are rewritten
    /// ([`SplitApplied::affected`] plus the new IAgent, or
    /// [`MergeApplied::absorbers`]).
    ///
    /// [`SplitApplied::affected`]: agentrack_hashtree::SplitApplied::affected
    /// [`MergeApplied::absorbers`]: agentrack_hashtree::MergeApplied::absorbers
    pub fn refresh_compiled(&mut self, involved: &[IAgentId]) {
        self.compiled.refresh(&self.tree, involved);
    }

    /// The buddy replica of an IAgent: the leaf serving the key region
    /// adjacent to the IAgent's own — reached by flipping the last valid
    /// bit of its hyper-label. Returns `None` when the tree has a single
    /// leaf (no sibling exists; callers fall back to the configured
    /// standby) or when `iagent` is not a current leaf.
    #[must_use]
    pub fn buddy_of(&self, iagent: AgentId) -> Option<(AgentId, NodeId)> {
        let ia = IAgentId::new(iagent.raw());
        if self.tree.iagent_count() <= 1 || !self.tree.contains(ia) {
            return None;
        }
        let hl = self.tree.hyper_label(ia).ok()?;
        let positions = hl.valid_bit_positions();
        let labels = hl.labels();
        let mut raw = 0u64;
        for (i, (pos, label)) in positions.iter().zip(labels).enumerate() {
            let bit = if i == labels.len() - 1 {
                !label.valid_bit()
            } else {
                label.valid_bit()
            };
            if bit {
                raw |= 1u64 << (63 - pos);
            }
        }
        let sibling = self.tree.lookup(AgentKey::new(raw));
        if sibling == ia {
            return None;
        }
        let node = *self.locations.get(&sibling)?;
        Some((AgentId::new(sibling.raw()), node))
    }

    /// Consistency check: every leaf has a directory entry and vice versa,
    /// and a current compiled directory agrees with the tree slot by slot.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        self.tree.validate()?;
        for ia in self.tree.iagents() {
            if !self.locations.contains_key(&ia) {
                return Err(format!("{ia} has no directory entry"));
            }
        }
        if self.locations.len() != self.tree.iagent_count() {
            return Err(format!(
                "directory has {} entries for {} leaves",
                self.locations.len(),
                self.tree.iagent_count()
            ));
        }
        if self.compiled.is_current(&self.tree) {
            self.compiled.verify(&self.tree)?;
        }
        Ok(())
    }
}

/// The compiled directory is derived data: two hash functions are equal
/// when their versions, trees and directories agree, regardless of whether
/// either side's table is current.
impl PartialEq for HashFunction {
    fn eq(&self, other: &Self) -> bool {
        self.version == other.version
            && self.tree == other.tree
            && self.locations == other.locations
    }
}

/// Wire format identical to the former derived one (`version`, `tree`,
/// `locations`); the compiled table stays local.
impl Serialize for HashFunction {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("version"), Serialize::serialize(&self.version)),
            (String::from("tree"), Serialize::serialize(&self.tree)),
            (
                String::from("locations"),
                Serialize::serialize(&self.locations),
            ),
        ])
    }
}

/// Deserialised copies arrive with a freshly compiled table: this is what
/// gives LHAgent secondary copies and client-held copies their
/// per-generation compiled cache without any extra protocol.
impl Deserialize for HashFunction {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| -> Result<&serde::Value, serde::Error> {
            value
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("HashFunction: missing {name}")))
        };
        let version = Deserialize::deserialize(field("version")?)?;
        let tree: HashTree = Deserialize::deserialize(field("tree")?)?;
        let locations = Deserialize::deserialize(field("locations")?)?;
        let compiled = CompiledDirectory::build(&tree);
        Ok(HashFunction {
            version,
            tree,
            locations,
            compiled,
        })
    }
}

/// Why the HAgent (or a standby) declined a rehash request. The reason
/// drives the requester's retry backoff: a busy pipeline clears in one
/// lease round-trip, a cooldown or planning failure needs the load picture
/// to change, and a read-only standby stays read-only until the primary
/// returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenyReason {
    /// The rehash pipeline is full, or an in-flight lease's region
    /// overlaps the requested one. Clears quickly: retry after a short
    /// backoff.
    Busy,
    /// A recently committed rehash's region overlaps the requested one
    /// and its cooldown has not elapsed.
    Cooldown,
    /// The receiver is a read-only standby: the primary HAgent is down
    /// and the tree is frozen until it returns. Retry after a long
    /// backoff.
    ReadOnly,
    /// No acceptable plan: nothing to split on (or the merge is
    /// impossible). Retrying before the load picture changes is futile.
    NoPlan,
}

/// How fresh a locate answer must be — the per-query read mode of the
/// geo-distributed extension.
///
/// A locate declares the staleness it tolerates; trackers answer from a
/// record only when the record's age fits. The responsible IAgent's live
/// record is authoritative (age 0) and satisfies every mode; recovery
/// records and buddy-replica copies carry an age stamp and satisfy only
/// the modes that admit it. This promotes PR 5's recovery-only
/// `Located{stale}` into a first-class read mode: under a severed
/// inter-region link a [`Freshness::BoundedMs`] locate can be answered
/// locally from a replica within its bound, while a [`Freshness::Fresh`]
/// locate must wait for the authoritative region.
///
/// # Examples
///
/// ```
/// use agentrack_core::Freshness;
///
/// assert!(Freshness::Fresh.admits(0));
/// assert!(!Freshness::Fresh.admits(1));
/// assert!(Freshness::BoundedMs(500).admits(500));
/// assert!(!Freshness::BoundedMs(500).admits(501));
/// assert!(Freshness::Any.admits(u64::MAX));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Freshness {
    /// Only an authoritative answer qualifies: the responsible tracker's
    /// live record. Replica and recovery copies never satisfy it.
    Fresh,
    /// Any record at most this many milliseconds old qualifies —
    /// including a buddy replica's copy when the owner is unreachable.
    BoundedMs(u64),
    /// Anything, however old: the pre-geo behaviour (recovering trackers
    /// answer from unreconfirmed replica records of unbounded age).
    Any,
}

impl Freshness {
    /// `true` when a record `age_ms` milliseconds old satisfies this
    /// requirement. Monotone in the bound: an age admitted under
    /// `BoundedMs(a)` is admitted under every `BoundedMs(b)` with
    /// `b >= a`, and under `Any`.
    #[must_use]
    pub fn admits(&self, age_ms: u64) -> bool {
        match self {
            Freshness::Fresh => age_ms == 0,
            Freshness::BoundedMs(bound) => age_ms <= *bound,
            Freshness::Any => true,
        }
    }

    /// The mode's bound in milliseconds: 0 for `Fresh`, `None` for `Any`.
    #[must_use]
    pub fn bound_ms(&self) -> Option<u64> {
        match self {
            Freshness::Fresh => Some(0),
            Freshness::BoundedMs(bound) => Some(*bound),
            Freshness::Any => None,
        }
    }
}

impl Default for Freshness {
    /// `Any`: the paper's single-LAN behaviour, where staleness is only
    /// the transient kind LHAgents repair lazily.
    fn default() -> Self {
        Freshness::Any
    }
}

/// Every message any location scheme sends.
///
/// `token` fields correlate asynchronous replies with the requests that
/// caused them. `corr` fields carry the end-to-end [`CorrId`] of the
/// operation a message belongs to: every hop of one locate — resolve,
/// locate, chase, answer — carries the same id, so the full multi-hop
/// path can be reconstructed from a trace ring-buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Wire {
    // ---- client ↔ LHAgent (hashed scheme, phase 1) ----
    /// Resolve `target` to its IAgent using the local copy of the hash
    /// function.
    Resolve {
        /// Agent being resolved.
        target: AgentId,
        /// Correlation token, echoed in [`Wire::Resolved`].
        token: Option<u64>,
        /// End-to-end id of the operation this resolve serves.
        corr: Option<CorrId>,
    },
    /// Like [`Wire::Resolve`], but the caller has evidence the local copy
    /// is stale: fetch the primary copy from the HAgent first.
    ResolveFresh {
        /// Agent being resolved.
        target: AgentId,
        /// Correlation token.
        token: Option<u64>,
        /// End-to-end id of the operation this resolve serves.
        corr: Option<CorrId>,
    },
    /// Answer to a resolve: the responsible IAgent and its node.
    Resolved {
        /// The agent that was resolved.
        target: AgentId,
        /// Responsible IAgent (as a platform agent id).
        iagent: AgentId,
        /// Node that IAgent lives on.
        node: NodeId,
        /// The responsible IAgent's buddy replica (sibling leaf or
        /// standby), when one exists under this copy of the tree. Clients
        /// hedge freshness-bounded locates to it when the responsible
        /// tracker's region looks unreachable.
        buddy: Option<(AgentId, NodeId)>,
        /// Hash-function version this answer came from.
        version: u64,
        /// Correlation token.
        token: Option<u64>,
        /// End-to-end id, echoed from the resolve.
        corr: Option<CorrId>,
    },

    // ---- client ↔ IAgent (phase 2) / central agent / registries ----
    /// First registration of an agent with its tracker.
    Register {
        /// The agent registering.
        agent: AgentId,
        /// Where it currently is.
        node: NodeId,
    },
    /// Registration acknowledged.
    RegisterAck {
        /// The registered agent.
        agent: AgentId,
    },
    /// Location update after a move.
    Update {
        /// The agent that moved.
        agent: AgentId,
        /// Its new node.
        node: NodeId,
    },
    /// The agent is terminating: drop its record ("existing agents die").
    ///
    /// Unlike an [`Wire::Update`], this cannot be repaired through the
    /// sender — the agent dies right after sending, so a
    /// `NotResponsible` bounce would land on nobody. A tracker that is
    /// not responsible chases the deregister toward the owner under its
    /// own (fresher) hash function instead, `ttl`-bounded against
    /// version-skew ping-pong.
    Deregister {
        /// The agent going away.
        agent: AgentId,
        /// Remaining tracker hops before the chase is abandoned.
        ttl: u32,
    },
    /// Query for an agent's current location.
    Locate {
        /// The agent being located.
        target: AgentId,
        /// Correlation token, echoed in the answer.
        token: u64,
        /// Node the querier wants the answer sent to.
        reply_node: NodeId,
        /// How fresh the answer must be; trackers refuse to answer from
        /// records older than the declared bound.
        freshness: Freshness,
        /// End-to-end id of this locate.
        corr: Option<CorrId>,
    },
    /// Successful locate answer.
    Located {
        /// The located agent.
        target: AgentId,
        /// Its (last reported) node.
        node: NodeId,
        /// `true` when the answer comes from a replica or recovery copy
        /// that has not been reconfirmed: the node is the agent's last
        /// replicated location and may be outdated. Clients treat it
        /// like a forwarding hint rather than ground truth.
        stale: bool,
        /// Age of the answering record in milliseconds: 0 for an
        /// authoritative answer, time since the last replica sync for a
        /// replica/recovery answer. Never exceeds the locate's declared
        /// freshness bound.
        age_ms: u64,
        /// Correlation token.
        token: u64,
        /// End-to-end id, echoed from the locate.
        corr: Option<CorrId>,
    },
    /// The tracker has no record of the target.
    NotFound {
        /// The agent that could not be located.
        target: AgentId,
        /// Correlation token.
        token: u64,
        /// End-to-end id, echoed from the locate.
        corr: Option<CorrId>,
    },
    /// The receiving IAgent is no longer responsible for this agent: the
    /// sender's hash-function copy is stale (paper §2.3). Triggers the
    /// update-propagation procedure.
    NotResponsible {
        /// The agent the request concerned.
        about: AgentId,
        /// The locate token, when the request was a locate.
        token: Option<u64>,
        /// End-to-end id, echoed from the stale request.
        corr: Option<CorrId>,
    },

    // ---- IAgent ↔ HAgent (rehashing, §4) ----
    /// "My rate exceeded `T_max`": ask the HAgent to split. Carries the
    /// requester's per-agent load statistics for even-split planning.
    SplitRequest {
        /// Observed request rate (messages/second).
        rate: f64,
        /// Accumulated per-agent request counts.
        loads: Vec<(AgentId, u64)>,
    },
    /// "My rate fell below `T_min`": ask the HAgent to merge me away.
    MergeRequest {
        /// Observed request rate (messages/second).
        rate: f64,
    },
    /// The HAgent declined, and why — the reason picks the requester's
    /// retry backoff.
    RehashDenied {
        /// What blocked the request.
        reason: DenyReason,
    },
    /// A freshly created IAgent reporting for duty, carrying the id of the
    /// split lease it was created under so the HAgent can commit the right
    /// in-flight operation (several may be pending concurrently).
    IAgentReady {
        /// The lease this IAgent was created to serve.
        lease: u64,
    },
    /// An IAgent migrated (locality extension): the HAgent must update the
    /// directory and bump the version so resolves learn the new node.
    IAgentMoved {
        /// The IAgent's new node.
        node: NodeId,
    },
    /// The HAgent installs a new hash-function version on an IAgent.
    /// Receivers hand off records that no longer hash to them; an IAgent
    /// whose leaf is gone hands off everything and disposes itself.
    InstallHashFn {
        /// The new primary copy.
        hf: HashFunction,
    },
    /// Records migrating from one IAgent to another after a rehash.
    Handoff {
        /// `(agent, last known node)` records.
        records: Vec<(AgentId, NodeId)>,
    },

    // ---- record durability (replication + epoch-fenced recovery) ----
    /// A restarted IAgent asks the HAgent for a fresh epoch before it may
    /// pull replicated records: the bump fences out any replica written by
    /// an earlier incarnation whose ownership has since been handed off.
    EpochRequest,
    /// The HAgent's answer: the requester's new epoch and its current
    /// buddy replica (`None` when the tree has one leaf and no standby is
    /// configured).
    EpochGrant {
        /// The freshly bumped epoch of the requesting IAgent.
        epoch: u64,
        /// Where the requester's replica lives, if anywhere.
        buddy: Option<(AgentId, NodeId)>,
    },
    /// Batched replication of an IAgent's record set (and rate estimate)
    /// to its buddy replica. Full-snapshot semantics: the buddy replaces
    /// its copy when `(epoch, seq)` is not older than what it holds.
    RecordSync {
        /// The sender's current epoch.
        epoch: u64,
        /// Monotonic batch number within the epoch.
        seq: u64,
        /// `(agent, last known node)` records, the full current set.
        records: Vec<(AgentId, NodeId)>,
        /// The sender's observed request rate (messages/second).
        rate: f64,
        /// Where the ack should be sent (the sender's node).
        reply_node: NodeId,
    },
    /// The buddy acknowledges a [`Wire::RecordSync`] batch.
    RecordSyncAck {
        /// Echoed epoch.
        epoch: u64,
        /// Echoed batch number.
        seq: u64,
    },
    /// A recovering IAgent pulls the replica of its own records from its
    /// buddy. `epoch` is the puller's freshly granted epoch; the buddy
    /// answers with whatever it holds and its stamp.
    ReplicaPull {
        /// The puller's new epoch (diagnostics; fencing happens at the
        /// puller, which knows both stamps).
        epoch: u64,
        /// Where the [`Wire::ReplicaSet`] answer should be sent.
        reply_node: NodeId,
    },
    /// The buddy's answer to a [`Wire::ReplicaPull`]: the stored replica
    /// with the epoch/seq stamp it was written under. Empty when the buddy
    /// holds nothing for the puller.
    ReplicaSet {
        /// Epoch the replica was written under by the previous incarnation.
        epoch: u64,
        /// Last acknowledged batch number under that epoch.
        seq: u64,
        /// The replicated `(agent, last known node)` records.
        records: Vec<(AgentId, NodeId)>,
        /// The replicated rate estimate (messages/second).
        rate: f64,
        /// Age of the replica at serve time (milliseconds since the last
        /// sync landed at the buddy). Recovered records inherit this as
        /// their staleness base, so freshness-bounded answers account for
        /// the whole authoritative-to-replica gap.
        age_ms: u64,
    },
    /// A recovering IAgent asks an agent (at its last replicated node) to
    /// re-register, reconfirming a possibly-stale recovered record.
    SolicitReregister,

    // ---- LHAgent ↔ HAgent (copy maintenance, §4.3) ----
    /// A secondary-copy holder pulls the primary copy.
    FetchHashFn {
        /// Version the requester already has (for diagnostics).
        have_version: u64,
        /// Node the requester wants the copy sent to.
        reply_node: NodeId,
    },
    /// The primary copy, in response to a fetch or an eager push.
    HashFnCopy {
        /// The primary copy.
        hf: HashFunction,
    },

    // ---- guaranteed delivery (§6 future work: tracker-mediated mail) ----
    /// Deliver `data` to `target` through the location mechanism: routed
    /// tracker-to-tracker toward the responsible IAgent, which forwards it
    /// to the agent's node or buffers it until the agent's next update.
    DeliverVia {
        /// The recipient agent.
        target: AgentId,
        /// The original sender, restored on final delivery.
        from: AgentId,
        /// Application payload bytes.
        data: Vec<u8>,
        /// Remaining tracker hops before the mail is dropped (loop guard).
        ttl: u32,
    },
    /// Final leg of a [`Wire::DeliverVia`]: handed to the recipient's
    /// client, which surfaces the inner payload to the owning agent.
    MailDrop {
        /// The original sender.
        from: AgentId,
        /// Application payload bytes.
        data: Vec<u8>,
    },

    // ---- forwarding-pointers (Voyager-like) baseline ----
    // (The home-registry baseline reuses Register/Update/Locate, sent to
    // the target's home registry instead of an IAgent.)
    /// Follow the pointer chain one hop: "where did `target` go?".
    ChainLocate {
        /// The agent being located.
        target: AgentId,
        /// Correlation token.
        token: u64,
        /// Querier to answer when the chain ends.
        reply_to: AgentId,
        /// Querier's node.
        reply_node: NodeId,
        /// Hops walked so far (loop guard).
        hops: u32,
        /// End-to-end id of this locate.
        corr: Option<CorrId>,
    },
    /// Deposit a forwarding pointer at the node an agent is leaving.
    LeavePointer {
        /// The agent that left.
        agent: AgentId,
        /// Where it went.
        to: NodeId,
    },
}

impl Wire {
    /// Encodes the message as a platform payload.
    #[must_use]
    pub fn payload(&self) -> Payload {
        Payload::encode(self)
    }

    /// Attempts to decode a payload as a protocol message.
    #[must_use]
    pub fn from_payload(payload: &Payload) -> Option<Wire> {
        payload.decode().ok()
    }

    /// The message's variant name, as a static string (trace labels).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Wire::Resolve { .. } => "Resolve",
            Wire::ResolveFresh { .. } => "ResolveFresh",
            Wire::Resolved { .. } => "Resolved",
            Wire::Register { .. } => "Register",
            Wire::RegisterAck { .. } => "RegisterAck",
            Wire::Update { .. } => "Update",
            Wire::Deregister { .. } => "Deregister",
            Wire::Locate { .. } => "Locate",
            Wire::Located { .. } => "Located",
            Wire::NotFound { .. } => "NotFound",
            Wire::NotResponsible { .. } => "NotResponsible",
            Wire::SplitRequest { .. } => "SplitRequest",
            Wire::MergeRequest { .. } => "MergeRequest",
            Wire::RehashDenied { .. } => "RehashDenied",
            Wire::IAgentReady { .. } => "IAgentReady",
            Wire::IAgentMoved { .. } => "IAgentMoved",
            Wire::InstallHashFn { .. } => "InstallHashFn",
            Wire::Handoff { .. } => "Handoff",
            Wire::EpochRequest => "EpochRequest",
            Wire::EpochGrant { .. } => "EpochGrant",
            Wire::RecordSync { .. } => "RecordSync",
            Wire::RecordSyncAck { .. } => "RecordSyncAck",
            Wire::ReplicaPull { .. } => "ReplicaPull",
            Wire::ReplicaSet { .. } => "ReplicaSet",
            Wire::SolicitReregister => "SolicitReregister",
            Wire::FetchHashFn { .. } => "FetchHashFn",
            Wire::HashFnCopy { .. } => "HashFnCopy",
            Wire::DeliverVia { .. } => "DeliverVia",
            Wire::MailDrop { .. } => "MailDrop",
            Wire::ChainLocate { .. } => "ChainLocate",
            Wire::LeavePointer { .. } => "LeavePointer",
        }
    }

    /// The end-to-end correlation id this message carries, if any.
    #[must_use]
    pub fn corr(&self) -> Option<CorrId> {
        match self {
            Wire::Resolve { corr, .. }
            | Wire::ResolveFresh { corr, .. }
            | Wire::Resolved { corr, .. }
            | Wire::Locate { corr, .. }
            | Wire::Located { corr, .. }
            | Wire::NotFound { corr, .. }
            | Wire::NotResponsible { corr, .. }
            | Wire::ChainLocate { corr, .. } => *corr,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_of_spreads_sequential_ids() {
        let ones = (0..1000u64)
            .filter(|&i| key_of(AgentId::new(i)).bit(0))
            .count();
        assert!((400..=600).contains(&ones));
    }

    #[test]
    fn initial_hash_function_resolves_everything_to_the_first_iagent() {
        let hf = HashFunction::initial(AgentId::new(3), NodeId::new(1));
        hf.validate().unwrap();
        for raw in [0u64, 7, 1 << 40] {
            let (ia, node) = hf.resolve(AgentId::new(raw));
            assert_eq!(ia, AgentId::new(3));
            assert_eq!(node, NodeId::new(1));
        }
        assert!(hf.is_responsible(AgentId::new(3), AgentId::new(77)));
        assert!(!hf.is_responsible(AgentId::new(4), AgentId::new(77)));
    }

    #[test]
    fn wire_round_trips_through_payload() {
        let messages = vec![
            Wire::Resolve {
                target: AgentId::new(1),
                token: Some(9),
                corr: Some(CorrId::new(1, 9)),
            },
            Wire::Locate {
                target: AgentId::new(2),
                token: 4,
                reply_node: NodeId::new(1),
                freshness: Freshness::BoundedMs(750),
                corr: None,
            },
            Wire::InstallHashFn {
                hf: HashFunction::initial(AgentId::new(0), NodeId::new(0)),
            },
            Wire::Handoff {
                records: vec![(AgentId::new(5), NodeId::new(2))],
            },
            Wire::SplitRequest {
                rate: 61.5,
                loads: vec![(AgentId::new(5), 10)],
            },
            Wire::Located {
                target: AgentId::new(7),
                node: NodeId::new(3),
                stale: true,
                age_ms: 1250,
                token: 12,
                corr: None,
            },
            Wire::RehashDenied {
                reason: DenyReason::Busy,
            },
            Wire::RehashDenied {
                reason: DenyReason::ReadOnly,
            },
            Wire::IAgentReady { lease: 42 },
            Wire::EpochRequest,
            Wire::EpochGrant {
                epoch: 3,
                buddy: Some((AgentId::new(9), NodeId::new(2))),
            },
            Wire::RecordSync {
                epoch: 3,
                seq: 17,
                records: vec![(AgentId::new(5), NodeId::new(2))],
                rate: 4.25,
                reply_node: NodeId::new(1),
            },
            Wire::RecordSyncAck { epoch: 3, seq: 17 },
            Wire::ReplicaPull {
                epoch: 4,
                reply_node: NodeId::new(1),
            },
            Wire::ReplicaSet {
                epoch: 3,
                seq: 17,
                records: vec![(AgentId::new(5), NodeId::new(2))],
                rate: 4.25,
                age_ms: 800,
            },
            Wire::SolicitReregister,
        ];
        for msg in messages {
            let p = msg.payload();
            assert_eq!(Wire::from_payload(&p), Some(msg));
        }
    }

    #[test]
    fn buddy_is_the_sibling_leaf_and_symmetric_after_one_split() {
        use agentrack_hashtree::{Side, SplitKind};
        let mut hf = HashFunction::initial(AgentId::new(0), NodeId::new(0));
        assert_eq!(hf.buddy_of(AgentId::new(0)), None, "single leaf: no buddy");
        let candidates = hf.tree.split_candidates(IAgentId::new(0)).unwrap();
        let simple = candidates
            .iter()
            .find(|c| matches!(c.kind, SplitKind::Simple { m: 1 }))
            .unwrap();
        hf.tree
            .apply_split(simple, IAgentId::new(1), Side::Right)
            .unwrap();
        hf.locations.insert(IAgentId::new(1), NodeId::new(1));
        hf.recompile();
        assert_eq!(
            hf.buddy_of(AgentId::new(0)),
            Some((AgentId::new(1), NodeId::new(1)))
        );
        assert_eq!(
            hf.buddy_of(AgentId::new(1)),
            Some((AgentId::new(0), NodeId::new(0)))
        );
        assert_eq!(hf.buddy_of(AgentId::new(7)), None, "not a leaf");
    }

    #[test]
    fn non_protocol_payloads_decode_to_none() {
        let p = Payload::encode(&"just an application string");
        assert_eq!(Wire::from_payload(&p), None);
    }
}
